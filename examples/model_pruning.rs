//! Network pruning with the RL selection agent vs. classic criteria.
//!
//! Run with: `cargo run --release --example model_pruning`
//!
//! Pre-trains the GNN+PPO agent on a ResNet-56-style pruning task (the
//! paper's pre-training setup), then compares the sub-networks it finds
//! against uniform L1/FPGM/random pruning at the same FLOPs budget —
//! the Table IV comparison in miniature.

use spatl::prelude::*;

/// Train a model briefly so pruning decisions have accuracy consequences.
fn train_model(kind: ModelKind, data: &Dataset, epochs: usize, seed: u64) -> SplitModel {
    let mut model = ModelConfig::cifar(kind).with_seed(seed).build();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    let mut loss = CrossEntropyLoss::new();
    let mut rng = TensorRng::seed_from(seed);
    for _ in 0..epochs {
        for batch in data.batches(32, &mut rng) {
            model.zero_grad();
            let logits = model.forward(&batch.images, true);
            loss.forward(&logits, &batch.labels);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model.encoder);
            opt.step(&mut model.predictor);
        }
    }
    model
}

fn eval(model: &mut SplitModel, val: &Dataset) -> f32 {
    let b = val.as_batch();
    model.evaluate(&b.images, &b.labels)
}

fn main() {
    let synth = SynthConfig {
        noise_std: 0.35,
        ..SynthConfig::cifar10_like()
    };
    let train = synth_cifar10(&synth, 300, 1);
    let val = synth_cifar10(&synth, 100, 2);
    let budget = 0.6; // keep ≤ 60% of dense FLOPs

    println!("training ResNet-56 (scaled) on the synthetic task…");
    let model = train_model(ModelKind::ResNet56, &train, 4, 3);
    let mut dense = model.clone();
    let dense_acc = eval(&mut dense, &val);
    println!(
        "dense accuracy: {:.1}%  (FLOPs budget: {:.0}%)\n",
        dense_acc * 100.0,
        budget * 100.0
    );

    // RL agent: pre-train on the pruning environment, then act greedily.
    let env = PruningEnv::new(model.clone(), val.clone(), budget);
    let mut agent = ActorCritic::new(AgentConfig::default(), 9);
    let mut rng = TensorRng::seed_from(10);
    let log = pretrain_agent(&mut agent, &env, 12, 4, 4, &mut rng);
    println!(
        "agent pre-training rewards: first={:.3} best={:.3} last={:.3}",
        log.rewards.first().unwrap(),
        log.rewards.iter().copied().fold(0.0f32, f32::max),
        log.rewards.last().unwrap()
    );
    let action = agent.evaluate(&env.graph()).mu;

    println!("\n{:<22} {:>9} {:>12}", "method", "accuracy", "FLOPs kept");
    let report = |name: &str, m: &mut SplitModel| {
        let acc = eval(m, &val);
        let ratio = m.flops() as f32 / m.flops_dense() as f32;
        println!("{name:<22} {:>8.1}% {:>11.1}%", acc * 100.0, ratio * 100.0);
    };

    // RL agent selection.
    let mut rl = model.clone();
    let applied = spatl::agent::project_to_budget(&rl, &action, budget, Criterion::L2);
    apply_sparsities(&mut rl, &applied, Criterion::L2);
    report("RL agent (SPATL)", &mut rl);

    // Uniform L1 at the same budget.
    let mut l1 = model.clone();
    let uni = spatl::agent::project_to_budget(
        &l1,
        &vec![0.0; l1.prune_points.len()],
        budget,
        Criterion::L1,
    );
    apply_sparsities(&mut l1, &uni, Criterion::L1);
    report("uniform L1", &mut l1);

    // FPGM at the same budget.
    let mut fpgm = model.clone();
    let uni = spatl::agent::project_to_budget(
        &fpgm,
        &vec![0.0; fpgm.prune_points.len()],
        budget,
        Criterion::Fpgm,
    );
    apply_sparsities(&mut fpgm, &uni, Criterion::Fpgm);
    report("FPGM", &mut fpgm);

    // DSA-style allocation.
    let mut dsa = model.clone();
    let alloc = dsa_allocate(&dsa, budget, &val, Criterion::L2, 8);
    apply_sparsities(&mut dsa, &alloc, Criterion::L2);
    report("DSA allocation", &mut dsa);

    // Random control.
    let mut rnd = model.clone();
    let uni = spatl::agent::project_to_budget(
        &rnd,
        &vec![0.0; rnd.prune_points.len()],
        budget,
        Criterion::Random(5),
    );
    apply_sparsities(&mut rnd, &uni, Criterion::Random(5));
    report("random channels", &mut rnd);

    println!(
        "\nagent inference cost: {} parameters ({} KB)",
        agent.num_params(),
        agent.param_bytes() / 1024
    );
}
