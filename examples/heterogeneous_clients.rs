//! Heterogeneous clients: SPATL vs. the SoTA baselines on skewed data.
//!
//! Run with: `cargo run --release --example heterogeneous_clients`
//!
//! Reproduces the qualitative story of the paper's learning-efficiency
//! experiments (§V-B): under strong label skew, algorithms that share a
//! uniform model show high per-client variance, while SPATL's private
//! predictors keep every client's accuracy close to the mean.

use spatl::prelude::*;

fn run(algorithm: Algorithm, label: &str) -> (RunResult, Vec<f32>) {
    let mut sim = ExperimentBuilder::new(algorithm)
        .model(ModelKind::ResNet20)
        .clients(8)
        .samples_per_client(60)
        .beta(0.3) // strong skew
        .rounds(6)
        .local_epochs(2)
        .seed(7)
        .build();
    let result = sim.run();
    let last = result.history.last().expect("ran rounds");
    println!(
        "{label:<10} mean={:5.1}%  min={:5.1}%  max={:5.1}%  spread={:4.1}pp  {:6.2} MB total",
        last.mean_acc * 100.0,
        last.per_client_acc.iter().copied().fold(1.0f32, f32::min) * 100.0,
        last.per_client_acc.iter().copied().fold(0.0f32, f32::max) * 100.0,
        (last.per_client_acc.iter().copied().fold(0.0f32, f32::max)
            - last.per_client_acc.iter().copied().fold(1.0f32, f32::min))
            * 100.0,
        result.total_bytes() as f64 / 1e6,
    );
    let accs = last.per_client_acc.clone();
    (result, accs)
}

fn main() {
    println!("8 clients, Dirichlet(0.3) — per-client accuracy after 6 rounds\n");
    let (_, spatl_accs) = run(Algorithm::Spatl(SpatlOptions::default()), "SPATL");
    run(Algorithm::FedAvg, "FedAvg");
    run(Algorithm::FedProx { mu: 0.01 }, "FedProx");
    run(Algorithm::Scaffold, "SCAFFOLD");
    run(Algorithm::FedNova, "FedNova");

    println!("\nSPATL per-client accuracies (the paper's Fig. 'local_acc'):");
    for (i, a) in spatl_accs.iter().enumerate() {
        let bar = "#".repeat((a * 40.0) as usize);
        println!("  client {i}: {:5.1}% {bar}", a * 100.0);
    }
}
