//! New-client onboarding: transfer a federated encoder to a client that
//! never participated in training (Eq. 4 of the paper).
//!
//! Run with: `cargo run --release --example new_client_onboarding`
//!
//! Trains a SPATL federation, then onboards a brand-new client with its own
//! non-IID data by downloading the encoder and fitting only a local
//! predictor — no gradient ever leaves the new client.

use spatl::prelude::*;

fn main() {
    println!("phase 1: federated training (5 clients, ResNet-20, SPATL)…");
    let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
        .model(ModelKind::ResNet20)
        .clients(5)
        .samples_per_client(80)
        .rounds(6)
        .local_epochs(2)
        .seed(21)
        .build();
    let result = sim.run();
    println!(
        "  trained {} rounds, final mean accuracy {:.1}%",
        result.history.len(),
        result.final_acc() * 100.0
    );

    // The new client draws from the same task (same prototypes) but was
    // never part of training; its shard is skewed differently.
    let synth = SynthConfig {
        noise_std: 0.4,
        ..SynthConfig::cifar10_like()
    };
    let local_train = synth_cifar10(&synth, 80, 999);
    let local_val = synth_cifar10(&synth, 40, 1000);

    println!("\nphase 2: onboarding a new client (80 local samples)…");
    let mut fresh = ModelConfig::cifar(ModelKind::ResNet20)
        .with_seed(77)
        .build();
    let val_batch = local_val.as_batch();
    let random_acc = fresh.evaluate(&val_batch.images, &val_batch.labels);
    println!(
        "  random encoder + random head : {:.1}%",
        random_acc * 100.0
    );

    // Download the federated encoder, keep the head local (Eq. 4).
    fresh.encoder.from_flat(&sim.global.shared);
    let mut adapted = fresh.clone();
    adapt_predictor(&mut adapted, &local_train, 6, 0.05, 5);
    let adapted_acc = adapted.evaluate(&val_batch.images, &val_batch.labels);
    println!(
        "  federated encoder + local head: {:.1}%",
        adapted_acc * 100.0
    );

    println!(
        "\nonboarding gain: {:+.1} percentage points without sharing any local data",
        (adapted_acc - random_acc) * 100.0
    );
}
