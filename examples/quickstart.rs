//! Quickstart: federated training with SPATL on a Non-IID task.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Trains a ResNet-20 encoder across 6 heterogeneous clients with salient
//! parameter aggregation, transfer learning and gradient control, then
//! prints per-round accuracy and communication cost.

use spatl::prelude::*;

fn main() {
    println!("SPATL quickstart: ResNet-20, 6 clients, Dirichlet(0.5) label skew\n");

    let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
        .model(ModelKind::ResNet20)
        .clients(6)
        .samples_per_client(80)
        .rounds(8)
        .local_epochs(2)
        .seed(42)
        .build();

    println!(
        "{:>5} | {:>9} | {:>12} | {:>10} | {:>10}",
        "round", "mean acc", "cumulative", "upload sel", "FLOPs kept"
    );
    for _ in 0..sim.cfg.rounds {
        let r = sim.run_round();
        println!(
            "{:>5} | {:>8.1}% | {:>9.2} MB | {:>9.1}% | {:>9.1}%",
            r.round + 1,
            r.mean_acc * 100.0,
            r.cumulative_bytes as f64 / 1e6,
            r.mean_keep_ratio * 100.0,
            r.mean_flops_ratio * 100.0,
        );
    }

    let result = sim.result();
    println!("\nfinal mean accuracy : {:.1}%", result.final_acc() * 100.0);
    println!("best mean accuracy  : {:.1}%", result.best_acc() * 100.0);
    println!(
        "bytes/round/client  : {:.2} MB",
        result.bytes_per_round_per_client as f64 / 1e6
    );

    // Per-client inference acceleration from the selection masks.
    println!("\nper-client deployed models:");
    for c in &sim.clients {
        let ratio = c.model.flops() as f64 / c.model.flops_dense() as f64;
        println!(
            "  client {}: FLOPs {:.0}% of dense ({} params uploaded last round)",
            c.id,
            ratio * 100.0,
            salient_param_indices(&c.model).len()
        );
    }
}
