//! Property tests for the streaming frame reader: short reads, arbitrary
//! fragmentation, back-to-back frames on one stream, and hostile length
//! headers staying inside the allocation bound.

use std::io::{self, Read};

use proptest::prelude::*;
use spatl_wire::{
    encode_dense, open, read_frame, seal, write_frame, MsgType, StreamError, WireError, HEADER_LEN,
    MAX_FRAME_PAYLOAD,
};

/// A reader that delivers its buffer in chunks whose sizes cycle through
/// a caller-chosen pattern — the worst-case fragmented TCP delivery.
/// Chunk size 0 entries are skipped (a `Read` returning 0 means EOF, not
/// "try again").
struct DripReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next_chunk: usize,
}

impl DripReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> Self {
        DripReader {
            data,
            pos: 0,
            chunks,
            next_chunk: 0,
        }
    }
}

impl Read for DripReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let step = self.chunks[self.next_chunk % self.chunks.len()].max(1);
        self.next_chunk += 1;
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Tags exercised by the session strategy: a mix of data-plane and
/// control-plane message types.
const TAGS: [u8; 6] = [0x01, 0x02, 0x0C, 0x0E, 0x0F, 0x10];

fn frames() -> impl Strategy<Value = Vec<(usize, Vec<f32>)>> {
    // A short session: 1–4 frames of varying type and payload size.
    prop::collection::vec(
        (
            0usize..TAGS.len(),
            prop::collection::vec(-1.0e3f32..1.0e3, 0..33),
        ),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fragmented_delivery_reassembles_every_frame(
        session in frames(),
        chunks in prop::collection::vec(1usize..7, 1..5),
    ) {
        let mut wire_bytes = Vec::new();
        let mut expected = Vec::new();
        for (tag_idx, values) in &session {
            let msg = MsgType::from_tag(TAGS[*tag_idx]).unwrap();
            let frame = seal(msg, &encode_dense(values));
            write_frame(&mut wire_bytes, &frame).unwrap();
            expected.push(frame);
        }
        // However the transport fragments the byte stream, the reader
        // must reassemble exactly the frames that were written, in order,
        // then report a clean EOF.
        let mut r = DripReader::new(wire_bytes, chunks);
        for want in &expected {
            let got = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
            prop_assert_eq!(&got, want);
            prop_assert!(open(&got).is_ok());
        }
        prop_assert!(read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().is_none());
    }

    #[test]
    fn eof_at_any_cut_is_truncated_never_a_panic(
        values in prop::collection::vec(-1.0f32..1.0, 1..17),
        cut_seed in 0usize..1000,
        chunks in prop::collection::vec(1usize..5, 1..4),
    ) {
        let frame = seal(MsgType::DenseUpdate, &encode_dense(&values));
        // Cut strictly inside the frame: every prefix must surface as a
        // Truncated wire error through the stream reader.
        let cut = 1 + cut_seed % (frame.len() - 1);
        let mut r = DripReader::new(frame[..cut].to_vec(), chunks);
        let err = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap_err();
        prop_assert!(
            matches!(err, StreamError::Wire(WireError::Truncated { .. })),
            "cut {} gave {:?}", cut, err
        );
    }

    #[test]
    fn hostile_length_never_allocates_past_the_cap(
        advertised in 0u32..u32::MAX,
        cap in 0usize..4096,
    ) {
        let mut frame = seal(MsgType::DenseModel, &[]);
        frame[8..12].copy_from_slice(&advertised.to_le_bytes());
        let mut r = io::Cursor::new(frame);
        match read_frame(&mut r, cap) {
            Err(StreamError::Oversized { advertised: a, max }) => {
                prop_assert!(a as u64 == advertised as u64 && a > cap);
                prop_assert_eq!(max, cap);
            }
            // Within the cap the reader proceeds to the payload; with an
            // empty buffer behind the header, a non-zero advertised
            // length is a truncation and zero is a clean (CRC-checkable)
            // frame.
            Err(StreamError::Wire(WireError::Truncated { .. })) => {
                prop_assert!(advertised as usize <= cap && advertised > 0);
            }
            Ok(Some(f)) => {
                prop_assert_eq!(advertised, 0);
                prop_assert_eq!(f.len(), HEADER_LEN);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn corrupted_payload_passes_reader_but_fails_open(
        values in prop::collection::vec(-1.0f32..1.0, 1..17),
        pos_seed in 0usize..1000,
        bit in 0u8..8,
    ) {
        // The stream reader only frames; corruption detection is open()'s
        // job. A payload flip must flow through read_frame untouched and
        // then fail the CRC.
        let mut frame = seal(MsgType::DenseUpdate, &encode_dense(&values));
        let pos = HEADER_LEN + pos_seed % (frame.len() - HEADER_LEN);
        frame[pos] ^= 1 << bit;
        let mut r = io::Cursor::new(frame.clone());
        let got = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        prop_assert_eq!(got.clone(), frame);
        prop_assert!(matches!(open(&got), Err(WireError::Crc { .. })));
    }
}
