//! Property-based round-trip tests for every payload codec, plus envelope
//! corruption properties: a flipped byte fails the CRC, a bumped version
//! byte yields `WireError::Version`, and no malformed input ever panics.

use proptest::prelude::*;
use spatl_wire::{
    decode_dense, decode_f16_dense, decode_pair, decode_spatl_encoder, decode_spatl_update,
    decode_topk, encode_dense, encode_f16_dense, encode_pair, encode_spatl_encoder,
    encode_spatl_update, encode_topk, f16, open, seal, MsgType, SparseTopK, WireError, HEADER_LEN,
};

fn tensor() -> impl Strategy<Value = Vec<f32>> {
    // Includes the empty and length-1 tensors the codecs must handle.
    prop::collection::vec(-1.0e3f32..1.0e3, 0..65)
}

fn nonempty_tensor() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0e3f32..1.0e3, 1..65)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_roundtrip(v in tensor()) {
        let frame = seal(MsgType::DenseUpdate, &encode_dense(&v));
        let (msg, payload) = open(&frame).unwrap();
        prop_assert_eq!(msg, MsgType::DenseUpdate);
        prop_assert_eq!(decode_dense(payload).unwrap(), v);
    }

    #[test]
    fn pair_roundtrip(a in tensor()) {
        let b: Vec<f32> = a.iter().map(|x| -x * 0.5).collect();
        let frame = seal(MsgType::ScaffoldUpdate, &encode_pair(&a, &b));
        let (_, payload) = open(&frame).unwrap();
        let pair = decode_pair(payload).unwrap();
        prop_assert_eq!(pair.primary, a);
        prop_assert_eq!(pair.secondary, b);
    }

    #[test]
    fn spatl_encoder_roundtrip(enc in tensor(), with_control in 0u8..2) {
        let with_control = with_control == 1;
        let control: Vec<f32> = enc.iter().map(|x| x + 1.0).collect();
        let body = encode_spatl_encoder(&enc, with_control.then_some(control.as_slice()));
        let out = decode_spatl_encoder(&body, with_control).unwrap();
        prop_assert_eq!(out.encoder, enc);
        prop_assert_eq!(out.control.is_some(), with_control);
        if let Some(c) = out.control {
            prop_assert_eq!(c, control);
        }
    }

    #[test]
    fn spatl_update_roundtrip(values in tensor(), stride in 1u32..5) {
        // Strictly increasing channel ids, decoupled from the value count.
        let channels: Vec<u32> = (0..values.len() as u32 / 2).map(|i| i * stride).collect();
        let body = encode_spatl_update(&channels, &values);
        let update = decode_spatl_update(&body).unwrap();
        prop_assert_eq!(update.channels, channels);
        prop_assert_eq!(update.values, values);
    }

    #[test]
    fn topk_roundtrip_recovers_largest_magnitudes(dense in nonempty_tensor(), k in 0usize..16) {
        let k = k.min(dense.len());
        let sparse = SparseTopK::from_dense(&dense, k);
        prop_assert_eq!(sparse.indices.len(), k);
        let body = encode_topk(&sparse);
        let back = decode_topk(&body).unwrap();
        prop_assert_eq!(back.dense_len, dense.len() as u32);
        prop_assert_eq!(&back.indices, &sparse.indices);
        prop_assert_eq!(&back.values, &sparse.values);
        // Every kept value is at least as large as every dropped one.
        let kept_min = sparse.values.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for (i, v) in dense.iter().enumerate() {
            if !sparse.indices.contains(&(i as u32)) && k > 0 {
                prop_assert!(v.abs() <= kept_min + 1e-6);
            }
        }
    }

    #[test]
    fn f16_roundtrip_within_half_ulp(v in nonempty_tensor()) {
        let body = encode_f16_dense(&v);
        prop_assert_eq!(body.len(), 2 * v.len());
        let back = decode_f16_dense(&body).unwrap();
        for (&x, &y) in v.iter().zip(&back) {
            // 11-bit significand: relative error ≤ 2^-11 in f16's range.
            prop_assert!((y - x).abs() <= x.abs() / 2048.0 + 1e-7, "{} -> {}", x, y);
        }
    }

    #[test]
    fn flipped_byte_fails_crc(v in nonempty_tensor(), pos_seed in 0usize..1000, bit in 0u8..8) {
        let mut frame = seal(MsgType::DenseModel, &encode_dense(&v));
        // Corrupt one payload byte (headers have their own checks).
        let pos = HEADER_LEN + pos_seed % (frame.len() - HEADER_LEN);
        frame[pos] ^= 1 << bit;
        prop_assert!(matches!(open(&frame), Err(WireError::Crc { .. })));
    }

    #[test]
    fn bumped_version_is_version_error_not_panic(v in tensor()) {
        let mut frame = seal(MsgType::DenseModel, &encode_dense(&v));
        frame[4] = frame[4].wrapping_add(1);
        prop_assert!(matches!(open(&frame), Err(WireError::Version { .. })));
    }

    #[test]
    fn truncation_never_panics(v in tensor(), cut_seed in 0usize..1000) {
        let frame = seal(MsgType::DenseUpdate, &encode_dense(&v));
        let cut = cut_seed % frame.len();
        // Any prefix is an error, never a panic.
        prop_assert!(open(&frame[..cut]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(bytes in prop::collection::vec(0u8..255, 0..96)) {
        // Decoders must reject garbage gracefully, whatever the content.
        let _ = open(&bytes);
        let _ = decode_dense(&bytes);
        let _ = decode_pair(&bytes);
        let _ = decode_spatl_encoder(&bytes, true);
        let _ = decode_spatl_encoder(&bytes, false);
        let _ = decode_spatl_update(&bytes);
        let _ = decode_topk(&bytes);
        let _ = decode_f16_dense(&bytes);
    }

    #[test]
    fn f16_bits_total_roundtrip(h in 0u16..u16::MAX) {
        let x = f16::f16_bits_to_f32(h);
        if !x.is_nan() {
            prop_assert_eq!(f16::f32_to_f16_bits(x), h);
        }
    }
}
