//! spatl-wire: the binary wire protocol for federated rounds.
//!
//! Every server↔client exchange in the SPATL simulation moves through
//! this crate: payload codecs serialize each algorithm's traffic into
//! little-endian bytes, a fixed 16-byte envelope frames them with a
//! magic, version, message-type tag, length and CRC-32, and [`SimNet`]
//! converts the resulting frame sizes into simulated transfer times.
//!
//! Module map:
//!
//! * [`envelope`] — frame header, [`seal`]/[`open`], [`MsgType`] tags.
//! * [`codec`] — payload layouts: dense f32, paired vectors (SCAFFOLD /
//!   FedNova), SPATL encoder download and channel-indexed upload, top-k
//!   sparse, f16 quantized.
//! * [`layout`] — [`SelectionLayout`], the channel-id ↔ flat-index map
//!   shared by both ends of a SPATL session.
//! * [`stream`] — [`read_frame`]/[`write_frame`] over byte streams, with
//!   a bounded maximum frame size.
//! * [`tier`] — hierarchical-tier composition: the [`EdgeCombined`]
//!   weight-carrying upload an edge aggregator forwards to its root.
//! * [`sim`] — [`SimNet`] analytic transport model.
//! * [`crc32`] / [`f16`](mod@f16) — checksum and half-precision
//!   primitives.
//!
//! Design rules: explicit little-endian everywhere, no `unsafe`, no
//! self-describing serialization on the hot path, and decoders return
//! [`WireError`] instead of panicking on any malformed input.

#![deny(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod envelope;
pub mod error;
pub mod f16;
pub mod layout;
pub mod sim;
pub mod stream;
pub mod tier;

pub use codec::{
    decode_dense, decode_f16_dense, decode_pair, decode_spatl_encoder, decode_spatl_update,
    decode_topk, encode_dense, encode_f16_dense, encode_pair, encode_spatl_encoder,
    encode_spatl_update, encode_topk, Pair, SparseTopK, SpatlEncoder, SpatlUpdate, SPARSE_METADATA,
    SPATL_UPDATE_METADATA,
};
pub use envelope::{flip_bit, open, seal, MsgType, HEADER_LEN, MAGIC, WIRE_VERSION};
pub use error::WireError;
pub use layout::{IndexRange, SelectionLayout};
pub use sim::{LinkSpec, RoundTransfer, SimNet};
pub use stream::{read_frame, write_frame, FramePoll, FrameReader, StreamError, MAX_FRAME_PAYLOAD};
pub use tier::{
    decode_edge_combined, encode_edge_combined, seal_edge_combined, EdgeCombined, EdgeEntry,
    EdgeReduced, EdgeSelection, TierFaultCounters,
};
