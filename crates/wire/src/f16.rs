//! IEEE 754 binary16 conversion, implemented on bit patterns (no `unsafe`,
//! no hardware f16 support assumed).
//!
//! Round-to-nearest-even on encode; subnormals, infinities and NaN are
//! handled on both directions. Values whose magnitude exceeds f16's max
//! finite value (65504) saturate to ±inf, which the quantized codec
//! documents as part of its loss model.

/// Convert an f32 to its binary16 bit pattern.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mantissa = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN; preserve a NaN payload bit so NaN stays NaN.
        let nan_bit = if mantissa != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | nan_bit | ((mantissa >> 13) as u16 & 0x03FF);
    }

    // Unbiased exponent, rebiasing from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflows f16 range: saturate to infinity.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal f16. Round mantissa from 23 to 10 bits, nearest-even.
        let mut m = mantissa >> 13;
        let rest = mantissa & 0x1FFF;
        if rest > 0x1000 || (rest == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            // Mantissa rounding carried out; bump the exponent.
            m = 0;
            e += 1;
            if e >= 0x1F {
                return sign | 0x7C00;
            }
        }
        return sign | ((e as u16) << 10) | (m as u16);
    }
    if unbiased >= -25 {
        // Subnormal f16: shift the implicit leading 1 into the mantissa.
        // -25 is included so values in (2⁻²⁵, 2⁻²⁴) round *up* to the
        // smallest subnormal under nearest-even (exactly 2⁻²⁵ ties to
        // zero); below that everything is under half an LSB and
        // flushes. This keeps the absolute error ≤ 2⁻²⁵ everywhere
        // under the normal range — the envelope DESIGN.md §13 claims.
        let full = mantissa | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let m = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut m = m;
        if rest > half || (rest == half && (m & 1) == 1) {
            m += 1;
        }
        // A carry here overflows into the smallest normal, which the
        // bit layout represents correctly (exponent becomes 1).
        return sign | (m as u16);
    }
    // Underflows to signed zero.
    sign
}

/// Convert a binary16 bit pattern back to f32.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mantissa = (h & 0x03FF) as u32;

    let bits = match (exp, mantissa) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: normalize by shifting the mantissa up.
            let lead = m.leading_zeros() - 22; // zeros within the 10-bit field
            let e = 127 - 15 - lead;
            let m = (m << (lead + 1)) & 0x03FF;
            sign | (e << 23) | (m << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -65504.0] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back, x, "{x} -> {back}");
            assert_eq!(back.is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn specials() {
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
        // 65520 rounds up past max-finite into infinity.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(65520.0)), f32::INFINITY);
    }

    #[test]
    fn tiny_values_flush_or_subnormal() {
        // Smallest f16 subnormal is 2^-24 ≈ 5.96e-8.
        let x = 6.0e-8f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(x));
        assert!(back > 0.0 && (back - x).abs() < 3.0e-8, "{x} -> {back}");
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0e-9)), 0.0);
        // Just above half the smallest subnormal: round *up* to it, per
        // nearest-even — not flushed.
        let above_half = f32::exp2(-25.0) * 1.5;
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(above_half)),
            f32::exp2(-24.0)
        );
        // Exactly half ties to even, which is zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(f32::exp2(-25.0))), 0.0);
    }

    #[test]
    fn relative_error_within_half_ulp() {
        // 11-bit significand → relative error ≤ 2^-11 for normal values.
        let mut x = 1.0e-4f32;
        while x < 6.0e4 {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            let rel = ((back - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0, "x={x} back={back} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and the next f16 (1 + 2^-10);
        // nearest-even picks 1.0.
        let x = 1.0 + f32::powi(2.0, -11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), 1.0);
        // 1 + 3·2^-11 is between (1+2^-10) and (1+2^-9); even picks 1+2^-9.
        let x = 1.0 + 3.0 * f32::powi(2.0, -11);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(x)),
            1.0 + f32::powi(2.0, -9)
        );
    }

    #[test]
    fn all_f16_bit_patterns_survive_f32_round_trip() {
        for h in 0..=u16::MAX {
            let x = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(x);
            if x.is_nan() {
                assert!(f16_bits_to_f32(back).is_nan());
            } else {
                assert_eq!(back, h, "bits {h:#06x} -> {x} -> {back:#06x}");
            }
        }
    }
}
