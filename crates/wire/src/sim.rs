//! SimNet: a deterministic analytic transport model turning frame sizes
//! into per-round transfer times.
//!
//! Each direction of a client link is a [`LinkSpec`]: bandwidth, one-way
//! latency, and an optional packet-loss probability. Loss is modelled in
//! expectation — with independent loss `p` and per-packet retransmission,
//! each packet costs `1/(1-p)` expected transmissions — so results are
//! reproducible without a second RNG stream in the simulation.
//!
//! A federated round downloads to every participant, waits for local
//! training, then uploads; participants work in parallel, so the round's
//! transfer wall-clock is the *maximum* over participants, while the
//! total traffic is the *sum*. [`SimNet::round`] reports both.

/// One direction of a network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds, paid once per transfer.
    pub latency_s: f64,
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss: f64,
}

impl LinkSpec {
    /// A symmetric broadband profile (100 Mbit/s, 20 ms, lossless).
    pub fn broadband() -> Self {
        LinkSpec {
            bandwidth_bps: 100e6,
            latency_s: 0.02,
            loss: 0.0,
        }
    }

    /// A constrained mobile profile (10 Mbit/s, 60 ms, 1% loss) — the
    /// regime where SPATL's upload reduction matters most.
    pub fn mobile() -> Self {
        LinkSpec {
            bandwidth_bps: 10e6,
            latency_s: 0.06,
            loss: 0.01,
        }
    }

    /// Expected seconds to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        assert!(self.bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!((0.0..1.0).contains(&self.loss), "loss must be in [0, 1)");
        if bytes == 0 {
            return 0.0;
        }
        let retransmit = 1.0 / (1.0 - self.loss);
        self.latency_s + (bytes as f64 * 8.0 / self.bandwidth_bps) * retransmit
    }
}

/// Transport model for one federated deployment: a downlink and an uplink
/// shared by every client (heterogeneity in *data* is the experiment
/// variable; links are held uniform so byte counts alone explain timing
/// differences between algorithms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimNet {
    /// Server→client direction.
    pub downlink: LinkSpec,
    /// Client→server direction.
    pub uplink: LinkSpec,
}

/// Timing and traffic of one simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundTransfer {
    /// Wall-clock seconds the round spends in transfers (slowest client).
    pub wall_clock_s: f64,
    /// Total bytes moved server→clients.
    pub download_bytes: usize,
    /// Total bytes moved clients→server.
    pub upload_bytes: usize,
    /// Sum of every client's transfer seconds (device-time cost).
    pub device_seconds: f64,
}

impl SimNet {
    /// Symmetric model from one link spec.
    pub fn symmetric(link: LinkSpec) -> Self {
        SimNet {
            downlink: link,
            uplink: link,
        }
    }

    /// Expected seconds for one client's download+upload.
    pub fn client_time(&self, download_bytes: usize, upload_bytes: usize) -> f64 {
        self.downlink.transfer_time(download_bytes) + self.uplink.transfer_time(upload_bytes)
    }

    /// Aggregate one round given each participant's `(download, upload)`
    /// frame sizes in bytes.
    pub fn round(&self, per_client_bytes: &[(usize, usize)]) -> RoundTransfer {
        let mut out = RoundTransfer::default();
        for &(down, up) in per_client_bytes {
            let t = self.client_time(down, up);
            out.wall_clock_s = out.wall_clock_s.max(t);
            out.device_seconds += t;
            out.download_bytes += down;
            out.upload_bytes += up;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_time_is_latency_plus_serialisation() {
        let link = LinkSpec {
            bandwidth_bps: 8e6, // 1 MB/s
            latency_s: 0.5,
            loss: 0.0,
        };
        // 2 MB at 1 MB/s + 0.5 s latency = 2.5 s.
        let t = link.transfer_time(2_000_000);
        assert!((t - 2.5).abs() < 1e-9, "{t}");
        assert_eq!(link.transfer_time(0), 0.0);
    }

    #[test]
    fn loss_inflates_by_expected_retransmits() {
        let lossless = LinkSpec {
            bandwidth_bps: 1e6,
            latency_s: 0.0,
            loss: 0.0,
        };
        let lossy = LinkSpec {
            loss: 0.5,
            ..lossless
        };
        let bytes = 125_000; // 1 s at 1 Mbit/s
        assert!((lossless.transfer_time(bytes) - 1.0).abs() < 1e-9);
        // p = 0.5 → each packet sent twice in expectation.
        assert!((lossy.transfer_time(bytes) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_takes_max_wall_clock_and_sums_traffic() {
        let net = SimNet::symmetric(LinkSpec {
            bandwidth_bps: 8e6,
            latency_s: 0.0,
            loss: 0.0,
        });
        let r = net.round(&[(1_000_000, 1_000_000), (2_000_000, 500_000)]);
        // Client 1: 1 + 1 = 2 s; client 2: 2 + 0.5 = 2.5 s.
        assert!((r.wall_clock_s - 2.5).abs() < 1e-9, "{}", r.wall_clock_s);
        assert!((r.device_seconds - 4.5).abs() < 1e-9);
        assert_eq!(r.download_bytes, 3_000_000);
        assert_eq!(r.upload_bytes, 1_500_000);
    }

    #[test]
    fn smaller_upload_is_strictly_faster() {
        let net = SimNet::symmetric(LinkSpec::mobile());
        let dense = net.client_time(100_000, 100_000);
        let sparse = net.client_time(100_000, 10_000);
        assert!(sparse < dense);
    }

    #[test]
    fn empty_round_is_zero() {
        let net = SimNet::symmetric(LinkSpec::broadband());
        assert_eq!(net.round(&[]), RoundTransfer::default());
    }
}
