//! Selection layout: the model-architecture metadata both ends of a SPATL
//! session share, mapping *channel ids* (what the upload actually carries)
//! to *flat parameter indices* (what aggregation operates on).
//!
//! SPATL's salient-parameter selection is channel-granular: a client keeps
//! or drops whole output channels of prunable convolutions, plus every
//! parameter of non-prunable layers. The upload therefore only needs to
//! name the surviving channels — 4 bytes each — instead of every surviving
//! flat index, which is exactly the accounting the paper's Eq. 13 uses.
//!
//! The layout is a pure function of the model architecture (shapes, prune
//! points), *not* of any client's mask, so the server builds it once at
//! startup and every client implicitly agrees. This keeps the wire format
//! model-agnostic: the codec moves `(channel ids, values)` and this module
//! alone knows how channels expand to indices.

use crate::error::WireError;

/// One contiguous run of flat parameter indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRange {
    /// First flat index in the run.
    pub start: u32,
    /// Number of indices in the run.
    pub len: u32,
}

/// Channel-id → flat-index mapping for one model architecture.
#[derive(Debug, Clone, Default)]
pub struct SelectionLayout {
    /// `per_channel[c]` lists the flat-index runs owned by global channel
    /// id `c` (its conv kernel row and its bias entry, typically).
    per_channel: Vec<Vec<IndexRange>>,
    /// Runs always transmitted regardless of selection (non-prunable
    /// layers: classifier heads, batch-norm affine weights, …).
    always: Vec<IndexRange>,
}

impl SelectionLayout {
    /// Start an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the next channel id; returns the id assigned.
    pub fn push_channel(&mut self, ranges: Vec<IndexRange>) -> u32 {
        self.per_channel.push(ranges);
        (self.per_channel.len() - 1) as u32
    }

    /// Register flat indices always included in a transfer.
    pub fn push_always(&mut self, range: IndexRange) {
        self.always.push(range);
    }

    /// Number of channel ids this layout knows.
    pub fn num_channels(&self) -> usize {
        self.per_channel.len()
    }

    /// Parameters owned by one channel.
    pub fn channel_param_count(&self, channel: u32) -> usize {
        self.per_channel[channel as usize]
            .iter()
            .map(|r| r.len as usize)
            .sum()
    }

    /// Parameters always included.
    pub fn always_param_count(&self) -> usize {
        self.always.iter().map(|r| r.len as usize).sum()
    }

    /// Total selected parameters for a set of channels (without
    /// materializing the index list).
    pub fn selected_param_count(&self, channels: &[u32]) -> usize {
        self.always_param_count()
            + channels
                .iter()
                .map(|&c| self.channel_param_count(c))
                .sum::<usize>()
    }

    /// Expand selected channel ids into the sorted flat-index list the
    /// aggregation rule (Eq. 12) consumes. Errors on unknown channel ids
    /// so a corrupted-but-CRC-valid frame cannot panic the server.
    pub fn expand(&self, channels: &[u32]) -> Result<Vec<u32>, WireError> {
        let mut out = Vec::with_capacity(self.always_param_count());
        for r in &self.always {
            out.extend(r.start..r.start + r.len);
        }
        for &c in channels {
            let ranges = self.per_channel.get(c as usize).ok_or_else(|| {
                WireError::Malformed(format!(
                    "channel id {c} out of range (layout has {})",
                    self.per_channel.len()
                ))
            })?;
            for r in ranges {
                out.extend(r.start..r.start + r.len);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Invert a flat-index selection into channel ids: a channel is
    /// selected iff *all* of its indices appear. Used by the encoding side
    /// to go from a model's salient-index list to the channel ids that
    /// travel on the wire.
    pub fn channels_for(&self, sorted_indices: &[u32]) -> Vec<u32> {
        let contains = |i: u32| sorted_indices.binary_search(&i).is_ok();
        (0..self.per_channel.len() as u32)
            .filter(|&c| {
                let ranges = &self.per_channel[c as usize];
                !ranges.is_empty()
                    && ranges
                        .iter()
                        .all(|r| (r.start..r.start + r.len).all(contains))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layout() -> SelectionLayout {
        // Two prunable channels (a conv row + bias each) and an
        // always-included classifier tail.
        let mut l = SelectionLayout::new();
        l.push_channel(vec![
            IndexRange { start: 0, len: 3 },
            IndexRange { start: 6, len: 1 },
        ]);
        l.push_channel(vec![
            IndexRange { start: 3, len: 3 },
            IndexRange { start: 7, len: 1 },
        ]);
        l.push_always(IndexRange { start: 8, len: 4 });
        l
    }

    #[test]
    fn expand_produces_sorted_union() {
        let l = toy_layout();
        assert_eq!(l.expand(&[]).unwrap(), vec![8, 9, 10, 11]);
        assert_eq!(l.expand(&[0]).unwrap(), vec![0, 1, 2, 6, 8, 9, 10, 11]);
        assert_eq!(l.expand(&[0, 1]).unwrap(), (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn counts_match_expansion() {
        let l = toy_layout();
        for channels in [vec![], vec![0], vec![1], vec![0, 1]] {
            assert_eq!(
                l.selected_param_count(&channels),
                l.expand(&channels).unwrap().len()
            );
        }
    }

    #[test]
    fn unknown_channel_is_malformed_not_panic() {
        let l = toy_layout();
        assert!(matches!(l.expand(&[7]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn channels_for_inverts_expand() {
        let l = toy_layout();
        for channels in [vec![], vec![0u32], vec![1], vec![0, 1]] {
            let indices = l.expand(&channels).unwrap();
            assert_eq!(l.channels_for(&indices), channels);
        }
    }

    #[test]
    fn partial_channel_is_not_selected() {
        let l = toy_layout();
        // Channel 0 minus its bias index 6: not fully present.
        assert_eq!(l.channels_for(&[0, 1, 2, 8, 9, 10, 11]), Vec::<u32>::new());
    }
}
