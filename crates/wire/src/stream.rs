//! Streaming frame I/O over `io::Read` / `io::Write`.
//!
//! [`seal`](crate::envelope::seal) and [`open`](crate::envelope::open)
//! operate on complete in-memory frames; a TCP stream delivers bytes in
//! arbitrary fragments with no record boundaries. This module bridges the
//! two: [`write_frame`] pushes a sealed frame onto any [`Write`] sink, and
//! [`read_frame`] reassembles exactly one frame from any [`Read`] source —
//! tolerating short reads, split delivery, and back-to-back frames on the
//! same stream.
//!
//! Safety property: the advertised payload length is validated against a
//! caller-supplied cap *before* any allocation, so a corrupt (or hostile)
//! length header cannot trigger an unbounded allocation. The header's
//! magic, version and tag are also checked before the payload is read,
//! failing fast on garbage streams. The CRC is *not* checked here — the
//! returned buffer is a complete frame meant to be handed to
//! [`open`](crate::envelope::open), which performs the full validation
//! exactly once.

use std::io::{self, Read, Write};

use crate::envelope::{MsgType, HEADER_LEN, MAGIC, WIRE_VERSION};
use crate::error::WireError;

/// Default cap on a single frame's payload, in bytes.
///
/// Generous for this workload: the largest legitimate frame is a dense
/// f32 model broadcast (a few MB for the synthetic VGG-ish models), so
/// 64 MiB leaves two orders of magnitude of headroom while still bounding
/// what a flipped length bit can make a receiver allocate.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Failure while reading or writing a frame on a byte stream.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying transport failed (connection reset, timeout, …).
    Io(io::Error),
    /// The stream ended or delivered bytes that violate the envelope
    /// (bad magic/version/tag, or EOF in the middle of a frame).
    Wire(WireError),
    /// The header advertised a payload larger than the caller's cap.
    /// Nothing was allocated; the stream is left mid-frame and should be
    /// closed.
    Oversized {
        /// Payload length the header advertised.
        advertised: usize,
        /// Cap the caller imposed.
        max: usize,
    },
}

impl StreamError {
    /// Whether this failure is consistent with transport damage or loss
    /// (as opposed to a peer speaking invalid structure on a healthy
    /// connection). Mirrors [`WireError::is_transport_corruption`].
    pub fn is_transport_corruption(&self) -> bool {
        match self {
            StreamError::Io(_) => true,
            StreamError::Wire(w) => w.is_transport_corruption(),
            StreamError::Oversized { .. } => true,
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Wire(e) => write!(f, "stream frame error: {e}"),
            StreamError::Oversized { advertised, max } => {
                write!(
                    f,
                    "frame payload of {advertised} bytes exceeds the {max}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Wire(e) => Some(e),
            StreamError::Oversized { .. } => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<WireError> for StreamError {
    fn from(e: WireError) -> Self {
        StreamError::Wire(e)
    }
}

/// Write one sealed frame to `w`.
///
/// Frames are self-delimiting (the header carries the payload length), so
/// no extra length prefix is added. The sink is flushed so a frame handed
/// to a buffered writer is actually on the wire when this returns — round
/// barriers depend on that.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Fill `buf` from `r`, retrying on interrupts and short reads.
///
/// Returns the number of bytes read: `buf.len()` on success, less if the
/// stream hit EOF first (notably `0` when EOF landed exactly on the
/// frame boundary).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read exactly one complete frame from `r`, or `None` on a clean EOF at
/// a frame boundary.
///
/// The returned buffer is the *entire* frame (header + payload), ready
/// for [`open`](crate::envelope::open). Validation performed here, in
/// order, before the payload is allocated or read:
///
/// 1. magic — fail fast on a stream that is not speaking this protocol;
/// 2. version;
/// 3. message-type tag;
/// 4. advertised payload length against `max_payload` — the bounded-
///    allocation guarantee.
///
/// EOF in the middle of a frame maps to [`WireError::Truncated`]; a read
/// timeout or reset surfaces as [`StreamError::Io`] with the underlying
/// [`io::ErrorKind`] (`WouldBlock`/`TimedOut` for socket deadlines).
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> Result<Option<Vec<u8>>, StreamError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            available: got,
        }
        .into());
    }
    if header[0..4] != MAGIC {
        let magic: [u8; 4] = header[0..4].try_into().expect("sliced 4 bytes");
        return Err(WireError::BadMagic(magic).into());
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::Version {
            found: header[4],
            supported: WIRE_VERSION,
        }
        .into());
    }
    MsgType::from_tag(header[5])?;
    let advertised = u32::from_le_bytes(header[8..12].try_into().expect("sliced 4 bytes")) as usize;
    if advertised > max_payload {
        return Err(StreamError::Oversized {
            advertised,
            max: max_payload,
        });
    }
    let mut frame = vec![0u8; HEADER_LEN + advertised];
    frame[..HEADER_LEN].copy_from_slice(&header);
    let got = read_full(r, &mut frame[HEADER_LEN..])?;
    if got < advertised {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + advertised,
            available: HEADER_LEN + got,
        }
        .into());
    }
    Ok(Some(frame))
}

/// Outcome of one [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum FramePoll {
    /// One complete frame (header + payload), ready for
    /// [`open`](crate::envelope::open). The reader is back at a frame
    /// boundary — poll again to drain further buffered frames.
    Frame(Vec<u8>),
    /// The source has no bytes available right now (`WouldBlock`); the
    /// partial frame stays buffered for the next poll.
    Pending,
    /// Clean EOF on a frame boundary — the peer closed between frames.
    Eof,
}

/// Incremental, non-blocking counterpart of [`read_frame`].
///
/// [`read_frame`] parks the calling thread until a whole frame arrives —
/// fine for one connection, fatal for a coordinator multiplexing
/// thousands. A `FrameReader` instead *accumulates*: each
/// [`poll`](FrameReader::poll) consumes whatever bytes the source has
/// (designed for sockets in non-blocking mode), buffers a partial frame
/// across calls, and yields [`FramePoll::Frame`] the moment one
/// completes. One reader per connection; a readiness loop sweeps them.
///
/// Validation is identical to [`read_frame`] — magic, version, tag, then
/// the advertised length against the cap, all checked the moment the
/// header completes and *before* the payload buffer is grown, preserving
/// the bounded-allocation guarantee. EOF mid-frame maps to
/// [`WireError::Truncated`]; EOF on a boundary is [`FramePoll::Eof`].
#[derive(Debug)]
pub struct FrameReader {
    max_payload: usize,
    buf: Vec<u8>,
    /// Total frame length once the header has been parsed and validated.
    total: Option<usize>,
}

impl FrameReader {
    /// A reader enforcing `max_payload` on every frame it assembles.
    pub fn new(max_payload: usize) -> Self {
        FrameReader {
            max_payload,
            buf: Vec::new(),
            total: None,
        }
    }

    /// Whether a partial frame is buffered (EOF now would be truncation).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes buffered towards the current frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Advance frame assembly with whatever `r` can deliver.
    ///
    /// Call in a loop to drain back-to-back frames: each `Frame` return
    /// resets the reader to the next boundary. `Pending` means the
    /// source returned `WouldBlock`; errors poison the stream (the
    /// caller should drop the connection — resynchronising inside a
    /// byte stream is not possible).
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<FramePoll, StreamError> {
        loop {
            let target = self.total.unwrap_or(HEADER_LEN);
            if self.buf.len() < target {
                let old = self.buf.len();
                self.buf.resize(target, 0);
                let read = r.read(&mut self.buf[old..target]);
                match read {
                    Ok(0) => {
                        self.buf.truncate(old);
                        if old == 0 && self.total.is_none() {
                            return Ok(FramePoll::Eof);
                        }
                        return Err(WireError::Truncated {
                            needed: target,
                            available: old,
                        }
                        .into());
                    }
                    Ok(n) => {
                        self.buf.truncate(old + n);
                        continue;
                    }
                    Err(e) => {
                        self.buf.truncate(old);
                        match e.kind() {
                            io::ErrorKind::Interrupted => continue,
                            io::ErrorKind::WouldBlock => return Ok(FramePoll::Pending),
                            _ => return Err(e.into()),
                        }
                    }
                }
            }
            if self.total.is_none() {
                // Header complete: validate before growing the buffer.
                if self.buf[0..4] != MAGIC {
                    let magic: [u8; 4] = self.buf[0..4].try_into().expect("sliced 4 bytes");
                    return Err(WireError::BadMagic(magic).into());
                }
                if self.buf[4] != WIRE_VERSION {
                    return Err(WireError::Version {
                        found: self.buf[4],
                        supported: WIRE_VERSION,
                    }
                    .into());
                }
                MsgType::from_tag(self.buf[5])?;
                let advertised =
                    u32::from_le_bytes(self.buf[8..12].try_into().expect("sliced 4 bytes"))
                        as usize;
                if advertised > self.max_payload {
                    return Err(StreamError::Oversized {
                        advertised,
                        max: self.max_payload,
                    });
                }
                self.total = Some(HEADER_LEN + advertised);
                continue;
            }
            // A whole frame is buffered: hand it over and reset.
            let frame = std::mem::take(&mut self.buf);
            self.total = None;
            return Ok(FramePoll::Frame(frame));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{open, seal};

    #[test]
    fn write_then_read_round_trips() {
        let frame = seal(MsgType::DenseUpdate, b"payload bytes");
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let got = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(got, frame);
        let (msg, payload) = open(&got).unwrap();
        assert_eq!(msg, MsgType::DenseUpdate);
        assert_eq!(payload, b"payload bytes");
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cursor = io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD)
            .unwrap()
            .is_none());
    }

    #[test]
    fn eof_mid_header_is_truncated() {
        let frame = seal(MsgType::Hello, b"hi");
        for cut in 1..HEADER_LEN {
            let mut cursor = io::Cursor::new(frame[..cut].to_vec());
            let err = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, StreamError::Wire(WireError::Truncated { .. })),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn eof_mid_payload_is_truncated() {
        let frame = seal(MsgType::Hello, b"hello world");
        for cut in HEADER_LEN..frame.len() {
            let mut cursor = io::Cursor::new(frame[..cut].to_vec());
            let err = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, StreamError::Wire(WireError::Truncated { .. })),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        // A frame whose length field claims just over the cap: read_frame
        // must refuse without attempting the allocation.
        let mut frame = seal(MsgType::DenseModel, &[0u8; 8]);
        let cap = 4;
        frame[8..12].copy_from_slice(&(cap as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        match read_frame(&mut cursor, cap) {
            Err(StreamError::Oversized { advertised, max }) => {
                assert_eq!(advertised, cap + 1);
                assert_eq!(max, cap);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn hostile_length_header_cannot_trigger_unbounded_allocation() {
        // u32::MAX advertised payload against the default cap: must fail
        // fast instead of allocating 4 GiB.
        let mut frame = seal(MsgType::DenseModel, b"x");
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_PAYLOAD),
            Err(StreamError::Oversized { .. })
        ));
    }

    #[test]
    fn bad_magic_fails_before_payload_read() {
        let mut frame = seal(MsgType::DenseModel, b"abc");
        frame[0] = b'X';
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_PAYLOAD),
            Err(StreamError::Wire(WireError::BadMagic(_)))
        ));
    }

    /// A source that yields its script one chunk per read, interleaving
    /// `WouldBlock` between chunks — the shape of a non-blocking socket.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
        next: usize,
        blocked: bool,
    }

    impl Chunked {
        fn new(bytes: &[u8], chunk: usize) -> Self {
            Chunked {
                chunks: bytes.chunks(chunk.max(1)).map(<[u8]>::to_vec).collect(),
                next: 0,
                blocked: false,
            }
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"));
            }
            self.blocked = false;
            match self.chunks.get(self.next) {
                None => Ok(0),
                Some(c) => {
                    let n = c.len().min(buf.len());
                    buf[..n].copy_from_slice(&c[..n]);
                    if n == c.len() {
                        self.next += 1;
                    } else {
                        self.chunks[self.next].drain(..n);
                    }
                    Ok(n)
                }
            }
        }
    }

    /// Drive a reader over a chunked source to completion, counting the
    /// `Pending` returns along the way.
    fn poll_all(src: &mut Chunked, reader: &mut FrameReader) -> (Vec<Vec<u8>>, usize) {
        let mut frames = Vec::new();
        let mut pendings = 0;
        loop {
            match reader.poll(src).unwrap() {
                FramePoll::Frame(f) => frames.push(f),
                FramePoll::Pending => pendings += 1,
                FramePoll::Eof => return (frames, pendings),
            }
        }
    }

    #[test]
    fn frame_reader_reassembles_split_delivery() {
        let a = seal(MsgType::RoundAssign, b"round 7");
        let b = seal(MsgType::DenseUpdate, &vec![0xAB; 301]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&a);
        bytes.extend_from_slice(&b);
        for chunk in [1, 3, HEADER_LEN, 64, bytes.len()] {
            let mut src = Chunked::new(&bytes, chunk);
            let mut reader = FrameReader::new(MAX_FRAME_PAYLOAD);
            let (frames, pendings) = poll_all(&mut src, &mut reader);
            assert_eq!(frames, vec![a.clone(), b.clone()], "chunk {chunk}");
            assert!(pendings > 0, "the source interleaves WouldBlock");
            assert!(!reader.mid_frame(), "boundary after a clean drain");
        }
    }

    #[test]
    fn frame_reader_agrees_with_blocking_read_frame() {
        let frame = seal(MsgType::ScaffoldUpdate, b"pairs");
        let mut cursor = io::Cursor::new(frame.clone());
        let blocking = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        let mut src = Chunked::new(&frame, 5);
        let mut reader = FrameReader::new(MAX_FRAME_PAYLOAD);
        let (frames, _) = poll_all(&mut src, &mut reader);
        assert_eq!(frames, vec![blocking]);
    }

    #[test]
    fn frame_reader_eof_mid_frame_is_truncated() {
        let frame = seal(MsgType::Hello, b"hello world");
        for cut in 1..frame.len() {
            let mut src = Chunked::new(&frame[..cut], 4);
            let mut reader = FrameReader::new(MAX_FRAME_PAYLOAD);
            let err = loop {
                match reader.poll(&mut src) {
                    Ok(FramePoll::Pending) => {}
                    Ok(other) => panic!("cut at {cut} gave {other:?}"),
                    Err(e) => break e,
                }
            };
            assert!(
                matches!(err, StreamError::Wire(WireError::Truncated { .. })),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn frame_reader_rejects_oversized_before_allocation() {
        let mut frame = seal(MsgType::DenseModel, &[0u8; 8]);
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut src = Chunked::new(&frame, 3);
        let mut reader = FrameReader::new(MAX_FRAME_PAYLOAD);
        let err = loop {
            match reader.poll(&mut src) {
                Ok(FramePoll::Pending) => {}
                Ok(other) => panic!("expected Oversized, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StreamError::Oversized { .. }), "{err:?}");
        assert!(
            reader.buffered() <= HEADER_LEN,
            "nothing beyond the header may be allocated"
        );
    }

    #[test]
    fn frame_reader_clean_eof_between_frames() {
        let frame = seal(MsgType::Shutdown, b"");
        let mut src = Chunked::new(&frame, frame.len());
        let mut reader = FrameReader::new(MAX_FRAME_PAYLOAD);
        let (frames, _) = poll_all(&mut src, &mut reader);
        assert_eq!(frames, vec![frame]);
    }

    #[test]
    fn back_to_back_frames_on_one_stream() {
        let a = seal(MsgType::RoundAssign, b"round 0");
        let b = seal(MsgType::DenseModel, b"weights");
        let c = seal(MsgType::Shutdown, b"");
        let mut buf = Vec::new();
        for f in [&a, &b, &c] {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap(),
            a
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap(),
            b
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap(),
            c
        );
        assert!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD)
            .unwrap()
            .is_none());
    }
}
