//! Error type shared by every decoder in the crate.
//!
//! Decoders never panic on attacker-controlled (or merely corrupted)
//! bytes: every failure mode maps to a [`WireError`] variant so callers
//! can distinguish truncation from corruption from version skew.

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the advertised structure was complete.
    Truncated {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame does not start with the `SPTL` magic.
    BadMagic([u8; 4]),
    /// The frame's protocol version is not the one this build speaks.
    Version {
        /// Version found in the frame header.
        found: u8,
        /// Version this build supports.
        supported: u8,
    },
    /// The message-type tag byte is not a known [`MsgType`](crate::envelope::MsgType).
    BadTag(u8),
    /// The payload checksum did not match the header CRC.
    Crc {
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The payload length field disagrees with the actual payload.
    LengthMismatch {
        /// Length the header advertised.
        advertised: usize,
        /// Length implied by the buffer.
        actual: usize,
    },
    /// The payload decoded but its contents are structurally invalid
    /// (e.g. index out of range, inconsistent counts).
    Malformed(String),
}

impl WireError {
    /// Whether this failure is consistent with bytes being damaged in
    /// transit (bit flips, truncation, duplication) rather than a
    /// structural protocol violation.
    ///
    /// Every single-bit flip of a sealed frame lands in one of the
    /// transport-shaped variants: a flip in the payload fails the CRC, a
    /// flip in the header corrupts the magic, version, tag, length or the
    /// stored CRC itself. Receivers use this to decide whether a
    /// retransmission could help — a [`WireError::Malformed`] payload
    /// passed its checksum, so the *sender* produced invalid structure and
    /// resending the same bytes cannot fix it.
    pub fn is_transport_corruption(&self) -> bool {
        !matches!(self, WireError::Malformed(_))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"SPTL\")"),
            WireError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build speaks {supported})"
                )
            }
            WireError::BadTag(t) => write!(f, "unknown message-type tag {t:#04x}"),
            WireError::Crc { expected, actual } => {
                write!(
                    f,
                    "payload CRC mismatch: header {expected:#010x}, computed {actual:#010x}"
                )
            }
            WireError::LengthMismatch { advertised, actual } => {
                write!(
                    f,
                    "payload length mismatch: header says {advertised}, buffer has {actual}"
                )
            }
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}
