//! The frame envelope: a fixed 16-byte header wrapping every payload.
//!
//! Layout (all multi-byte fields little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic        b"SPTL"
//! 4       1     version      WIRE_VERSION (currently 1)
//! 5       1     msg type     MsgType tag byte
//! 6       2     reserved     zero on encode, ignored on decode
//! 8       4     payload len  u32, bytes following the header
//! 12      4     crc32        IEEE CRC-32 of header bytes 0-11 + payload
//! 16      ...   payload
//! ```
//!
//! The reserved halfword keeps the payload 8-byte-aligned relative to the
//! frame start and leaves room for flags without a version bump.
//!
//! The CRC covers the first twelve header bytes as well as the payload.
//! Covering only the payload would leave two single-bit-flip blind spots:
//! the reserved halfword (ignored on decode, so a flip there would pass
//! silently) and tag flips between two *valid* tags (e.g. `DenseUpdate`
//! 0x02 ↔ `ScaffoldModel` 0x03), which would decode as the wrong message
//! kind instead of failing.

use crate::crc32::Hasher;
use crate::error::WireError;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SPTL";

/// Protocol version this build encodes and accepts.
pub const WIRE_VERSION: u8 = 1;

/// Size of the fixed header preceding every payload.
pub const HEADER_LEN: usize = 16;

/// Message kinds carried over the wire, one per direction/algorithm pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// Server→client: dense f32 model weights (FedAvg / FedProx download,
    /// FedNova download without momentum).
    DenseModel = 0x01,
    /// Client→server: dense f32 model delta (FedAvg / FedProx upload).
    DenseUpdate = 0x02,
    /// Server→client: weights + server control variate (SCAFFOLD download).
    ScaffoldModel = 0x03,
    /// Client→server: delta + client control-variate delta (SCAFFOLD upload).
    ScaffoldUpdate = 0x04,
    /// Server→client: weights + aggregated momentum (FedNova download).
    FedNovaModel = 0x05,
    /// Client→server: normalized delta + local momentum (FedNova upload).
    FedNovaUpdate = 0x06,
    /// Server→client: encoder parameters (SPATL download), optionally with
    /// the gradient-control vector.
    SpatlEncoder = 0x07,
    /// Client→server: salient values + selected channel ids (SPATL upload).
    SpatlUpdate = 0x08,
    /// Either direction: top-k sparse tensor (u32 indices + f32 values).
    SparseTopK = 0x09,
    /// Either direction: f16-quantized dense tensor.
    QuantizedF16 = 0x0A,
    /// Either direction: batch-norm running statistics, sent as a dense f32
    /// auxiliary frame next to the main model/update frame.
    BnStats = 0x0B,
    /// Client→server control plane: a node introduces itself (client id +
    /// session fingerprint) when (re)connecting to a coordinator.
    Hello = 0x0C,
    /// Server→client control plane: the coordinator accepts (or rejects) a
    /// [`MsgType::Hello`] and reports the next round index.
    Join = 0x0D,
    /// Server→client control plane: round kickoff — round index, mode
    /// (train or evaluate) and the number of model frames that follow on
    /// the stream.
    RoundAssign = 0x0E,
    /// Client→server control plane: round completion — upload metadata
    /// (sample count, τ, ratios, accuracy) and the number of upload frames
    /// that follow on the stream.
    RoundDone = 0x0F,
    /// Either direction control plane: orderly session termination; the
    /// coordinator checkpoints its state before propagating it.
    Shutdown = 0x10,
    /// Edge→root: one edge aggregator's combined, weight-carrying upload
    /// for a round — per-client bookkeeping (and, for exactly-composable
    /// aggregators, the clients' original sealed upload frames verbatim),
    /// the edge's fault-ledger counters, and an optional pre-reduced
    /// summary for the robust aggregators. See `spatl_wire::tier`.
    EdgeCombined = 0x11,
}

impl MsgType {
    /// Parse a tag byte.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0x01 => MsgType::DenseModel,
            0x02 => MsgType::DenseUpdate,
            0x03 => MsgType::ScaffoldModel,
            0x04 => MsgType::ScaffoldUpdate,
            0x05 => MsgType::FedNovaModel,
            0x06 => MsgType::FedNovaUpdate,
            0x07 => MsgType::SpatlEncoder,
            0x08 => MsgType::SpatlUpdate,
            0x09 => MsgType::SparseTopK,
            0x0A => MsgType::QuantizedF16,
            0x0B => MsgType::BnStats,
            0x0C => MsgType::Hello,
            0x0D => MsgType::Join,
            0x0E => MsgType::RoundAssign,
            0x0F => MsgType::RoundDone,
            0x10 => MsgType::Shutdown,
            0x11 => MsgType::EdgeCombined,
            other => return Err(WireError::BadTag(other)),
        })
    }

    /// The wire tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }
}

/// Wrap `payload` in a framed envelope.
pub fn seal(msg: MsgType, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(msg.tag());
    frame.extend_from_slice(&[0u8; 2]);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut h = Hasher::new();
    h.update(&frame[..12]);
    h.update(payload);
    frame.extend_from_slice(&h.finalize().to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Validate a framed envelope and return `(msg type, payload bytes)`.
///
/// Checks, in order: length for a header, magic, version, tag, advertised
/// payload length against the buffer, and finally the payload CRC. The
/// error reports the *first* failed check, so version mismatches are
/// reported as such even when the rest of the frame is garbage.
pub fn open(frame: &[u8]) -> Result<(MsgType, &[u8]), WireError> {
    if frame.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            available: frame.len(),
        });
    }
    let magic: [u8; 4] = frame[0..4].try_into().expect("sliced 4 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = frame[4];
    if version != WIRE_VERSION {
        return Err(WireError::Version {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let msg = MsgType::from_tag(frame[5])?;
    let advertised = u32::from_le_bytes(frame[8..12].try_into().expect("sliced 4 bytes")) as usize;
    let actual = frame.len() - HEADER_LEN;
    if advertised > actual {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + advertised,
            available: frame.len(),
        });
    }
    if advertised < actual {
        return Err(WireError::LengthMismatch { advertised, actual });
    }
    let payload = &frame[HEADER_LEN..];
    let expected = u32::from_le_bytes(frame[12..16].try_into().expect("sliced 4 bytes"));
    let mut h = Hasher::new();
    h.update(&frame[..12]);
    h.update(payload);
    let computed = h.finalize();
    if expected != computed {
        return Err(WireError::Crc {
            expected,
            actual: computed,
        });
    }
    Ok((msg, payload))
}

/// Flip one bit of a frame in place — the canonical fault-injection
/// primitive for exercising the envelope's corruption detection.
/// `bit_index` is taken modulo the frame's bit length, so callers can feed
/// an arbitrary random draw without pre-clamping.
///
/// The CRC-32 covering both the header and the payload guarantees that
/// *any* single-bit flip of a sealed frame makes [`open`] fail with a
/// [`WireError::is_transport_corruption`] error — asserted exhaustively in
/// this module's tests.
pub fn flip_bit(frame: &mut [u8], bit_index: usize) {
    assert!(!frame.is_empty(), "cannot flip a bit of an empty frame");
    let bit = bit_index % (frame.len() * 8);
    frame[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let payload = b"hello federated world";
        let frame = seal(MsgType::DenseUpdate, payload);
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let (msg, got) = open(&frame).unwrap();
        assert_eq!(msg, MsgType::DenseUpdate);
        assert_eq!(got, payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = seal(MsgType::SparseTopK, &[]);
        let (msg, got) = open(&frame).unwrap();
        assert_eq!(msg, MsgType::SparseTopK);
        assert!(got.is_empty());
    }

    #[test]
    fn short_frame_is_truncated() {
        let frame = seal(MsgType::DenseModel, b"abc");
        for cut in 0..frame.len() {
            let err = open(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut frame = seal(MsgType::DenseModel, b"abc");
        frame[0] = b'X';
        assert!(matches!(open(&frame), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn version_bump_is_version_error_not_panic() {
        let mut frame = seal(MsgType::DenseModel, b"abc");
        frame[4] = WIRE_VERSION + 1;
        assert_eq!(
            open(&frame).unwrap_err(),
            WireError::Version {
                found: WIRE_VERSION + 1,
                supported: WIRE_VERSION
            }
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut frame = seal(MsgType::DenseModel, b"abc");
        frame[5] = 0xEE;
        // Recompute nothing: the tag check runs before the CRC check, so an
        // invalid tag is reported as such even though the CRC no longer
        // matches the damaged header.
        assert_eq!(open(&frame).unwrap_err(), WireError::BadTag(0xEE));
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut frame = seal(MsgType::DenseModel, b"abcdefgh");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(open(&frame), Err(WireError::Crc { .. })));
    }

    #[test]
    fn trailing_garbage_is_length_mismatch() {
        let mut frame = seal(MsgType::DenseModel, b"abc");
        frame.push(0xFF);
        assert!(matches!(
            open(&frame),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected_as_transport_corruption() {
        // The guarantee fault injection leans on: no single-bit flip of a
        // sealed frame can decode successfully, and every failure is
        // classified as transport corruption (so receivers request a
        // retransmission instead of treating it as a protocol violation).
        let frame = seal(MsgType::DenseUpdate, &[0x00, 0x5A, 0xFF, 0x13, 0x37]);
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            flip_bit(&mut damaged, bit);
            let err = open(&damaged).expect_err("flipped frame must not decode");
            assert!(
                err.is_transport_corruption(),
                "bit {bit} gave non-transport error {err:?}"
            );
        }
    }

    #[test]
    fn flip_bit_wraps_and_is_involutive() {
        let mut frame = seal(MsgType::DenseModel, b"xy");
        let original = frame.clone();
        let n_bits = frame.len() * 8;
        flip_bit(&mut frame, 3);
        flip_bit(&mut frame, 3 + n_bits); // same bit after wrap-around
        assert_eq!(frame, original);
    }

    #[test]
    fn all_tags_round_trip() {
        for tag in 0x01..=0x11 {
            let msg = MsgType::from_tag(tag).unwrap();
            assert_eq!(msg.tag(), tag);
        }
        assert!(MsgType::from_tag(0x00).is_err());
        assert!(MsgType::from_tag(0x12).is_err());
    }
}
