//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//!
//! This is the same checksum gzip/zlib/PNG use, so frames can be verified
//! with standard tooling. Pure std, no `unsafe`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 state, for checksumming a frame as it is written.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Fresh state.
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ byte as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"spatl wire protocol frame";
        let mut h = Hasher::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            data[i] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 1 << (i % 8);
        }
    }
}
