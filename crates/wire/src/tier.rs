//! Hierarchical-tier payload codec: the [`EdgeCombined`] frame an edge
//! aggregator sends its root coordinator once per round.
//!
//! A 2-tier topology puts an edge aggregator between the clients and the
//! root: the edge collects its slice of the cohort over the ordinary
//! client protocol, screens locally, and forwards **one** combined upload
//! upstream. That upload must carry enough weight information for the
//! root to renormalise across edges, so the payload has three parts:
//!
//! 1. **Entries** — one [`EdgeEntry`] per collected client with the full
//!    bookkeeping a flat coordinator would have read from the client's
//!    `RoundDone` header (sample weight, τ, byte accounting, divergence
//!    flag, accuracy in eval rounds). For exactly-composable aggregators
//!    the entry also carries the client's original sealed upload frames
//!    *verbatim*, so the root can replay the flat aggregation fold
//!    bit-for-bit.
//! 2. **Fault counters** — the numeric half of the edge's per-round fault
//!    ledger ([`TierFaultCounters`]), added into the root's ledger so the
//!    tree-wide record composes. Individual fault *events* stay
//!    edge-local (they can be unbounded; the counters are what the
//!    experiment roster consumes).
//! 3. **Reduced summary** — for the robust aggregators (coordinate
//!    median / trimmed mean) the edge pre-reduces its cohort into an
//!    [`EdgeReduced`] statistic vector and ships that instead of frames;
//!    the root then applies the statistic *across edges*
//!    (stat-of-stats), which is bounded-ε close to the flat result but
//!    not bit-identical — see `spatl_fl::compose` for the guarantee.
//!
//! Layout (all little-endian) — the [`MsgType::EdgeCombined`] payload:
//!
//! ```text
//! edge_id u32 · round u32 · fault counters 11×u32
//! n_entries u32 · entries…
//!   entry: client_id u32 · n_samples u64 · tau u64 · diverged u8
//!          keep_ratio f32 · flops_ratio f32 · accuracy f32
//!          bytes_download u64 · bytes_upload u64
//!          upload_payload u64 · upload_framed u64
//!          n_frames u32 · frames… (each: len u32 · bytes)
//! has_reduced u8 · reduced? (see EdgeReduced)
//! ```

use crate::envelope::MsgType;
use crate::error::WireError;

/// The numeric half of one edge's per-round fault ledger — every counter
/// of `spatl_fl::FaultRecord` except the unbounded event list, which
/// stays on the edge. The root adds these into its own round ledger so
/// the tree-wide counters equal what a flat coordinator would have
/// recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierFaultCounters {
    /// Clients of this edge's slice the round sampled.
    pub sampled: u32,
    /// Sampled clients that dropped out before training.
    pub dropouts: u32,
    /// Participants slowed by the straggler factor.
    pub stragglers: u32,
    /// Participants excluded for finishing after the deadline.
    pub deadline_dropped: u32,
    /// Transmission attempts that arrived corrupted.
    pub corrupted_uploads: u32,
    /// Retransmissions the edge requested.
    pub retries: u32,
    /// Participants dropped after exhausting the retry budget.
    pub retry_exhausted: u32,
    /// Clients that self-reported a non-finite local delta.
    pub local_divergence: u32,
    /// Uploads a configured adversary plan tampered with.
    pub byzantine: u32,
    /// Uploads the edge's screen policy quarantined.
    pub quarantined: u32,
    /// Retransmitted uploads already folded this round and discarded by
    /// the per-(round, client) dedup guard.
    pub duplicates: u32,
}

/// One collected client's contribution inside an [`EdgeCombined`]: the
/// bookkeeping a flat coordinator reads from the client's `RoundDone`
/// header, plus (exact composition only) the client's sealed upload
/// frames, byte-for-byte as the client produced them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeEntry {
    /// Global client id (ascending within the frame).
    pub client_id: u32,
    /// Local training-set size (aggregation weight).
    pub n_samples: u64,
    /// Local optimisation steps taken.
    pub tau: u64,
    /// Whether local training produced a non-finite delta.
    pub diverged: bool,
    /// Fraction of shared parameters uploaded.
    pub keep_ratio: f32,
    /// FLOPs ratio of the (masked) local model.
    pub flops_ratio: f32,
    /// Validation accuracy (eval rounds; zero in train rounds).
    pub accuracy: f32,
    /// Analytic Eq. 13 download bytes this round cost the client.
    pub bytes_download: u64,
    /// Analytic Eq. 13 upload bytes.
    pub bytes_upload: u64,
    /// Measured upload tensor-payload bytes (client→edge link).
    pub upload_payload: u64,
    /// Measured upload bytes on the wire, framing included.
    pub upload_framed: u64,
    /// The client's sealed upload frames, verbatim. Empty for
    /// bookkeeping-only entries (reduced composition, eval rounds, and
    /// uploads that failed the edge's decode or screen).
    pub frames: Vec<Vec<u8>>,
}

/// The per-index salient part of an [`EdgeReduced`] summary (SPATL): for
/// every shared-vector index at least one surviving client selected, the
/// robust statistic of the uploaded values, the number of clients that
/// voted, and (under gradient control) the statistic of the per-client
/// control steps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeSelection {
    /// Flat shared-vector indices, strictly ascending.
    pub indices: Vec<u32>,
    /// Robust statistic of the selecting clients' values, per index.
    pub values: Vec<f32>,
    /// How many clients voted on each index.
    pub counts: Vec<u32>,
    /// Robust statistic of the per-client control steps, per index;
    /// empty when gradient control is off.
    pub control_values: Vec<f32>,
}

/// An edge's pre-reduced cohort summary for the robust aggregators: the
/// per-coordinate statistic over the edge's surviving clients, plus the
/// weights the root needs to renormalise across edges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeReduced {
    /// Surviving clients behind this summary (`|S_e|` in the SCAFFOLD
    /// control scaling).
    pub survivors: u32,
    /// Total sample count over the survivors.
    pub n_samples: u64,
    /// Edge-local τ_eff over the survivors (FedNova; zero otherwise).
    pub tau_eff: f32,
    /// Per-coordinate statistic of the survivors' (τ-normalised, for
    /// FedNova) deltas. Empty when the summary is selection-only (SPATL).
    pub delta: Vec<f32>,
    /// Per-coordinate statistic of the survivors' control steps
    /// (SCAFFOLD); empty otherwise.
    pub control_delta: Vec<f32>,
    /// Per-coordinate statistic of the survivors' momentum buffers
    /// (FedNova); empty otherwise.
    pub velocity: Vec<f32>,
    /// Per-coordinate statistic of the survivors' batch-norm buffers;
    /// empty when the session has none.
    pub buffers: Vec<f32>,
    /// Per-index salient summary (SPATL); `None` for dense algorithms.
    pub selection: Option<EdgeSelection>,
}

/// One edge aggregator's combined upload for one round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeCombined {
    /// The edge's id (its `Hello.client_id` on the root link).
    pub edge_id: u32,
    /// Round this upload answers.
    pub round: u32,
    /// The edge's fault-ledger counters for the round.
    pub faults: TierFaultCounters,
    /// Per-client bookkeeping (and frames, under exact composition),
    /// ascending client id.
    pub entries: Vec<EdgeEntry>,
    /// Pre-reduced summary (robust aggregators); `None` under exact
    /// composition and in eval rounds.
    pub reduced: Option<EdgeReduced>,
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u32s(out: &mut Vec<u8>, xs: &[u32]) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Little-endian cursor shared by the tier decoders.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// A length-prefixed count, sanity-bounded by what the remaining
    /// buffer could possibly hold (`stride` bytes per element) so a
    /// corrupt length cannot trigger a huge allocation.
    fn count(&mut self, stride: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let room = self.buf.len() - self.pos;
        if n.saturating_mul(stride.max(1)) > room {
            return Err(WireError::Truncated {
                needed: self.pos + n * stride.max(1),
                available: self.buf.len(),
            });
        }
        Ok(n)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::LengthMismatch {
                advertised: self.pos,
                actual: self.buf.len(),
            });
        }
        Ok(())
    }
}

const FAULT_FIELDS: usize = 11;

/// Serialize an [`EdgeCombined`] into [`MsgType::EdgeCombined`] payload
/// bytes (the caller seals it).
pub fn encode_edge_combined(msg: &EdgeCombined) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&msg.edge_id.to_le_bytes());
    out.extend_from_slice(&msg.round.to_le_bytes());
    let f = &msg.faults;
    for c in [
        f.sampled,
        f.dropouts,
        f.stragglers,
        f.deadline_dropped,
        f.corrupted_uploads,
        f.retries,
        f.retry_exhausted,
        f.local_divergence,
        f.byzantine,
        f.quarantined,
        f.duplicates,
    ] {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&(msg.entries.len() as u32).to_le_bytes());
    for e in &msg.entries {
        out.extend_from_slice(&e.client_id.to_le_bytes());
        out.extend_from_slice(&e.n_samples.to_le_bytes());
        out.extend_from_slice(&e.tau.to_le_bytes());
        out.push(e.diverged as u8);
        out.extend_from_slice(&e.keep_ratio.to_le_bytes());
        out.extend_from_slice(&e.flops_ratio.to_le_bytes());
        out.extend_from_slice(&e.accuracy.to_le_bytes());
        out.extend_from_slice(&e.bytes_download.to_le_bytes());
        out.extend_from_slice(&e.bytes_upload.to_le_bytes());
        out.extend_from_slice(&e.upload_payload.to_le_bytes());
        out.extend_from_slice(&e.upload_framed.to_le_bytes());
        out.extend_from_slice(&(e.frames.len() as u32).to_le_bytes());
        for frame in &e.frames {
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(frame);
        }
    }
    match &msg.reduced {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            out.extend_from_slice(&r.survivors.to_le_bytes());
            out.extend_from_slice(&r.n_samples.to_le_bytes());
            out.extend_from_slice(&r.tau_eff.to_le_bytes());
            put_f32s(&mut out, &r.delta);
            put_f32s(&mut out, &r.control_delta);
            put_f32s(&mut out, &r.velocity);
            put_f32s(&mut out, &r.buffers);
            match &r.selection {
                None => out.push(0),
                Some(sel) => {
                    out.push(1);
                    put_u32s(&mut out, &sel.indices);
                    put_f32s(&mut out, &sel.values);
                    put_u32s(&mut out, &sel.counts);
                    put_f32s(&mut out, &sel.control_values);
                }
            }
        }
    }
    out
}

/// Decode a [`MsgType::EdgeCombined`] payload.
pub fn decode_edge_combined(payload: &[u8]) -> Result<EdgeCombined, WireError> {
    let mut c = Cur::new(payload);
    let edge_id = c.u32()?;
    let round = c.u32()?;
    let mut counters = [0u32; FAULT_FIELDS];
    for x in counters.iter_mut() {
        *x = c.u32()?;
    }
    let faults = TierFaultCounters {
        sampled: counters[0],
        dropouts: counters[1],
        stragglers: counters[2],
        deadline_dropped: counters[3],
        corrupted_uploads: counters[4],
        retries: counters[5],
        retry_exhausted: counters[6],
        local_divergence: counters[7],
        byzantine: counters[8],
        quarantined: counters[9],
        duplicates: counters[10],
    };
    let n_entries = c.count(1)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let client_id = c.u32()?;
        let n_samples = c.u64()?;
        let tau = c.u64()?;
        let diverged = match c.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(WireError::Malformed(format!(
                    "diverged flag must be 0/1, got {other}"
                )))
            }
        };
        let keep_ratio = c.f32()?;
        let flops_ratio = c.f32()?;
        let accuracy = c.f32()?;
        let bytes_download = c.u64()?;
        let bytes_upload = c.u64()?;
        let upload_payload = c.u64()?;
        let upload_framed = c.u64()?;
        let n_frames = c.count(1)?;
        let mut frames = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let len = c.count(1)?;
            frames.push(c.take(len)?.to_vec());
        }
        entries.push(EdgeEntry {
            client_id,
            n_samples,
            tau,
            diverged,
            keep_ratio,
            flops_ratio,
            accuracy,
            bytes_download,
            bytes_upload,
            upload_payload,
            upload_framed,
            frames,
        });
    }
    let reduced = match c.u8()? {
        0 => None,
        1 => {
            let survivors = c.u32()?;
            let n_samples = c.u64()?;
            let tau_eff = c.f32()?;
            let delta = c.f32s()?;
            let control_delta = c.f32s()?;
            let velocity = c.f32s()?;
            let buffers = c.f32s()?;
            let selection = match c.u8()? {
                0 => None,
                1 => {
                    let indices = c.u32s()?;
                    let values = c.f32s()?;
                    let counts = c.u32s()?;
                    let control_values = c.f32s()?;
                    if values.len() != indices.len() || counts.len() != indices.len() {
                        return Err(WireError::Malformed(format!(
                            "selection arrays disagree: {} indices, {} values, {} counts",
                            indices.len(),
                            values.len(),
                            counts.len()
                        )));
                    }
                    if !control_values.is_empty() && control_values.len() != indices.len() {
                        return Err(WireError::Malformed(format!(
                            "selection carries {} control values for {} indices",
                            control_values.len(),
                            indices.len()
                        )));
                    }
                    Some(EdgeSelection {
                        indices,
                        values,
                        counts,
                        control_values,
                    })
                }
                other => {
                    return Err(WireError::Malformed(format!(
                        "selection flag must be 0/1, got {other}"
                    )))
                }
            };
            Some(EdgeReduced {
                survivors,
                n_samples,
                tau_eff,
                delta,
                control_delta,
                velocity,
                buffers,
                selection,
            })
        }
        other => {
            return Err(WireError::Malformed(format!(
                "reduced flag must be 0/1, got {other}"
            )))
        }
    };
    c.done()?;
    Ok(EdgeCombined {
        edge_id,
        round,
        faults,
        entries,
        reduced,
    })
}

/// Seal an [`EdgeCombined`] into a framed [`MsgType::EdgeCombined`]
/// envelope (convenience over [`encode_edge_combined`] + `seal`).
pub fn seal_edge_combined(msg: &EdgeCombined) -> Vec<u8> {
    crate::envelope::seal(MsgType::EdgeCombined, &encode_edge_combined(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{open, seal};

    fn sample() -> EdgeCombined {
        EdgeCombined {
            edge_id: 1,
            round: 7,
            faults: TierFaultCounters {
                sampled: 3,
                dropouts: 1,
                corrupted_uploads: 2,
                retries: 1,
                quarantined: 1,
                duplicates: 1,
                ..Default::default()
            },
            entries: vec![
                EdgeEntry {
                    client_id: 2,
                    n_samples: 18,
                    tau: 3,
                    diverged: false,
                    keep_ratio: 0.5,
                    flops_ratio: 0.75,
                    accuracy: 0.0,
                    bytes_download: 100,
                    bytes_upload: 50,
                    upload_payload: 48,
                    upload_framed: 64,
                    frames: vec![seal(MsgType::DenseUpdate, &[1, 2, 3]), Vec::new()],
                },
                EdgeEntry {
                    client_id: 3,
                    diverged: true,
                    ..Default::default()
                },
            ],
            reduced: Some(EdgeReduced {
                survivors: 2,
                n_samples: 36,
                tau_eff: 3.5,
                delta: vec![0.25, -1.0],
                control_delta: vec![0.125],
                velocity: Vec::new(),
                buffers: vec![1.0],
                selection: Some(EdgeSelection {
                    indices: vec![0, 5],
                    values: vec![0.5, -0.5],
                    counts: vec![2, 1],
                    control_values: Vec::new(),
                }),
            }),
        }
    }

    #[test]
    fn round_trips() {
        let msg = sample();
        let decoded = decode_edge_combined(&encode_edge_combined(&msg)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn minimal_round_trips() {
        let msg = EdgeCombined {
            edge_id: 0,
            round: 0,
            ..Default::default()
        };
        let decoded = decode_edge_combined(&encode_edge_combined(&msg)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn sealed_frame_round_trips() {
        let msg = sample();
        let frame = seal_edge_combined(&msg);
        let (tag, payload) = open(&frame).unwrap();
        assert_eq!(tag, MsgType::EdgeCombined);
        assert_eq!(decode_edge_combined(payload).unwrap(), msg);
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = encode_edge_combined(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_edge_combined(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_edge_combined(&sample());
        bytes.push(0);
        assert!(matches!(
            decode_edge_combined(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_length_cannot_over_allocate() {
        // A u32::MAX entry count must fail fast as truncation, not OOM.
        let mut bytes = encode_edge_combined(&EdgeCombined::default());
        // n_entries sits after edge_id + round + 11 counters = 52 bytes.
        bytes[52..56].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_edge_combined(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn mismatched_selection_arrays_rejected() {
        let mut msg = sample();
        if let Some(r) = &mut msg.reduced {
            if let Some(sel) = &mut r.selection {
                sel.counts.pop();
            }
        }
        assert!(matches!(
            decode_edge_combined(&encode_edge_combined(&msg)),
            Err(WireError::Malformed(_))
        ));
    }
}
