//! Payload codecs: the byte layouts inside the envelope, one per message
//! family. All integers and floats are little-endian.
//!
//! Layout conventions, chosen so tensor payloads tie exactly to the
//! analytic communication model (`CommModel` in `spatl-fl`):
//!
//! * **dense** (`DenseModel` / `DenseUpdate`): raw `n × f32`, no count —
//!   the element count is the payload length / 4. Payload bytes = `4n`,
//!   exactly the analytic figure.
//! * **pair** (`ScaffoldModel` / `ScaffoldUpdate` / `FedNovaModel` /
//!   `FedNovaUpdate`): two equal-length `f32` vectors concatenated
//!   (weights‖control, delta‖control-delta, weights‖momentum,
//!   delta‖velocity). Payload bytes = `8n`, exactly analytic.
//! * **SPATL encoder download**: encoder parameters, optionally followed
//!   by an equal-length gradient-control vector. Whether control rides
//!   along is session configuration known to both ends, so no flag byte
//!   is spent: payload is `4e` or `8e`, exactly analytic.
//! * **SPATL update upload**: `u32` channel count, then the selected
//!   channel ids (`u32` each), then the salient values (`f32` each, count
//!   derived from the remaining bytes). Payload bytes =
//!   `4 + 4·channels + 4·values`: 4 bytes of metadata over analytic.
//! * **top-k sparse**: `u32` dense length, `u32` k, then `k × u32`
//!   strictly-increasing indices, then `k × f32` values. Payload bytes =
//!   `8 + 8k`: 8 bytes of metadata over the analytic `8k`.
//! * **f16 quantized**: raw `n × u16` binary16 words. Payload bytes =
//!   `2n`, exactly half the dense figure.
//!
//! Decoders validate structure (divisibility, counts, index ordering and
//! range) and return [`WireError::Malformed`] rather than panicking.

use crate::error::WireError;
use crate::f16::{f16_bits_to_f32, f32_to_f16_bits};

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

/// Cursor over a payload with truncation-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                available: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("sliced 4 bytes")))
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, WireError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| WireError::Malformed("count overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunked 4 bytes")))
            .collect())
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| WireError::Malformed("count overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunked 4 bytes")))
            .collect())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} unconsumed trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn push_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    out.reserve(xs.len() * 4);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn push_u32s(out: &mut Vec<u8>, xs: &[u32]) {
    out.reserve(xs.len() * 4);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Encode a dense f32 vector: raw `4n` bytes.
pub fn encode_dense(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::new();
    push_f32s(&mut out, values);
    out
}

/// Decode a dense f32 vector.
pub fn decode_dense(payload: &[u8]) -> Result<Vec<f32>, WireError> {
    if !payload.len().is_multiple_of(4) {
        return Err(WireError::Malformed(format!(
            "dense payload length {} not a multiple of 4",
            payload.len()
        )));
    }
    let mut r = Reader::new(payload);
    let out = r.f32s(payload.len() / 4)?;
    r.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pair (SCAFFOLD, FedNova)
// ---------------------------------------------------------------------------

/// Two equal-length f32 vectors travelling together (weights‖control,
/// delta‖velocity, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// First vector (model weights / update delta).
    pub primary: Vec<f32>,
    /// Second vector (control variate / momentum / velocity).
    pub secondary: Vec<f32>,
}

/// Encode two equal-length vectors: `8n` bytes.
pub fn encode_pair(primary: &[f32], secondary: &[f32]) -> Vec<u8> {
    assert_eq!(
        primary.len(),
        secondary.len(),
        "pair codec requires equal lengths"
    );
    let mut out = Vec::new();
    push_f32s(&mut out, primary);
    push_f32s(&mut out, secondary);
    out
}

/// Decode a pair payload; halves the payload to recover both vectors.
pub fn decode_pair(payload: &[u8]) -> Result<Pair, WireError> {
    if !payload.len().is_multiple_of(8) {
        return Err(WireError::Malformed(format!(
            "pair payload length {} not a multiple of 8",
            payload.len()
        )));
    }
    let n = payload.len() / 8;
    let mut r = Reader::new(payload);
    let primary = r.f32s(n)?;
    let secondary = r.f32s(n)?;
    r.finish()?;
    Ok(Pair { primary, secondary })
}

// ---------------------------------------------------------------------------
// SPATL encoder download
// ---------------------------------------------------------------------------

/// Encoder parameters with optional gradient-control vector (SPATL
/// download).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatlEncoder {
    /// Flattened encoder parameters.
    pub encoder: Vec<f32>,
    /// Gradient-control vector, same length as `encoder`, when the session
    /// runs with gradient control enabled.
    pub control: Option<Vec<f32>>,
}

/// Encode the SPATL download: `4e` bytes, or `8e` with gradient control.
pub fn encode_spatl_encoder(encoder: &[f32], control: Option<&[f32]>) -> Vec<u8> {
    let mut out = Vec::new();
    push_f32s(&mut out, encoder);
    if let Some(c) = control {
        assert_eq!(
            c.len(),
            encoder.len(),
            "gradient-control vector must match encoder length"
        );
        push_f32s(&mut out, c);
    }
    out
}

/// Decode the SPATL download. `with_control` is session configuration
/// (both ends know whether gradient control is enabled), not a wire flag.
pub fn decode_spatl_encoder(payload: &[u8], with_control: bool) -> Result<SpatlEncoder, WireError> {
    let divisor = if with_control { 8 } else { 4 };
    if !payload.len().is_multiple_of(divisor) {
        return Err(WireError::Malformed(format!(
            "spatl encoder payload length {} not a multiple of {divisor}",
            payload.len()
        )));
    }
    let n = payload.len() / divisor;
    let mut r = Reader::new(payload);
    let encoder = r.f32s(n)?;
    let control = if with_control { Some(r.f32s(n)?) } else { None };
    r.finish()?;
    Ok(SpatlEncoder { encoder, control })
}

// ---------------------------------------------------------------------------
// SPATL update upload
// ---------------------------------------------------------------------------

/// Salient values plus the channel ids that select them (SPATL upload).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatlUpdate {
    /// Selected channel ids, strictly increasing.
    pub channels: Vec<u32>,
    /// Salient parameter values, in flat-index order.
    pub values: Vec<f32>,
}

/// Metadata bytes the SPATL update spends beyond the analytic figure
/// (one `u32` channel count).
pub const SPATL_UPDATE_METADATA: usize = 4;

/// Encode the SPATL upload: `4 + 4·channels + 4·values` bytes.
pub fn encode_spatl_update(channels: &[u32], values: &[f32]) -> Vec<u8> {
    debug_assert!(
        channels.windows(2).all(|w| w[0] < w[1]),
        "channel ids must be strictly increasing"
    );
    let mut out = Vec::new();
    out.extend_from_slice(&(channels.len() as u32).to_le_bytes());
    push_u32s(&mut out, channels);
    push_f32s(&mut out, values);
    out
}

/// Decode the SPATL upload.
pub fn decode_spatl_update(payload: &[u8]) -> Result<SpatlUpdate, WireError> {
    let mut r = Reader::new(payload);
    let n_channels = r.u32()? as usize;
    let channels = r.u32s(n_channels)?;
    if !channels.windows(2).all(|w| w[0] < w[1]) {
        return Err(WireError::Malformed(
            "channel ids not strictly increasing".into(),
        ));
    }
    let rest = r.remaining();
    if !rest.is_multiple_of(4) {
        return Err(WireError::Malformed(format!(
            "spatl value bytes {rest} not a multiple of 4"
        )));
    }
    let values = r.f32s(rest / 4)?;
    r.finish()?;
    Ok(SpatlUpdate { channels, values })
}

// ---------------------------------------------------------------------------
// Top-k sparse
// ---------------------------------------------------------------------------

/// A sparse view of a dense vector: `k` surviving entries.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTopK {
    /// Length of the dense vector this sparsifies.
    pub dense_len: u32,
    /// Flat indices of surviving entries, strictly increasing.
    pub indices: Vec<u32>,
    /// Values at those indices.
    pub values: Vec<f32>,
}

/// Metadata bytes the sparse codec spends beyond the analytic `8k`
/// (dense length + k, one `u32` each).
pub const SPARSE_METADATA: usize = 8;

impl SparseTopK {
    /// Keep the `k` largest-magnitude entries of `dense`.
    pub fn from_dense(dense: &[f32], k: usize) -> Self {
        let k = k.min(dense.len());
        let mut order: Vec<u32> = (0..dense.len() as u32).collect();
        // Largest magnitude first; stable total order via the index
        // tiebreak keeps encoding deterministic in the presence of ties.
        order.sort_by(|&a, &b| {
            let (ma, mb) = (dense[a as usize].abs(), dense[b as usize].abs());
            mb.total_cmp(&ma).then(a.cmp(&b))
        });
        let mut indices: Vec<u32> = order[..k].to_vec();
        indices.sort_unstable();
        let values = indices.iter().map(|&i| dense[i as usize]).collect();
        SparseTopK {
            dense_len: dense.len() as u32,
            indices,
            values,
        }
    }

    /// Scatter back to a dense vector, zeros elsewhere.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_len as usize];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }
}

/// Encode a sparse vector: `8 + 8k` bytes.
pub fn encode_topk(sparse: &SparseTopK) -> Vec<u8> {
    assert_eq!(
        sparse.indices.len(),
        sparse.values.len(),
        "sparse index/value counts must match"
    );
    let mut out = Vec::new();
    out.extend_from_slice(&sparse.dense_len.to_le_bytes());
    out.extend_from_slice(&(sparse.indices.len() as u32).to_le_bytes());
    push_u32s(&mut out, &sparse.indices);
    push_f32s(&mut out, &sparse.values);
    out
}

/// Decode a sparse vector, validating index order and range.
pub fn decode_topk(payload: &[u8]) -> Result<SparseTopK, WireError> {
    let mut r = Reader::new(payload);
    let dense_len = r.u32()?;
    let k = r.u32()? as usize;
    let indices = r.u32s(k)?;
    if !indices.windows(2).all(|w| w[0] < w[1]) {
        return Err(WireError::Malformed(
            "sparse indices not strictly increasing".into(),
        ));
    }
    if let Some(&last) = indices.last() {
        if last >= dense_len {
            return Err(WireError::Malformed(format!(
                "sparse index {last} out of range for dense length {dense_len}"
            )));
        }
    }
    let values = r.f32s(k)?;
    r.finish()?;
    Ok(SparseTopK {
        dense_len,
        indices,
        values,
    })
}

// ---------------------------------------------------------------------------
// f16 quantized
// ---------------------------------------------------------------------------

/// Encode a dense vector at half precision: `2n` bytes.
pub fn encode_f16_dense(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &x in values {
        out.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
    }
    out
}

/// Decode a half-precision payload back to f32.
pub fn decode_f16_dense(payload: &[u8]) -> Result<Vec<f32>, WireError> {
    if !payload.len().is_multiple_of(2) {
        return Err(WireError::Malformed(format!(
            "f16 payload length {} not a multiple of 2",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(2)
        .map(|c| f16_bits_to_f32(u16::from_le_bytes(c.try_into().expect("chunked 2 bytes"))))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip_and_exact_size() {
        let xs = vec![1.0f32, -2.5, 0.0, f32::MIN_POSITIVE, 1e30];
        let payload = encode_dense(&xs);
        assert_eq!(payload.len(), 4 * xs.len());
        assert_eq!(decode_dense(&payload).unwrap(), xs);
        assert!(decode_dense(&[0u8; 3]).is_err());
        assert_eq!(decode_dense(&[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn pair_round_trip_and_exact_size() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![-1.0f32, -2.0, -3.0];
        let payload = encode_pair(&a, &b);
        assert_eq!(payload.len(), 8 * a.len());
        let pair = decode_pair(&payload).unwrap();
        assert_eq!(pair.primary, a);
        assert_eq!(pair.secondary, b);
        assert!(decode_pair(&[0u8; 12]).is_err());
    }

    #[test]
    fn spatl_encoder_with_and_without_control() {
        let enc = vec![0.5f32; 7];
        let ctl = vec![-0.25f32; 7];

        let plain = encode_spatl_encoder(&enc, None);
        assert_eq!(plain.len(), 4 * enc.len());
        let d = decode_spatl_encoder(&plain, false).unwrap();
        assert_eq!(d.encoder, enc);
        assert!(d.control.is_none());

        let with = encode_spatl_encoder(&enc, Some(&ctl));
        assert_eq!(with.len(), 8 * enc.len());
        let d = decode_spatl_encoder(&with, true).unwrap();
        assert_eq!(d.encoder, enc);
        assert_eq!(d.control.as_deref(), Some(&ctl[..]));
    }

    #[test]
    fn spatl_update_round_trip_and_metadata() {
        let channels = vec![0u32, 3, 17];
        let values = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let payload = encode_spatl_update(&channels, &values);
        assert_eq!(
            payload.len(),
            SPATL_UPDATE_METADATA + 4 * channels.len() + 4 * values.len()
        );
        let d = decode_spatl_update(&payload).unwrap();
        assert_eq!(d.channels, channels);
        assert_eq!(d.values, values);
    }

    #[test]
    fn spatl_update_rejects_unsorted_channels() {
        let mut raw = encode_dense(&[]); // build raw bytes by hand
        raw.extend_from_slice(&2u32.to_le_bytes());
        raw.extend_from_slice(&5u32.to_le_bytes());
        raw.extend_from_slice(&5u32.to_le_bytes()); // duplicate channel
        assert!(matches!(
            decode_spatl_update(&raw),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn topk_selects_largest_magnitudes() {
        let dense = vec![0.1f32, -5.0, 0.0, 2.0, -0.3, 4.0];
        let s = SparseTopK::from_dense(&dense, 3);
        assert_eq!(s.indices, vec![1, 3, 5]);
        assert_eq!(s.values, vec![-5.0, 2.0, 4.0]);
        let back = s.to_dense();
        assert_eq!(back, vec![0.0, -5.0, 0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn topk_round_trip_and_size() {
        let dense: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.3).collect();
        let s = SparseTopK::from_dense(&dense, 10);
        let payload = encode_topk(&s);
        assert_eq!(payload.len(), SPARSE_METADATA + 8 * 10);
        assert_eq!(decode_topk(&payload).unwrap(), s);
    }

    #[test]
    fn topk_rejects_out_of_range_and_unsorted() {
        let s = SparseTopK {
            dense_len: 4,
            indices: vec![1, 9],
            values: vec![1.0, 2.0],
        };
        assert!(matches!(
            decode_topk(&encode_topk(&s)),
            Err(WireError::Malformed(_))
        ));
        let s = SparseTopK {
            dense_len: 10,
            indices: vec![5, 2],
            values: vec![1.0, 2.0],
        };
        assert!(matches!(
            decode_topk(&encode_topk(&s)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn topk_k_clamps_to_len_and_handles_empty() {
        let s = SparseTopK::from_dense(&[1.0, 2.0], 10);
        assert_eq!(s.indices.len(), 2);
        let s = SparseTopK::from_dense(&[], 3);
        assert_eq!(s.indices.len(), 0);
        assert_eq!(decode_topk(&encode_topk(&s)).unwrap(), s);
    }

    #[test]
    fn f16_round_trip_size_and_tolerance() {
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.37).collect();
        let payload = encode_f16_dense(&xs);
        assert_eq!(payload.len(), 2 * xs.len());
        let back = decode_f16_dense(&payload).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() / 2048.0 + 1e-7, "{a} vs {b}");
        }
        assert!(decode_f16_dense(&[0u8; 3]).is_err());
    }
}
