//! FIG-RL kernel — selection-agent inference latency and graph extraction.
//!
//! The paper reports one-shot selection inference at 0.36 ms on a V100 with
//! a 26 KB agent; this bench measures the same operation on CPU.

use criterion::{criterion_group, criterion_main, Criterion};
use spatl::prelude::*;

fn bench_graph_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_extract");
    group.sample_size(20);
    for kind in [ModelKind::ResNet20, ModelKind::ResNet56, ModelKind::Vgg11] {
        let model = ModelConfig::cifar(kind).build();
        group.bench_function(kind.name(), |b| b.iter(|| extract(&model)));
    }
    group.finish();
}

fn bench_agent_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_inference");
    group.sample_size(50);
    for kind in [ModelKind::ResNet20, ModelKind::ResNet56] {
        let model = ModelConfig::cifar(kind).build();
        let graph = extract(&model);
        let agent = ActorCritic::new(AgentConfig::default(), 1);
        group.bench_function(kind.name(), |b| b.iter(|| agent.evaluate(&graph)));
    }
    group.finish();
}

fn bench_ppo_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppo_step");
    group.sample_size(10);
    let model = ModelConfig::cifar(ModelKind::ResNet20).build();
    let graph = extract(&model);
    let mut agent = ActorCritic::new(AgentConfig::default(), 2);
    let eval = agent.evaluate(&graph);
    let action = eval.mu.clone();
    let lp = agent.log_prob(&eval.mu, &action);
    group.bench_function("single_transition", |b| {
        b.iter(|| {
            agent.ppo_step(
                &[&graph],
                std::slice::from_ref(&action),
                &[lp],
                &[1.0],
                &[0.5],
                false,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_extraction,
    bench_agent_inference,
    bench_ppo_update
);
criterion_main!(benches);
