//! TAB-1/TAB-2 kernel — server aggregation cost per algorithm and salient
//! index selection, the per-round server-side work.

use criterion::{criterion_group, criterion_main, Criterion};
use spatl::fl::{Algorithm, CommModel, FlConfig, GlobalState, LocalOutcome, SpatlOptions};
use spatl::prelude::*;
use spatl::pruning::Criterion as PruneCriterion;

fn fake_outcome(p: usize, id: usize, sparse: bool) -> LocalOutcome {
    let delta = vec![0.01; p];
    let selected = sparse.then(|| {
        let indices: Vec<u32> = (0..p as u32).step_by(2).collect();
        let values = vec![0.01; indices.len()];
        spatl::fl::SelectedUpdate {
            indices,
            values,
            channels: 64,
            channel_ids: (0..64).collect(),
        }
    });
    LocalOutcome {
        client_id: id,
        n_samples: 100,
        tau: 10,
        delta,
        selected,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: false,
        bytes: CommModel::dense(p),
        wire: spatl::fl::WireBytes::default(),
        frames: Vec::new(),
        keep_ratio: if sparse { 0.5 } else { 1.0 },
        flops_ratio: 1.0,
    }
}

fn bench_aggregation(c: &mut Criterion) {
    let p = 100_000usize;
    let n_clients = 10usize;
    let mut group = c.benchmark_group("server_aggregate");
    group.sample_size(10);

    let cases: Vec<(Algorithm, &str, bool)> = vec![
        (Algorithm::FedAvg, "fedavg", false),
        (Algorithm::FedNova, "fednova", false),
        (Algorithm::Scaffold, "scaffold", false),
        (
            Algorithm::Spatl(SpatlOptions::default()),
            "spatl_sparse",
            true,
        ),
    ];
    for (alg, name, sparse) in cases {
        let cfg = FlConfig::new(alg);
        let outcomes: Vec<LocalOutcome> =
            (0..n_clients).map(|i| fake_outcome(p, i, sparse)).collect();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut g = GlobalState {
                    shared: vec![0.0; p],
                    control: if alg.uses_control() {
                        vec![0.0; p]
                    } else {
                        Vec::new()
                    },
                    momentum: Vec::new(),
                    buffers: Vec::new(),
                };
                g.aggregate(&cfg, &outcomes, n_clients);
                g.shared[0]
            });
        });
    }
    group.finish();
}

fn bench_salient_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("salient_indices");
    group.sample_size(20);
    for kind in [ModelKind::ResNet20, ModelKind::Vgg11] {
        let mut model = ModelConfig::cifar(kind).build();
        let n = model.prune_points.len();
        apply_sparsities(&mut model, &vec![0.5; n], PruneCriterion::L2);
        group.bench_function(kind.name(), |b| b.iter(|| salient_param_indices(&model)));
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_salient_selection);
criterion_main!(benches);
