//! Substrate micro-benchmarks: matmul, im2col, conv and full-model
//! forward/backward — the kernels every experiment's wall-clock reduces to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatl::prelude::*;
use spatl::tensor::{im2col, matmul, Conv2dGeometry};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let mut rng = TensorRng::seed_from(1);
        let a = rng.normal_tensor([n, n], 0.0, 1.0);
        let b = rng.normal_tensor([n, n], 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let x = rng.normal_tensor([8, 16, 16, 16], 0.0, 1.0);
    let g = Conv2dGeometry {
        in_channels: 16,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let mut group = c.benchmark_group("im2col");
    group.sample_size(10);
    group.bench_function("8x16x16x16_k3", |b| b.iter(|| im2col(&x, &g)));
    group.finish();
}

fn bench_model_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fwd_bwd");
    group.sample_size(10);
    for kind in [ModelKind::ResNet20, ModelKind::Vgg11] {
        let mut model = ModelConfig::cifar(kind).build();
        let mut rng = TensorRng::seed_from(3);
        let x = rng.normal_tensor([8, 3, 16, 16], 0.0, 1.0);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                model.zero_grad();
                let y = model.forward(&x, true);
                model.backward(&spatl::tensor::Tensor::ones(y.dims().to_vec()))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_im2col,
    bench_model_forward_backward
);
criterion_main!(benches);
