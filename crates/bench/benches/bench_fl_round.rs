//! FIG-LC / FIG-LOCAL / FIG-ROUNDS kernel — wall-clock of one federated
//! round per algorithm at miniature scale.

use criterion::{criterion_group, criterion_main, Criterion};
use spatl::prelude::*;

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round");
    group.sample_size(10);
    let cases: Vec<(Algorithm, &str)> = vec![
        (Algorithm::FedAvg, "fedavg"),
        (Algorithm::Scaffold, "scaffold"),
        (Algorithm::FedNova, "fednova"),
        (Algorithm::Spatl(SpatlOptions::default()), "spatl"),
    ];
    for (alg, name) in cases {
        group.bench_function(name, |b| {
            // Build once per iteration batch; run_round mutates state, so a
            // fresh simulation keeps iterations comparable.
            b.iter_batched(
                || {
                    ExperimentBuilder::new(alg)
                        .clients(3)
                        .samples_per_client(24)
                        .rounds(1)
                        .local_epochs(1)
                        .batch_size(12)
                        .seed(5)
                        .build()
                },
                |mut sim| sim.run_round(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_transfer_adaptation(c: &mut Criterion) {
    // TAB-3 kernel: predictor-only adaptation of a new client.
    let mut group = c.benchmark_group("transfer_adapt");
    group.sample_size(10);
    let synth = SynthConfig::cifar10_like();
    let train = synth_cifar10(&synth, 40, 1);
    let model = ModelConfig::cifar(ModelKind::ResNet20).build();
    group.bench_function("resnet20_one_epoch", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| adapt_predictor(&mut m, &train, 1, 0.05, 3),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_round, bench_transfer_adaptation);
criterion_main!(benches);
