//! TAB-4 / TAB-INF kernel — saliency scoring, mask application and FLOPs
//! profiling.

use criterion::{criterion_group, criterion_main, Criterion};
use spatl::prelude::*;
use spatl::pruning::Criterion as PruneCriterion;

fn bench_saliency(c: &mut Criterion) {
    let mut group = c.benchmark_group("saliency");
    group.sample_size(20);
    let model = ModelConfig::cifar(ModelKind::ResNet56).build();
    let conv = model.conv_at(model.prune_points[10].layer);
    for (crit, name) in [
        (PruneCriterion::L1, "l1"),
        (PruneCriterion::L2, "l2"),
        (PruneCriterion::Fpgm, "fpgm"),
    ] {
        group.bench_function(name, |b| b.iter(|| channel_saliency(conv, crit)));
    }
    group.finish();
}

fn bench_apply_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_sparsities");
    group.sample_size(20);
    for kind in [ModelKind::ResNet20, ModelKind::ResNet56] {
        let model = ModelConfig::cifar(kind).build();
        let n = model.prune_points.len();
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || model.clone(),
                |mut m| apply_sparsities(&mut m, &vec![0.4; n], PruneCriterion::L2),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_flops_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("flops_profile");
    group.sample_size(50);
    for kind in [ModelKind::ResNet20, ModelKind::Vgg11] {
        let model = ModelConfig::cifar(kind).build();
        group.bench_function(kind.name(), |b| b.iter(|| profile(&model)));
    }
    group.finish();
}

fn bench_sfp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfp_soft_step");
    group.sample_size(20);
    let model = ModelConfig::cifar(ModelKind::ResNet20).build();
    let sfp = SoftFilterPruner::new(0.4);
    group.bench_function("resnet20", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| sfp.soft_step(&mut m),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_saliency,
    bench_apply_masks,
    bench_flops_profile,
    bench_sfp_step
);
criterion_main!(benches);
