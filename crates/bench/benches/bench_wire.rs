//! Wire-codec throughput — encode/decode MB/s for the three payload
//! families a federated round can ship (dense f32, top-k sparse,
//! f16-quantized) at the real encoder sizes of the paper's two CIFAR
//! models. `Throughput::Bytes` makes criterion report MB/s directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spatl::models::{ModelConfig, ModelKind};
use spatl::wire::{
    decode_dense, decode_f16_dense, decode_topk, encode_dense, encode_f16_dense, encode_topk, open,
    seal, MsgType, SparseTopK,
};

/// Top-k keep ratio used for the sparse benchmarks; mirrors the ~50%
/// FLOPs-constrained selections the RL agent converges to.
const KEEP_RATIO: f64 = 0.25;

fn model_sizes() -> Vec<(&'static str, usize)> {
    [ModelKind::ResNet20, ModelKind::Vgg11]
        .into_iter()
        .map(|kind| {
            let model = ModelConfig::cifar(kind).build();
            (kind.name(), model.encoder.num_params())
        })
        .collect()
}

fn synthetic_update(p: usize) -> Vec<f32> {
    // Deterministic pseudo-gradient: varied magnitudes so top-k has
    // something meaningful to rank.
    (0..p)
        .map(|i| {
            let x = (i as f32 * 0.618_034).fract() - 0.5;
            x * x * x
        })
        .collect()
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_dense");
    group.sample_size(10);
    for (name, p) in model_sizes() {
        let update = synthetic_update(p);
        let payload_bytes = 4 * p as u64;
        group.throughput(Throughput::Bytes(payload_bytes));
        group.bench_with_input(BenchmarkId::new("encode", name), &update, |b, u| {
            b.iter(|| seal(MsgType::DenseUpdate, &encode_dense(u)).len());
        });
        let frame = seal(MsgType::DenseUpdate, &encode_dense(&update));
        group.bench_with_input(BenchmarkId::new("decode", name), &frame, |b, f| {
            b.iter(|| {
                let (_, payload) = open(f).expect("frame");
                decode_dense(payload).expect("dense").len()
            });
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_topk");
    group.sample_size(10);
    for (name, p) in model_sizes() {
        let update = synthetic_update(p);
        let k = (p as f64 * KEEP_RATIO) as usize;
        let dense_frame = seal(MsgType::DenseUpdate, &encode_dense(&update)).len();
        let sparse_frame = seal(
            MsgType::SparseTopK,
            &encode_topk(&SparseTopK::from_dense(&update, k)),
        );
        // Acceptance guard: a keep-ratio < 1 frame must beat dense on the wire.
        assert!(
            sparse_frame.len() < dense_frame,
            "top-k frame {} !< dense frame {} ({})",
            sparse_frame.len(),
            dense_frame,
            name
        );
        // Throughput is measured against the dense tensor the codec consumes,
        // so encode MB/s stays comparable with the dense benchmark.
        group.throughput(Throughput::Bytes(4 * p as u64));
        group.bench_with_input(BenchmarkId::new("encode", name), &update, |b, u| {
            b.iter(|| {
                seal(
                    MsgType::SparseTopK,
                    &encode_topk(&SparseTopK::from_dense(u, k)),
                )
                .len()
            });
        });
        group.throughput(Throughput::Bytes(sparse_frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("decode", name), &sparse_frame, |b, f| {
            b.iter(|| {
                let (_, payload) = open(f).expect("frame");
                decode_topk(payload).expect("topk").values.len()
            });
        });
    }
    group.finish();
}

fn bench_f16(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_f16");
    group.sample_size(10);
    for (name, p) in model_sizes() {
        let update = synthetic_update(p);
        group.throughput(Throughput::Bytes(4 * p as u64));
        group.bench_with_input(BenchmarkId::new("encode", name), &update, |b, u| {
            b.iter(|| seal(MsgType::QuantizedF16, &encode_f16_dense(u)).len());
        });
        let frame = seal(MsgType::QuantizedF16, &encode_f16_dense(&update));
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("decode", name), &frame, |b, f| {
            b.iter(|| {
                let (_, payload) = open(f).expect("frame");
                decode_f16_dense(payload).expect("f16").len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_topk, bench_f16);
criterion_main!(benches);
