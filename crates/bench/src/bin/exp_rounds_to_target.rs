//! FIG-ROUNDS — rounds to reach target accuracy across FL settings (paper
//! Fig. "train_rounds").

use spatl::prelude::*;
use spatl_bench::{cli, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let max_rounds = scale.pick(8, 14);
    let target = scale.pick(0.45, 0.55);

    let settings: Vec<(usize, f32)> = match scale {
        Scale::Quick => vec![(4, 1.0), (8, 0.5)],
        Scale::Full => vec![(10, 1.0), (20, 0.5)],
    };
    let algs = cli::algorithms();

    let mut table = Table::new(&[
        "setting", "SPATL", "FedAvg", "FedProx", "SCAFFOLD", "FedNova",
    ]);
    let mut artefact = Vec::new();
    println!(
        "rounds to reach {:.0}% mean accuracy (ResNet-20, ≤{max_rounds} rounds)\n",
        target * 100.0
    );
    for (clients, ratio) in settings {
        let mut cells = vec![format!("{clients} clients / {ratio}")];
        for (alg, name) in &algs {
            let result = ExperimentBuilder::new(*alg)
                .model(ModelKind::ResNet20)
                .clients(clients)
                .sample_ratio(ratio)
                .samples_per_client(scale.pick(60, 80))
                .rounds(max_rounds)
                .local_epochs(2)
                .seed(17)
                .run();
            let rounds = result.rounds_to_target(target);
            cells.push(
                rounds
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| format!(">{max_rounds}")),
            );
            artefact.push(serde_json::json!({
                "clients": clients,
                "sample_ratio": ratio,
                "algorithm": name,
                "target": target,
                "rounds": rounds,
            }));
            eprintln!("  {clients}c/{ratio} {name}: {rounds:?}");
        }
        table.row(cells);
    }
    table.print();
    write_json("fig_rounds_to_target", &serde_json::json!(artefact));
}
