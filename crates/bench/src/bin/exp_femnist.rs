//! FIG-LC(b) — the FEMNIST / 2-layer-CNN setting of the learning-curve
//! figure (LEAF benchmark, §V-B).
//!
//! The paper singles this setting out: the 2-layer CNN is *not*
//! over-parameterised, so salient selection has less slack and SPATL's
//! margin shrinks (in the paper it slightly under-performs). This binary
//! reproduces the setting at harness scale.

use spatl::prelude::*;
use spatl_bench::{cli, pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(6, 10);
    let clients = scale.pick(5, 10);

    let algs = cli::algorithms();

    println!("2-layer CNN on FEMNIST-like (62 classes), {clients} writers, {rounds} rounds\n");
    let mut table = Table::new(&["algorithm", "best acc", "final acc"]);
    let mut artefact = Vec::new();
    for (alg, name) in algs {
        let result = ExperimentBuilder::new(alg)
            .dataset(DatasetKind::FemnistLike)
            .model(ModelKind::Cnn2)
            .clients(clients)
            .samples_per_client(scale.pick(60, 90))
            .rounds(rounds)
            .local_epochs(2)
            .seed(2022)
            .run();
        let curve: Vec<f32> = result.history.iter().map(|r| r.mean_acc).collect();
        println!(
            "{name:<10} {}",
            curve
                .iter()
                .map(|a| format!("{a:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        table.row(vec![
            name.to_string(),
            pct(result.best_acc()),
            pct(result.final_acc()),
        ]);
        artefact.push(serde_json::json!({
            "algorithm": name,
            "curve": curve,
        }));
    }
    println!();
    table.print();
    write_json("fig_femnist", &serde_json::json!(artefact));
}
