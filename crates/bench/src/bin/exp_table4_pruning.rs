//! TAB-4 — pruning comparison: RL agent vs. SFP / FPGM / DSA (paper
//! Table IV, §V-F1).
//!
//! Trains a ResNet-56-style model, then prunes it to a common FLOPs budget
//! with each method and reports accuracy drop and FLOPs reduction.

use spatl::prelude::*;
use spatl_bench::{pct, write_json, Scale, Table};

fn train(model: &mut SplitModel, data: &Dataset, epochs: usize, seed: u64) {
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    let mut loss = CrossEntropyLoss::new();
    let mut rng = TensorRng::seed_from(seed);
    for _ in 0..epochs {
        for batch in data.batches(32, &mut rng) {
            model.zero_grad();
            let logits = model.forward(&batch.images, true);
            loss.forward(&logits, &batch.labels);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model.encoder);
            opt.step(&mut model.predictor);
        }
    }
}

fn eval(model: &mut SplitModel, val: &Dataset) -> f32 {
    let b = val.as_batch();
    model.evaluate(&b.images, &b.labels)
}

fn main() {
    let scale = Scale::from_env();
    let budget = 0.6f32;
    let synth = SynthConfig {
        noise_std: 1.0,
        ..SynthConfig::cifar10_like()
    };
    let train_set = synth_cifar10(&synth, scale.pick(200, 400), 1);
    let val_set = synth_cifar10(&synth, scale.pick(80, 200), 2);

    println!("training ResNet-56 (scaled) baseline…");
    let mut model = ModelConfig::cifar(ModelKind::ResNet56).with_seed(4).build();
    train(&mut model, &train_set, scale.pick(3, 6), 5);
    let dense_acc = eval(&mut model.clone(), &val_set);
    println!(
        "dense accuracy {} | FLOPs budget {:.0}%\n",
        pct(dense_acc),
        budget * 100.0
    );

    let mut table = Table::new(&["method", "acc", "Δacc", "FLOPs kept", "FLOPs ↓"]);
    let mut artefact = vec![serde_json::json!({
        "method": "dense",
        "acc": dense_acc,
        "flops_ratio": 1.0,
    })];
    let mut report = |name: &str, m: &mut SplitModel, table: &mut Table| {
        let acc = eval(m, &val_set);
        let ratio = m.flops() as f32 / m.flops_dense() as f32;
        table.row(vec![
            name.to_string(),
            pct(acc),
            format!("{:+.1}pp", (acc - dense_acc) * 100.0),
            pct(ratio),
            pct(1.0 - ratio),
        ]);
        artefact.push(serde_json::json!({
            "method": name,
            "acc": acc,
            "flops_ratio": ratio,
        }));
    };

    // Standard pruning protocol: every method gets the same brief recovery
    // fine-tune after masking (masked channels stay dead — conv and BN
    // masks gate both forward and gradients).
    let recovery_epochs = scale.pick(1, 2);

    // RL agent (SPATL's selector), pre-trained on this pruning task.
    {
        let env = PruningEnv::new(model.clone(), val_set.clone(), budget);
        let mut agent = ActorCritic::new(AgentConfig::default(), 9);
        let mut rng = TensorRng::seed_from(10);
        pretrain_agent(&mut agent, &env, scale.pick(6, 15), 4, 4, &mut rng);
        let action = agent.evaluate(&env.graph()).mu;
        let mut m = model.clone();
        let applied = spatl::agent::project_to_budget(&m, &action, budget, Criterion::L2);
        apply_sparsities(&mut m, &applied, Criterion::L2);
        train(&mut m, &train_set, recovery_epochs, 60);
        report("RL agent (ours)", &mut m, &mut table);
    }

    // SFP: soft filter pruning schedule + brief recovery training.
    {
        let mut m = model.clone();
        let sfp = SoftFilterPruner::new(1.0 - budget);
        for _ in 0..scale.pick(2, 4) {
            sfp.soft_step(&mut m);
            train(&mut m, &train_set, 1, 6);
        }
        sfp.harden(&mut m);
        train(&mut m, &train_set, recovery_epochs, 61);
        report("SFP", &mut m, &mut table);
    }

    // FPGM at a uniform budget-projected sparsity.
    {
        let mut m = model.clone();
        let uni = spatl::agent::project_to_budget(
            &m,
            &vec![0.0; m.prune_points.len()],
            budget,
            Criterion::Fpgm,
        );
        apply_sparsities(&mut m, &uni, Criterion::Fpgm);
        train(&mut m, &train_set, recovery_epochs, 62);
        report("FPGM", &mut m, &mut table);
    }

    // DSA-style allocation.
    {
        let mut m = model.clone();
        let alloc = dsa_allocate(&m, budget, &val_set, Criterion::L2, scale.pick(6, 16));
        apply_sparsities(&mut m, &alloc, Criterion::L2);
        train(&mut m, &train_set, recovery_epochs, 63);
        report("DSA", &mut m, &mut table);
    }

    // Uniform L1 and random controls.
    {
        let mut m = model.clone();
        let uni = spatl::agent::project_to_budget(
            &m,
            &vec![0.0; m.prune_points.len()],
            budget,
            Criterion::L1,
        );
        apply_sparsities(&mut m, &uni, Criterion::L1);
        train(&mut m, &train_set, recovery_epochs, 64);
        report("uniform L1", &mut m, &mut table);
    }
    {
        let mut m = model.clone();
        let uni = spatl::agent::project_to_budget(
            &m,
            &vec![0.0; m.prune_points.len()],
            budget,
            Criterion::Random(42),
        );
        apply_sparsities(&mut m, &uni, Criterion::Random(42));
        train(&mut m, &train_set, recovery_epochs, 65);
        report("random", &mut m, &mut table);
    }

    table.print();
    write_json("table4_pruning", &serde_json::json!(artefact));
}
