//! FIG-LC — learning curves (paper Fig. "vgg_cifar" and Fig. 3).
//!
//! Accuracy vs. communication round for SPATL and the four baselines on the
//! CIFAR-10-like task (ResNet-20 and VGG-11) and the FEMNIST-like task
//! (2-layer CNN), across client scales. Prints one series per
//! (setting, algorithm) and the final converge-accuracy comparison.
//!
//! Scale with `SPATL_EXP_SCALE=quick|full`.

use spatl::prelude::*;
use spatl_bench::{cli, pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(6, 12);
    let spc = scale.pick(60, 90);

    // (model, dataset, clients, sample ratio) settings; the paper sweeps
    // 10 → 100 clients, we sweep a scaled version of the same ladder.
    let settings: Vec<(ModelKind, DatasetKind, usize, f32)> = match scale {
        Scale::Quick => vec![(ModelKind::ResNet20, DatasetKind::CifarLike, 6, 1.0)],
        Scale::Full => vec![
            (ModelKind::ResNet20, DatasetKind::CifarLike, 10, 1.0),
            (ModelKind::ResNet20, DatasetKind::CifarLike, 30, 0.4),
            (ModelKind::Cnn2, DatasetKind::FemnistLike, 10, 1.0),
        ],
    };

    let mut artefact = Vec::new();
    for (model, dataset, clients, ratio) in settings {
        println!(
            "\n=== {} on {:?}, {clients} clients, sample ratio {ratio} ===",
            model.name(),
            dataset
        );
        let mut summary = Table::new(&["algorithm", "best acc", "final acc", "rounds"]);
        for (alg, name) in cli::algorithms() {
            let result = ExperimentBuilder::new(alg)
                .model(model)
                .dataset(dataset)
                .clients(clients)
                .sample_ratio(ratio)
                .samples_per_client(spc)
                .rounds(rounds)
                .local_epochs(2)
                .seed(2022)
                .run();
            let curve: Vec<f32> = result.history.iter().map(|r| r.mean_acc).collect();
            println!(
                "{name:<10} {}",
                curve
                    .iter()
                    .map(|a| format!("{:.3}", a))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            summary.row(vec![
                name.to_string(),
                pct(result.best_acc()),
                pct(result.final_acc()),
                format!("{rounds}"),
            ]);
            artefact.push(serde_json::json!({
                "model": model.name(),
                "dataset": format!("{dataset:?}"),
                "clients": clients,
                "sample_ratio": ratio,
                "algorithm": name,
                "curve": curve,
            }));
        }
        println!();
        summary.print();
    }
    write_json("fig_learning_curves", &serde_json::json!(artefact));
}
