//! Digest all `results/*.json` artefacts into a compact summary — the
//! measured side of EXPERIMENTS.md.

use spatl_bench::{results_dir, Table};
use std::fs;

fn load(name: &str) -> Option<serde_json::Value> {
    let path = results_dir().join(format!("{name}.json"));
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn f(v: &serde_json::Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

fn main() {
    println!("# SPATL reproduction — measured summary\n");

    if let Some(v) = load("fig_learning_curves") {
        println!("## Learning curves (best accuracy per setting)");
        let mut t = Table::new(&["setting", "algorithm", "best acc", "rounds-to-50%"]);
        for run in v.as_array().into_iter().flatten() {
            let curve: Vec<f64> = run["curve"]
                .as_array()
                .into_iter()
                .flatten()
                .map(f)
                .collect();
            let best = curve.iter().copied().fold(0.0f64, f64::max);
            let r50 = curve
                .iter()
                .position(|&a| a >= 0.5)
                .map(|i| (i + 1).to_string())
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                format!(
                    "{} {}c/{}",
                    run["model"].as_str().unwrap_or("?"),
                    run["clients"],
                    run["sample_ratio"]
                ),
                run["algorithm"].as_str().unwrap_or("?").to_string(),
                format!("{:.1}%", best * 100.0),
                r50,
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("table1_comm_cost") {
        println!("## Table I — total bytes to target (speed-up vs FedAvg)");
        let runs: Vec<&serde_json::Value> = v.as_array().into_iter().flatten().collect();
        let mut t = Table::new(&[
            "model",
            "algorithm",
            "rounds",
            "total MB",
            "wire MB",
            "transfer",
            "speedup",
        ]);
        for model in ["ResNet-20", "ResNet-32", "VGG-11"] {
            let fedavg: Option<f64> = runs
                .iter()
                .find(|r| r["model"] == model && r["algorithm"] == "FedAvg")
                .map(|r| f(&r["total_bytes"]));
            for r in runs.iter().filter(|r| r["model"] == model) {
                let total = f(&r["total_bytes"]);
                let speed = fedavg
                    .filter(|&fa| fa > 0.0 && total > 0.0)
                    .map(|fa| format!("{:.2}x", fa / total))
                    .unwrap_or_else(|| "-".into());
                // Measured on-wire traffic (framed) and simulated transfer
                // time, when the artefact carries the wire fields.
                let framed = r["framed_bytes"]
                    .as_f64()
                    .map(|b| format!("{:.1}", b / 1e6))
                    .unwrap_or_else(|| "-".into());
                let transfer = r["transfer_s"]
                    .as_f64()
                    .map(|s| format!("{s:.1}s"))
                    .unwrap_or_else(|| "-".into());
                t.row(vec![
                    model.to_string(),
                    r["algorithm"].as_str().unwrap_or("?").to_string(),
                    r["rounds"].to_string(),
                    format!("{:.1}", total / 1e6),
                    framed,
                    transfer,
                    speed,
                ]);
            }
        }
        t.print();
        println!();
    }

    if let Some(v) = load("table2_convergence") {
        println!("## Table II — converge accuracy / cost");
        let mut t = Table::new(&[
            "model",
            "clients",
            "algorithm",
            "final acc",
            "total MB",
            "transfer",
        ]);
        for r in v.as_array().into_iter().flatten() {
            let transfer = r["transfer_s"]
                .as_f64()
                .map(|s| format!("{s:.1}s"))
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                r["model"].as_str().unwrap_or("?").to_string(),
                r["clients"].to_string(),
                r["algorithm"].as_str().unwrap_or("?").to_string(),
                format!("{:.1}%", f(&r["final_acc"]) * 100.0),
                format!("{:.1}", f(&r["total_bytes"]) / 1e6),
                transfer,
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("fig_local_acc") {
        println!("## Per-client accuracy spread");
        let mut t = Table::new(&["algorithm", "mean", "min", "spread"]);
        for r in v.as_array().into_iter().flatten() {
            let accs: Vec<f64> = r["per_client_acc"]
                .as_array()
                .into_iter()
                .flatten()
                .map(f)
                .collect();
            let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
            let min = accs.iter().copied().fold(1.0f64, f64::min);
            let max = accs.iter().copied().fold(0.0f64, f64::max);
            t.row(vec![
                r["algorithm"].as_str().unwrap_or("?").to_string(),
                format!("{:.1}%", mean * 100.0),
                format!("{:.1}%", min * 100.0),
                format!("{:.1}pp", (max - min) * 100.0),
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("table3_transfer") {
        println!("## Table III — transferability");
        let mut t = Table::new(&["algorithm", "transfer acc"]);
        for r in v.as_array().into_iter().flatten() {
            t.row(vec![
                r["algorithm"].as_str().unwrap_or("?").to_string(),
                format!("{:.1}%", f(&r["transfer_acc"]) * 100.0),
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("table4_pruning") {
        println!("## Table IV — pruning at 60% FLOPs budget");
        let mut t = Table::new(&["method", "accuracy", "FLOPs kept"]);
        for r in v.as_array().into_iter().flatten() {
            t.row(vec![
                r["method"].as_str().unwrap_or("?").to_string(),
                format!("{:.1}%", f(&r["acc"]) * 100.0),
                format!("{:.1}%", f(&r["flops_ratio"]) * 100.0),
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("table_inference") {
        println!("## Inference acceleration (per-client FLOPs reduction)");
        let rows: Vec<&serde_json::Value> = v.as_array().into_iter().flatten().collect();
        let mut t = Table::new(&["model", "mean FLOPs ↓", "best client ↓"]);
        for model in ["ResNet-20", "ResNet-32", "VGG-11"] {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| r["model"] == model)
                .map(|r| f(&r["flops_ratio"]))
                .collect();
            if ratios.is_empty() {
                continue;
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let best = ratios.iter().copied().fold(1.0f64, f64::min);
            t.row(vec![
                model.to_string(),
                format!("{:.1}%", (1.0 - mean) * 100.0),
                format!("{:.1}%", (1.0 - best) * 100.0),
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("faults_dropout_sweep") {
        println!("## Faults — accuracy vs per-round dropout (seeded plan)");
        let mut t = Table::new(&[
            "algorithm",
            "dropout",
            "best acc",
            "gap to fault-free",
            "dropped/sampled",
            "no-op rounds",
        ]);
        for r in v.as_array().into_iter().flatten() {
            t.row(vec![
                r["algorithm"].as_str().unwrap_or("?").to_string(),
                format!("{:.0}%", f(&r["dropout"]) * 100.0),
                format!("{:.1}%", f(&r["best_acc"]) * 100.0),
                format!("{:.1}pp", f(&r["gap_to_fault_free"]) * 100.0),
                format!("{}/{}", r["dropped"], r["sampled"]),
                r["no_op_rounds"].to_string(),
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("adversary_sweep") {
        println!("## Adversary — accuracy vs Byzantine fraction (scale attack, λ=100)");
        let mut t = Table::new(&[
            "algorithm",
            "aggregator",
            "byzantine",
            "final acc",
            "gap to attack-free",
            "tampered",
            "quarantined",
        ]);
        for r in v.as_array().into_iter().flatten() {
            t.row(vec![
                r["algorithm"].as_str().unwrap_or("?").to_string(),
                r["aggregator"].as_str().unwrap_or("?").to_string(),
                format!("{:.0}%", f(&r["byzantine_fraction"]) * 100.0),
                format!("{:.1}%", f(&r["final_acc"]) * 100.0),
                format!("{:.1}pp", f(&r["gap_to_attack_free"]) * 100.0),
                r["tampered_uploads"].to_string(),
                r["quarantined"].to_string(),
            ]);
        }
        t.print();
        println!();
    }

    if let Some(v) = load("churn") {
        println!("## Churn — availability-driven cohorts (trace-driven arrival/departure)");
        let mut t = Table::new(&[
            "profile",
            "sampled",
            "survivors",
            "dropouts",
            "no-op rounds",
            "final acc",
        ]);
        for r in v.as_array().into_iter().flatten() {
            if r["profile"] == "population-sweep" {
                continue;
            }
            t.row(vec![
                r["profile"].as_str().unwrap_or("?").to_string(),
                r["sampled"].to_string(),
                r["survivors"].to_string(),
                r["dropouts"].to_string(),
                r["no_op_rounds"].to_string(),
                format!("{:.1}%", f(&r["final_acc"]) * 100.0),
            ]);
        }
        t.print();
        if let Some(sweep) = v
            .as_array()
            .into_iter()
            .flatten()
            .find(|r| r["profile"] == "population-sweep")
        {
            println!(
                "population sweep: {} cohorts of <={} from {} virtual clients in {:.3}s",
                sweep["rounds"],
                sweep["cohort_cap"],
                sweep["population"],
                f(&sweep["elapsed_s"]),
            );
        }
        println!();
    }

    if let Some(v) = load("fig_rl_finetune") {
        println!("## Agent pre-train / fine-tune rewards");
        let pre: Vec<f64> = v["pretrain_rewards"]
            .as_array()
            .into_iter()
            .flatten()
            .map(f)
            .collect();
        let fine: Vec<f64> = v["finetune_rewards"]
            .as_array()
            .into_iter()
            .flatten()
            .map(f)
            .collect();
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        println!(
            "pre-train  : first 3 avg {:.3} → last 3 avg {:.3}",
            avg(&pre[..3.min(pre.len())]),
            avg(&pre[pre.len().saturating_sub(3)..])
        );
        println!(
            "fine-tune  : first 3 avg {:.3} → last 3 avg {:.3}",
            avg(&fine[..3.min(fine.len())]),
            avg(&fine[fine.len().saturating_sub(3)..])
        );
        println!("agent bytes: {}\n", v["agent_bytes"]);
    }

    if let Some(v) = load("net_loopback") {
        println!("## Networked runtime (loopback) — measured vs Eq. 13 prediction");
        let mut t = Table::new(&[
            "algorithm",
            "clients",
            "rounds",
            "framed bytes",
            "predicted s",
            "measured s",
            "meas/pred",
        ]);
        let predicted = f(&v["predicted_wall_s"]);
        let measured = f(&v["measured_wall_s"]);
        let ratio = if predicted > 0.0 {
            format!("{:.3}", measured / predicted)
        } else {
            "-".to_string()
        };
        t.row(vec![
            v["algorithm"].as_str().unwrap_or("?").to_string(),
            v["clients"].to_string(),
            v["rounds"].to_string(),
            v["framed_bytes"].to_string(),
            format!("{predicted:.4}"),
            format!("{measured:.4}"),
            ratio,
        ]);
        t.print();
        println!(
            "(prediction: SimNet Eq. 13 over the configured link profile; \
             measurement: monotonic clock around the coordinator's \
             broadcast + collection phase on 127.0.0.1)\n"
        );
    }

    // Repo-root snapshot (bench_net_snapshot), not a results/ artefact:
    // the coordinator-scaling numbers DESIGN.md §12 is calibrated on.
    if let Some(v) = std::fs::read_to_string("BENCH_net.json")
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
    {
        println!("## Coordinator scaling (bench_net_snapshot, loopback)");
        let mut t = Table::new(&[
            "clients",
            "uploads/s",
            "collection s",
            "peak RSS MB",
            "cohort·model MB",
        ]);
        for s in v["series"].as_array().into_iter().flatten() {
            t.row(vec![
                s["clients"].to_string(),
                format!("{:.0}", f(&s["uploads_per_s"])),
                format!("{:.3}", f(&s["collection_wall_s"])),
                format!("{:.1}", f(&s["coordinator_peak_rss_bytes"]) / 1e6),
                format!("{:.1}", f(&s["cohort_model_bytes"]) / 1e6),
            ]);
        }
        t.print();
        println!(
            "(peak RSS is the coordinator process's VmHWM — the streaming \
             accumulator keeps it near the model size while cohort·model is \
             what buffering the round would have cost)\n"
        );
    }

    if let Some(v) = load("fig_ablations") {
        println!("## Ablations (best accuracy, variant vs variant)");
        let mut t = Table::new(&["ablation", "variant", "best acc"]);
        for r in v.as_array().into_iter().flatten() {
            let curve: Vec<f64> = r["curve"].as_array().into_iter().flatten().map(f).collect();
            let best = curve.iter().copied().fold(0.0f64, f64::max);
            t.row(vec![
                r["ablation"].as_str().unwrap_or("?").to_string(),
                r["variant"].as_str().unwrap_or("?").to_string(),
                format!("{:.1}%", best * 100.0),
            ]);
        }
        t.print();
        println!();
    }
}
