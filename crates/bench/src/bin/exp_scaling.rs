//! SCALE — scalability of the simulator (the paper's "SPATL enables
//! scalable federated learning" contribution bullet).
//!
//! Fixed round budget, growing client population with a fixed sampling
//! count: reports wall-clock per round, bytes per round and accuracy,
//! demonstrating that cost scales with *sampled* clients, not population.

use spatl::prelude::*;
use spatl_bench::{mb, pct, write_json, Scale, Table};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(2, 5);
    let populations: Vec<usize> = scale.pick(vec![4, 8, 16], vec![10, 30, 50, 100]);
    let sampled = scale.pick(4, 10);

    let mut table = Table::new(&[
        "clients",
        "sampled/round",
        "sec/round",
        "bytes/round",
        "mean acc",
    ]);
    let mut artefact = Vec::new();
    for &n in &populations {
        let ratio = sampled as f32 / n as f32;
        let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
            .model(ModelKind::ResNet20)
            .clients(n)
            .sample_ratio(ratio)
            .samples_per_client(scale.pick(30, 60))
            .rounds(rounds)
            .local_epochs(1)
            .seed(7)
            .build();
        let t0 = Instant::now();
        let result = sim.run();
        let secs = t0.elapsed().as_secs_f64() / rounds as f64;
        let last = result.history.last().expect("rounds ran");
        table.row(vec![
            n.to_string(),
            sim.cfg.clients_per_round().to_string(),
            format!("{secs:.2}"),
            mb(last.bytes.total()),
            pct(last.mean_acc),
        ]);
        artefact.push(serde_json::json!({
            "clients": n,
            "sampled": sim.cfg.clients_per_round(),
            "sec_per_round": secs,
            "bytes_per_round": last.bytes.total(),
            "mean_acc": last.mean_acc,
        }));
        eprintln!("  {n} clients: {secs:.2}s/round");
    }
    table.print();
    write_json("scaling", &serde_json::json!(artefact));
}
