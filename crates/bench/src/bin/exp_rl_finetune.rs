//! FIG-RL — reward curves of agent pre-training and cross-architecture
//! fine-tuning (paper Fig. 6, §V-F4).
//!
//! Pre-train the selection agent on a ResNet-56 pruning task, transfer it
//! to ResNet-18 and fine-tune only the MLP head; the fine-tuned agent must
//! approach comparable rewards within a few tens of updates.

use spatl::prelude::*;
use spatl_bench::{write_json, Scale, Table};

fn train_model(kind: ModelKind, data: &Dataset, epochs: usize, seed: u64) -> SplitModel {
    let mut model = ModelConfig::cifar(kind).with_seed(seed).build();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    let mut loss = CrossEntropyLoss::new();
    let mut rng = TensorRng::seed_from(seed);
    for _ in 0..epochs {
        for batch in data.batches(32, &mut rng) {
            model.zero_grad();
            let logits = model.forward(&batch.images, true);
            loss.forward(&logits, &batch.labels);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model.encoder);
            opt.step(&mut model.predictor);
        }
    }
    model
}

fn main() {
    let scale = Scale::from_env();
    let synth = SynthConfig {
        noise_std: 1.0,
        ..SynthConfig::cifar10_like()
    };
    let train_set = synth_cifar10(&synth, scale.pick(160, 300), 1);
    let val_set = synth_cifar10(&synth, scale.pick(60, 150), 2);
    let rounds = scale.pick(10, 25);

    println!("pre-training task: ResNet-56 pruning (budget 70% FLOPs)");
    let m56 = train_model(ModelKind::ResNet56, &train_set, scale.pick(2, 5), 3);
    let env56 = PruningEnv::new(m56, val_set.clone(), 0.7);
    let mut agent = ActorCritic::new(AgentConfig::default(), 4);
    let mut rng = TensorRng::seed_from(5);
    let pre = pretrain_agent(&mut agent, &env56, rounds, 4, 4, &mut rng);
    println!(
        "ResNet-56 rewards: {}",
        pre.rewards
            .iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    println!("\nfine-tuning task: ResNet-18 pruning (MLP head only)");
    let m18 = train_model(ModelKind::ResNet18, &train_set, scale.pick(2, 5), 6);
    let env18 = PruningEnv::new(m18, val_set, 0.7);
    let fine = finetune_agent(&mut agent, &env18, rounds, 4, 4, &mut rng);
    println!(
        "ResNet-18 rewards: {}",
        fine.rewards
            .iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let avg = |xs: &[f32]| xs.iter().sum::<f32>() / xs.len().max(1) as f32;
    let head = |xs: &[f32], k: usize| avg(&xs[..k.min(xs.len())]);
    let tail = |xs: &[f32], k: usize| avg(&xs[xs.len().saturating_sub(k)..]);

    let mut table = Table::new(&["phase", "first rewards", "last rewards", "best"]);
    for (name, log) in [
        ("pre-train ResNet-56", &pre),
        ("fine-tune ResNet-18", &fine),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.3}", head(&log.rewards, 3)),
            format!("{:.3}", tail(&log.rewards, 3)),
            format!("{:.3}", log.rewards.iter().copied().fold(0.0f32, f32::max)),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nagent size: {} params ({} KB) — paper reports ~26 KB",
        agent.num_params(),
        agent.param_bytes() / 1024
    );

    write_json(
        "fig_rl_finetune",
        &serde_json::json!({
            "pretrain_rewards": pre.rewards,
            "finetune_rewards": fine.rewards,
            "agent_bytes": agent.param_bytes(),
        }),
    );
}
