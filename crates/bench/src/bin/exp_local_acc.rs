//! FIG-LOCAL — per-client accuracy after training (paper Fig. "local_acc").
//!
//! ResNet-20, 10 clients, full participation: after training completes,
//! report each client's validation accuracy per algorithm. The paper's
//! claim: SPATL's heterogeneous predictors give *uniformly good* per-client
//! accuracy, while uniform-model baselines show high variance.

use spatl::prelude::*;
use spatl_bench::{pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(5, 10);
    let clients = scale.pick(6, 10);

    let algs: Vec<(Algorithm, &str)> = vec![
        (Algorithm::Spatl(SpatlOptions::default()), "SPATL"),
        (Algorithm::FedAvg, "FedAvg"),
        (Algorithm::Scaffold, "SCAFFOLD"),
        (Algorithm::FedNova, "FedNova"),
    ];

    let mut table = Table::new(&["algorithm", "mean", "min", "max", "spread", "std"]);
    let mut artefact = Vec::new();
    println!("per-client accuracy, ResNet-20, {clients} clients, {rounds} rounds\n");
    for (alg, name) in algs {
        let mut sim = ExperimentBuilder::new(alg)
            .model(ModelKind::ResNet20)
            .clients(clients)
            .samples_per_client(scale.pick(60, 90))
            .beta(0.3)
            .rounds(rounds)
            .local_epochs(2)
            .seed(77)
            .build();
        sim.run();
        // Deployment protocol (Eq. 4): never-sampled clients adapt their
        // predictor before the final per-client evaluation.
        let accs = sim.finalize(3);
        let mean = accs.iter().sum::<f32>() / accs.len() as f32;
        let min = accs.iter().copied().fold(1.0f32, f32::min);
        let max = accs.iter().copied().fold(0.0f32, f32::max);
        let std = (accs.iter().map(|a| (a - mean).powi(2)).sum::<f32>() / accs.len() as f32).sqrt();
        println!(
            "{name:<10} {}",
            accs.iter()
                .map(|a| format!("{:.2}", a))
                .collect::<Vec<_>>()
                .join(" ")
        );
        table.row(vec![
            name.to_string(),
            pct(mean),
            pct(min),
            pct(max),
            pct(max - min),
            pct(std),
        ]);
        artefact.push(serde_json::json!({
            "algorithm": name,
            "per_client_acc": accs,
        }));
    }
    println!();
    table.print();
    write_json("fig_local_acc", &serde_json::json!(artefact));
}
