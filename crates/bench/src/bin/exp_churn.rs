//! EXP-CHURN — trace-driven client availability (DESIGN.md §14).
//!
//! Three claims are exercised in process:
//!
//! 1. **Availability-driven cohorts** — under a churn plan the per-round
//!    cohort is sampled from the clients the availability model has
//!    online, so the cross-device profile (duty 0.4, staggered arrival)
//!    yields visibly smaller cohorts and more ledgered dropouts than the
//!    cross-silo profile, on the same session seed.
//! 2. **Determinism** — the same training seed and the same churn seed
//!    reproduce the cohort sequence, the fault ledger and the final
//!    global bit-for-bit (asserted here by running each profile twice).
//! 3. **O(cohort) sampling** — drawing a cohort out of a large virtual
//!    population costs memory and time proportional to the cohort, not
//!    the population: a 100k-client population is sampled directly
//!    through [`ChurnModel::sample_cohort`] without materialising any
//!    per-client state.

use std::time::Instant;

use spatl::prelude::*;
use spatl_bench::{write_json, Scale, Table};

fn run_with(churn: Option<ChurnPlan>, clients: usize, rounds: usize, samples: usize) -> RunResult {
    let mut b = ExperimentBuilder::new(Algorithm::FedAvg)
        .model(ModelKind::Cnn2)
        .clients(clients)
        .sample_ratio(0.5)
        .samples_per_client(samples)
        .rounds(rounds)
        .local_epochs(1)
        .batch_size(8)
        .seed(13);
    if let Some(plan) = churn {
        b = b.churn(plan);
    }
    b.run()
}

fn main() {
    let scale = Scale::from_env();
    let clients = scale.pick(6, 10);
    let rounds = scale.pick(4, 8);
    let samples = scale.pick(18, 40);
    let population = scale.pick(100_000usize, 250_000usize);

    let mut artefact = Vec::new();
    let mut table = Table::new(&[
        "profile",
        "sampled",
        "survivors",
        "dropouts",
        "no-op rounds",
        "final acc",
    ]);
    println!("churn-realistic cohorts ({clients} clients, {rounds} rounds, sample ratio 0.5)\n");

    let profiles: [(&str, Option<ChurnPlan>); 3] = [
        ("always-on", None),
        ("cross-silo", Some(ChurnPlan::cross_silo())),
        ("cross-device", Some(ChurnPlan::cross_device())),
    ];
    let mut sampled_by_profile = Vec::new();
    for (name, plan) in profiles {
        let result = run_with(plan, clients, rounds, samples);
        // Claim 2: a rerun with identical seeds is bit-identical, ledger
        // included — churn is part of the deterministic replay surface.
        let rerun = run_with(plan, clients, rounds, samples);
        for (a, b) in result.history.iter().zip(&rerun.history) {
            assert_eq!(
                a.mean_acc.to_bits(),
                b.mean_acc.to_bits(),
                "{name}: churn must be deterministic"
            );
            assert_eq!(
                (a.faults.sampled, a.faults.dropouts, a.faults.survivors),
                (b.faults.sampled, b.faults.dropouts, b.faults.survivors),
                "{name}: fault ledgers must replay"
            );
        }
        let sampled: usize = result.history.iter().map(|r| r.faults.sampled).sum();
        let survivors: usize = result.history.iter().map(|r| r.faults.survivors).sum();
        let dropouts: usize = result.history.iter().map(|r| r.faults.dropouts).sum();
        let no_op = result.history.iter().filter(|r| r.faults.no_op).count();
        let final_acc = result.history.last().map(|r| r.mean_acc).unwrap_or(0.0);
        table.row(vec![
            name.to_string(),
            sampled.to_string(),
            survivors.to_string(),
            dropouts.to_string(),
            no_op.to_string(),
            format!("{:.1}%", final_acc * 100.0),
        ]);
        artefact.push(serde_json::json!({
            "profile": name,
            "sampled": sampled,
            "survivors": survivors,
            "dropouts": dropouts,
            "no_op_rounds": no_op,
            "final_acc": final_acc,
        }));
        eprintln!("  {name}: sampled {sampled}, survivors {survivors}, dropouts {dropouts}");
        sampled_by_profile.push((name, sampled));
    }
    // Claim 1: lower duty means fewer sampled participants overall.
    let sampled_of = |n: &str| {
        sampled_by_profile
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, s)| *s)
            .expect("profile ran")
    };
    assert!(
        sampled_of("cross-device") < sampled_of("always-on"),
        "cross-device churn must shrink the sampled cohorts"
    );

    // Claim 3: cohorts out of a large virtual population, O(cohort).
    let model = ChurnModel::new(ChurnPlan::cross_device());
    let k = 256usize;
    let sweep_rounds = 32usize;
    let started = Instant::now();
    let mut drawn_total = 0usize;
    for round in 0..sweep_rounds {
        let cohort = model.sample_cohort(round, k, population);
        assert!(cohort.len() <= k);
        assert!(cohort.windows(2).all(|w| w[0] < w[1]), "ascending ids");
        assert!(cohort.iter().all(|&c| c < population), "ids in range");
        drawn_total += cohort.len();
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "population sweep: {sweep_rounds} cohorts of ≤{k} out of {population} virtual clients \
         in {elapsed:.3}s ({drawn_total} drawn, O(cohort) memory)\n"
    );
    artefact.push(serde_json::json!({
        "profile": "population-sweep",
        "population": population,
        "cohort_cap": k,
        "rounds": sweep_rounds,
        "drawn_total": drawn_total,
        "elapsed_s": elapsed,
    }));

    table.print();
    write_json("churn", &serde_json::json!(artefact));
}
