//! EXP-TOPOLOGY — flat star vs 2-tier hierarchical aggregation
//! (DESIGN.md §11).
//!
//! Three claims are exercised in process (the networked analogue lives in
//! `crates/net/tests/tier.rs`):
//!
//! 1. **Exact composition** — under the default weighted mean, folding
//!    each edge's slice and merging at the root is *bit-identical* to the
//!    flat fold, for all five algorithms, dropouts included (survivor
//!    renormalisation composes). Rounds-to-target is therefore identical
//!    by construction, and the table shows it.
//! 2. **Bounded-ε composition** — the robust aggregators pre-reduce at
//!    the edges and compose stat-of-stats at the root. Each composed
//!    round stays within the `server_lr · (max − min)` per-coordinate
//!    envelope (asserted round-by-round in `crates/net/tests/tier.rs`);
//!    here the end-of-run divergence from the flat robust fold is
//!    measured and reported — trajectories legitimately drift apart
//!    over rounds, so only finiteness is asserted.
//! 3. **Fault-ledger composition** — per-edge fault counters folded at
//!    the root equal the flat round's ledger, counter for counter.

use spatl::fl::{
    aggregate_reduced, edge_partition, exact_composition, fault_counters, fold_fault_counters,
    reduce_cohort, GlobalState, LocalOutcome,
};
use spatl::prelude::*;
use spatl_bench::{cli, write_json, Scale, Table};

const EDGES: usize = 2;

fn builder(algorithm: Algorithm, clients: usize, rounds: usize, samples: usize) -> Simulation {
    ExperimentBuilder::new(algorithm)
        .model(ModelKind::Cnn2)
        .clients(clients)
        .samples_per_client(samples)
        .rounds(rounds)
        .local_epochs(1)
        .batch_size(8)
        .seed(11)
        .build()
}

/// One in-process federated run where aggregation is composed over
/// `n_edges` contiguous slices, exactly the way the tiered runtime does:
/// per-edge fold (exact forwarding for the weighted mean, pre-reduction
/// for robust kinds), root merge, evaluate-all. `drop_client` removes one
/// client's upload in round 0 — the edge-side dropout whose survivor
/// renormalisation must compose. Returns the final global, the per-round
/// mean accuracies and the total dropout count the composed ledger saw.
fn run_composed(
    mut session: Simulation,
    rounds: usize,
    n_edges: usize,
    drop_client: Option<usize>,
) -> (GlobalState, Vec<f32>, usize) {
    let cfg = session.driver.cfg;
    let ranges = edge_partition(cfg.n_clients, n_edges);
    let exact = exact_composition(&cfg.aggregator);
    let mut accs = Vec::new();
    let mut dropouts_total = 0usize;
    for round in 0..rounds {
        let sampled = session.driver.sample_round();
        let broadcast = session.driver.global.clone();
        let mut outcomes: Vec<LocalOutcome> = Vec::new();
        let mut root_ledger = FaultRecord::default();
        let mut edge_ledgers = Vec::new();
        for range in &ranges {
            let slice: Vec<usize> = sampled
                .iter()
                .copied()
                .filter(|c| range.contains(c))
                .collect();
            let mut ledger = FaultRecord::for_sample(slice.len());
            for &id in &slice {
                if round == 0 && drop_client == Some(id) {
                    ledger.push(id, FaultKind::Dropout);
                    continue;
                }
                outcomes.push(session.clients[id].local_update(&cfg, &broadcast, round));
            }
            edge_ledgers.push(ledger);
        }
        // The root folds each edge's counters into the round's ledger —
        // claim 3: events stay local, counters compose additively.
        for ledger in &edge_ledgers {
            fold_fault_counters(&mut root_ledger, &fault_counters(ledger));
        }
        dropouts_total += root_ledger.dropouts;

        if exact {
            // Claim 1: the weighted-mean fold over the merged survivors
            // (ascending client id, like fold_exact) is the flat fold.
            outcomes.sort_by_key(|o| o.client_id);
            session
                .driver
                .global
                .aggregate(&cfg, &outcomes, cfg.n_clients);
        } else {
            // Claim 2: robust kinds pre-reduce per edge and compose.
            let reduced: Vec<_> = ranges
                .iter()
                .filter_map(|range| {
                    let slice: Vec<LocalOutcome> = outcomes
                        .iter()
                        .filter(|o| range.contains(&o.client_id))
                        .cloned()
                        .collect();
                    if slice.is_empty() {
                        None
                    } else {
                        reduce_cohort(&cfg, &slice, &broadcast)
                    }
                })
                .collect();
            aggregate_reduced(&mut session.driver.global, &cfg, &reduced, cfg.n_clients);
        }
        let global = session.driver.global.clone();
        let mean = session
            .clients
            .iter_mut()
            .map(|c| c.sync_and_evaluate(&cfg, &global))
            .sum::<f32>()
            / cfg.n_clients as f32;
        accs.push(mean);
    }
    (session.driver.global, accs, dropouts_total)
}

fn max_gap(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn rounds_to(accs: &[f32], target: f32) -> Option<usize> {
    accs.iter().position(|a| *a >= target).map(|i| i + 1)
}

fn main() {
    let scale = Scale::from_env();
    let clients = scale.pick(4, 8);
    let rounds = scale.pick(3, 6);
    let samples = scale.pick(18, 48);
    let target = scale.pick(0.25, 0.40);

    let mut artefact = Vec::new();
    let mut table = Table::new(&["algorithm", "flat r→tgt", "2-tier r→tgt", "composition"]);
    println!(
        "flat vs 2-tier aggregation ({clients} clients, {EDGES} edges, {rounds} rounds, \
         target {:.0}%)\n",
        target * 100.0
    );

    // Claims 1 + 3 for every algorithm under the default weighted mean,
    // with a round-0 dropout on edge 0 so the survivor renormalisation
    // has to compose too.
    let dropped = 1usize;
    for (alg, name) in cli::algorithms() {
        let (flat_global, flat_accs, flat_drops) = run_composed(
            builder(alg, clients, rounds, samples),
            rounds,
            1,
            Some(dropped),
        );
        let (tier_global, tier_accs, tier_drops) = run_composed(
            builder(alg, clients, rounds, samples),
            rounds,
            EDGES,
            Some(dropped),
        );
        let identical = flat_global
            .shared
            .iter()
            .zip(&tier_global.shared)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && flat_accs
                .iter()
                .zip(&tier_accs)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "{name}: weighted-mean composition must be exact");
        assert_eq!(flat_drops, tier_drops, "{name}: ledgers must compose");
        let flat_r = rounds_to(&flat_accs, target);
        let tier_r = rounds_to(&tier_accs, target);
        table.row(vec![
            name.to_string(),
            flat_r
                .map(|r| r.to_string())
                .unwrap_or(format!(">{rounds}")),
            tier_r
                .map(|r| r.to_string())
                .unwrap_or(format!(">{rounds}")),
            "exact (bit-identical)".to_string(),
        ]);
        artefact.push(serde_json::json!({
            "algorithm": name,
            "aggregator": "weighted-mean",
            "rounds_to_target_flat": flat_r,
            "rounds_to_target_tiered": tier_r,
            "bit_identical": identical,
            "dropouts_composed": tier_drops,
        }));
        eprintln!("  {name}: flat {flat_r:?} vs 2-tier {tier_r:?}, bit-identical");
    }

    // Claim 2: robust aggregators compose within the documented envelope.
    for (agg, agg_name) in [
        (AggregatorKind::CoordinateMedian, "coordinate-median"),
        (
            AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.25 },
            "trimmed-mean(0.25)",
        ),
    ] {
        let mut flat = builder(Algorithm::FedAvg, clients, rounds, samples);
        flat.driver.cfg.aggregator = agg;
        let mut tier = builder(Algorithm::FedAvg, clients, rounds, samples);
        tier.driver.cfg.aggregator = agg;
        let (flat_global, _, _) = run_composed(flat, rounds, 1, None);
        let (tier_global, _, _) = run_composed(tier, rounds, EDGES, None);
        let eps = max_gap(&flat_global.shared, &tier_global.shared);
        assert!(eps.is_finite(), "{agg_name}: composed state must be finite");
        table.row(vec![
            format!("FedAvg + {agg_name}"),
            "-".to_string(),
            "-".to_string(),
            format!("bounded-ε (max |Δ| = {eps:.2e})"),
        ]);
        artefact.push(serde_json::json!({
            "algorithm": "FedAvg",
            "aggregator": agg_name,
            "epsilon_max": eps,
        }));
        eprintln!("  FedAvg + {agg_name}: max |composed - flat| = {eps:.3e}");
    }

    table.print();
    write_json("topology", &serde_json::json!(artefact));
}
