//! FIG-ABL-BUDGET — sensitivity of SPATL to the FLOPs budget (design-choice
//! ablation; DESIGN.md §5).
//!
//! Sweeps `target_flops_ratio` and reports the three quantities it trades
//! off: accuracy, per-round upload bytes, and deployed FLOPs. Tighter
//! budgets cut communication and inference cost; the question is how much
//! accuracy they cost at harness scale.

use spatl::prelude::*;
use spatl_bench::{mb, pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(4, 8);
    let budgets = [0.9f32, 0.7, 0.5, 0.35];

    let mut table = Table::new(&[
        "budget",
        "best acc",
        "final acc",
        "upload/round/client",
        "deployed FLOPs",
    ]);
    let mut artefact = Vec::new();
    for &budget in &budgets {
        let opts = SpatlOptions {
            target_flops_ratio: budget,
            ..Default::default()
        };
        let mut sim = ExperimentBuilder::new(Algorithm::Spatl(opts))
            .model(ModelKind::ResNet20)
            .clients(scale.pick(4, 8))
            .samples_per_client(scale.pick(50, 80))
            .rounds(rounds)
            .local_epochs(2)
            .seed(123)
            .build();
        let result = sim.run();
        let upload: u64 = result.history.iter().map(|h| h.bytes.upload).sum::<u64>()
            / (rounds as u64 * sim.cfg.clients_per_round() as u64);
        let mean_flops = result
            .history
            .last()
            .map(|h| h.mean_flops_ratio)
            .unwrap_or(1.0);
        table.row(vec![
            pct(budget),
            pct(result.best_acc()),
            pct(result.final_acc()),
            mb(upload),
            pct(mean_flops),
        ]);
        artefact.push(serde_json::json!({
            "budget": budget,
            "best_acc": result.best_acc(),
            "final_acc": result.final_acc(),
            "upload_per_round_per_client": upload,
            "mean_flops_ratio": mean_flops,
        }));
        eprintln!("  budget {budget}: acc {}", pct(result.best_acc()));
    }
    table.print();
    write_json("fig_ablation_budget", &serde_json::json!(artefact));
}
