//! TAB-3 — transferability of the learned model (paper Table III, §V-E).
//!
//! Federated training on one split of the task; afterwards, transfer each
//! algorithm's trained network to a *held-out* split by fitting a fresh
//! predictor head, and compare transfer accuracy.

use spatl::prelude::*;
use spatl_bench::{cli, pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(5, 10);
    let clients = scale.pick(5, 8);

    // Held-out split: same prototypes (same task), disjoint samples — the
    // paper's 50k-FL / 10k-transfer split of CIFAR-10.
    // The transfer split uses a milder noise level than the FL split: a
    // linear probe on ~10² samples needs measurable signal to discriminate
    // encoder quality at harness scale (the paper's transfer split is 10k
    // real CIFAR images).
    let synth = SynthConfig {
        noise_std: 1.2,
        ..SynthConfig::cifar10_like()
    };
    let transfer_train = synth_cifar10(&synth, scale.pick(160, 400), 900_001);
    let transfer_val = synth_cifar10(&synth, scale.pick(80, 200), 900_002);

    let algs = cli::algorithms();

    let mut table = Table::new(&["method", "FL mean acc", "transfer acc"]);
    let mut artefact = Vec::new();
    for (alg, name) in algs {
        let mut sim = ExperimentBuilder::new(alg)
            .model(ModelKind::ResNet20)
            .clients(clients)
            .samples_per_client(scale.pick(60, 90))
            .rounds(rounds)
            .local_epochs(2)
            .seed(31)
            .build();
        let result = sim.run();

        // The shared vector's encoder part transfers; baselines share
        // encoder+predictor, SPATL shares encoder only.
        let model = ModelConfig::cifar(ModelKind::ResNet20)
            .with_seed(999)
            .build();
        let enc_len = model.encoder.num_params();
        let encoder_flat = &sim.global.shared[..enc_len];
        let acc = transfer_evaluate(
            model,
            encoder_flat,
            &transfer_train,
            &transfer_val,
            scale.pick(6, 10),
            0.05,
            13,
        );
        table.row(vec![name.to_string(), pct(result.final_acc()), pct(acc)]);
        artefact.push(serde_json::json!({
            "algorithm": name,
            "fl_final_acc": result.final_acc(),
            "transfer_acc": acc,
        }));
        eprintln!("  {name}: transfer acc {}", pct(acc));
    }

    // Control: a never-trained encoder.
    let model = ModelConfig::cifar(ModelKind::ResNet20)
        .with_seed(999)
        .build();
    let rand_flat = model.encoder.to_flat();
    let rand_acc = transfer_evaluate(
        model,
        &rand_flat,
        &transfer_train,
        &transfer_val,
        scale.pick(4, 8),
        0.05,
        13,
    );
    table.row(vec![
        "random encoder".to_string(),
        "-".to_string(),
        pct(rand_acc),
    ]);
    artefact.push(serde_json::json!({
        "algorithm": "random encoder",
        "transfer_acc": rand_acc,
    }));

    table.print();
    write_json("table3_transfer", &serde_json::json!(artefact));
}
