//! TAB-INF — inference acceleration after federated training (paper §V-D).
//!
//! After a SPATL run, every client's deployed model carries the selection
//! masks of its last participation. Report per-client FLOPs reduction,
//! sparsity (fraction of salient parameters) and deployed accuracy —
//! the paper's inference-acceleration table.

use spatl::prelude::*;

/// Post-pruning recovery: brief local fine-tune of the masked model — the
/// standard deployment step after structured pruning (masked channels stay
/// dead; surviving weights and the private head adapt).
fn finetune_masked(c: &mut spatl::fl::ClientState, epochs: usize) {
    let mut opt_enc = Sgd::with_momentum(0.02, 0.9, 1e-4);
    let mut opt_pred = Sgd::with_momentum(0.02, 0.9, 1e-4);
    let mut loss = CrossEntropyLoss::new();
    let mut rng = TensorRng::seed_from(0xF17E ^ c.id as u64);
    for _ in 0..epochs {
        for batch in c.train.batches(16, &mut rng) {
            c.model.zero_grad();
            let logits = c.model.forward(&batch.images, true);
            loss.forward(&logits, &batch.labels);
            let g = loss.backward();
            c.model.backward(&g);
            opt_enc.step(&mut c.model.encoder);
            opt_pred.step(&mut c.model.predictor);
        }
    }
}
use spatl_bench::{pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let models: Vec<ModelKind> = match scale {
        Scale::Quick => vec![ModelKind::ResNet20],
        Scale::Full => vec![ModelKind::ResNet20, ModelKind::ResNet32],
    };

    let mut artefact = Vec::new();
    for model in models {
        // Wider models than the FL-efficiency experiments: inference
        // acceleration is about pruning *over-parameterised* networks, so
        // this experiment restores enough width for real redundancy.
        let mut sim = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
            .model(model)
            .width_mult(0.5)
            .clients(scale.pick(6, 8))
            .samples_per_client(scale.pick(60, 90))
            .rounds(scale.pick(5, 8))
            .local_epochs(2)
            .seed(55)
            .build();
        sim.run();

        println!("\n=== {} ===", model.name());
        let mut table = Table::new(&[
            "client",
            "FLOPs kept",
            "FLOPs ↓",
            "salient params",
            "dense acc",
            "deployed acc",
        ]);
        let mut ratios = Vec::new();
        for c in sim.clients.iter_mut() {
            // Deployment: re-select salient channels for the final global
            // encoder (the in-round masks were chosen for older weights).
            let dense_acc = c.evaluate();
            c.select_for_deployment(0.7);
            finetune_masked(c, 2);
            let ratio = c.model.flops() as f32 / c.model.flops_dense() as f32;
            let salient = spatl::pruning::salient_param_indices(&c.model).len() as f32
                / c.model.encoder.num_params() as f32;
            let deployed_acc = c.evaluate_deployed();
            table.row(vec![
                c.id.to_string(),
                pct(ratio),
                pct(1.0 - ratio),
                pct(salient),
                pct(dense_acc),
                pct(deployed_acc),
            ]);
            ratios.push(ratio);
            artefact.push(serde_json::json!({
                "model": model.name(),
                "client": c.id,
                "flops_ratio": ratio,
                "salient_param_fraction": salient,
                "dense_acc": dense_acc,
                "deployed_acc": deployed_acc,
            }));
        }
        table.print();
        let mean = ratios.iter().sum::<f32>() / ratios.len() as f32;
        let best = ratios.iter().copied().fold(1.0f32, f32::min);
        println!(
            "mean FLOPs reduction {} | best client {}",
            pct(1.0 - mean),
            pct(1.0 - best)
        );
    }
    write_json("table_inference", &serde_json::json!(artefact));
}
