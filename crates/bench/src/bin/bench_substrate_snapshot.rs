//! Compute-substrate performance snapshot.
//!
//! Measures the kernels every experiment's wall-clock reduces to — matmul
//! GFLOP/s at the shapes ResNet-20 and VGG-11 actually produce, `im2col`
//! bandwidth, and one simulated federated round — and writes the numbers to
//! `BENCH_substrate.json` at the repo root so subsequent PRs have a
//! comparable baseline on the same machine.
//!
//! Three series per matmul shape (DESIGN.md §13's ladder):
//!
//! * **scalar** — the portable 4×8 micro-kernel, forced via
//!   [`force_scalar`] (what a runner without FMA executes);
//! * **the main numbers** — the best kernel the host supports
//!   (`"kernel"` in the JSON records which one was active);
//! * **threads** — the `vgg11_conv` shape re-measured in child
//!   processes running `SPATL_THREADS=1/2/4`, because the thread count
//!   is latched once per process; `host_cpus` is recorded next to the
//!   series so a flat curve on a single-core host reads as what it is.
//!
//! `SPATL_EXP_SCALE=quick` runs a fast smoke pass (CI); the default takes a
//! few seconds. `SPATL_BENCH_OUT` overrides the output path.

use serde_json::json;
use spatl::prelude::*;
use spatl::tensor::{
    active_kernel, force_scalar, im2col, matmul, matmul_nt, matmul_tn, Conv2dGeometry, Tensor,
};
use std::time::Instant;

/// Median seconds per call over `samples` timed samples, with enough
/// iterations per sample for the clock to resolve the body.
fn time_median(samples: usize, mut f: impl FnMut()) -> f64 {
    // Calibrate: grow iterations until one sample takes ≥ ~2 ms.
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_secs_f64() >= 2e-3 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).unwrap());
    per_call[per_call.len() / 2]
}

fn rand_t(dims: [usize; 2], rng: &mut TensorRng) -> Tensor {
    rng.normal_tensor(dims, 0.0, 1.0)
}

struct MatmulCase {
    /// Stable label, also the JSON key.
    name: &'static str,
    /// Which kernel variant the model layer calls.
    variant: &'static str,
    m: usize,
    n: usize,
    k: usize,
}

/// The GEMM shapes the scaled-down SPATL models spend their time in
/// (batch 8, 16×16 inputs — see `ModelConfig::cifar`).
const MATMUL_CASES: &[MatmulCase] = &[
    // VGG-11 classifier `Linear(128, 128)` at batch 256: y = x·Wᵀ.
    MatmulCase {
        name: "vgg11_classifier",
        variant: "nt",
        m: 256,
        n: 128,
        k: 128,
    },
    // VGG-11 widest conv (128→128ch, 3×3) lowered: cols · Wᵀ.
    MatmulCase {
        name: "vgg11_conv",
        variant: "nt",
        m: 2048,
        n: 128,
        k: 1152,
    },
    // Same conv's weight gradient: grad_rowsᵀ · cols.
    MatmulCase {
        name: "vgg11_conv_gradw",
        variant: "tn",
        m: 128,
        n: 1152,
        k: 2048,
    },
    // ResNet-20 stage-1 conv (16→16ch, 3×3).
    MatmulCase {
        name: "resnet20_conv",
        variant: "nt",
        m: 2048,
        n: 16,
        k: 144,
    },
    // Square reference points.
    MatmulCase {
        name: "square_128",
        variant: "nn",
        m: 128,
        n: 128,
        k: 128,
    },
    MatmulCase {
        name: "square_256",
        variant: "nn",
        m: 256,
        n: 256,
        k: 256,
    },
];

/// Time one matmul case with whatever kernel is currently selected;
/// returns median seconds per call.
fn time_case(case: &MatmulCase, samples: usize, rng: &mut TensorRng) -> f64 {
    let (a, b) = match case.variant {
        "nt" => (rand_t([case.m, case.k], rng), rand_t([case.n, case.k], rng)),
        "tn" => (rand_t([case.k, case.m], rng), rand_t([case.k, case.n], rng)),
        _ => (rand_t([case.m, case.k], rng), rand_t([case.k, case.n], rng)),
    };
    match case.variant {
        "nt" => time_median(samples, || {
            std::hint::black_box(matmul_nt(&a, &b));
        }),
        "tn" => time_median(samples, || {
            std::hint::black_box(matmul_tn(&a, &b));
        }),
        _ => time_median(samples, || {
            std::hint::black_box(matmul(&a, &b));
        }),
    }
}

fn gflops_of(case: &MatmulCase, secs: f64) -> f64 {
    2.0 * (case.m * case.n * case.k) as f64 / secs / 1e9
}

/// The shape the thread-scaling series re-measures in child processes.
const THREAD_CASE: &str = "vgg11_conv";

/// Child mode for the thread-scaling series: `SPATL_THREADS` is latched
/// once per process, so each point of the series is its own process.
/// Prints one f64 (GFLOP/s) on stdout and exits.
fn thread_probe(samples: usize) {
    let case = MATMUL_CASES
        .iter()
        .find(|c| c.name == THREAD_CASE)
        .expect("thread-probe case exists");
    let mut rng = TensorRng::seed_from(42);
    let secs = time_case(case, samples, &mut rng);
    println!("{}", gflops_of(case, secs));
}

/// Run the thread-scaling children: this binary re-executed with
/// `SPATL_THREADS` pinned to each point. Returns `(threads, gflops)`.
fn thread_series(samples: usize, quick: bool) -> Vec<(usize, f64)> {
    let exe = std::env::current_exe().expect("own path");
    [1usize, 2, 4]
        .iter()
        .filter_map(|&t| {
            let out = std::process::Command::new(&exe)
                .env("SPATL_BENCH_THREAD_PROBE", "1")
                .env("SPATL_THREADS", t.to_string())
                .env("SPATL_EXP_SCALE", if quick { "quick" } else { "full" })
                .output()
                .ok()?;
            let gflops: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().ok()?;
            println!(
                "matmul/{THREAD_CASE} threads={t}{}{:>7.2} GFLOP/s",
                " ".repeat(21),
                gflops
            );
            let _ = samples; // child reads its own sample count from the env
            Some((t, gflops))
        })
        .collect()
}

fn main() {
    let quick = matches!(std::env::var("SPATL_EXP_SCALE").as_deref(), Ok("quick"));
    let samples = if quick { 1 } else { 7 };
    if std::env::var("SPATL_BENCH_THREAD_PROBE").is_ok() {
        thread_probe(samples);
        return;
    }
    let mut rng = TensorRng::seed_from(42);

    let mut matmul_rows: Vec<(String, serde_json::Value)> = Vec::new();
    for case in MATMUL_CASES {
        // Scalar rung first, then the host's best kernel for the
        // headline numbers — same buffers and sample count, so the two
        // rungs differ only in the micro-kernel.
        force_scalar(true);
        let scalar_secs = time_case(case, samples, &mut rng);
        force_scalar(false);
        let secs = time_case(case, samples, &mut rng);
        let gflops = gflops_of(case, secs);
        let scalar_gflops = gflops_of(case, scalar_secs);
        println!(
            "matmul/{:<18} {:>4}x{:<4}x{:<4} [{}] {:>10.1} µs  {:>7.2} GFLOP/s (scalar {:>6.2})",
            case.name,
            case.m,
            case.n,
            case.k,
            case.variant,
            secs * 1e6,
            gflops,
            scalar_gflops
        );
        matmul_rows.push((
            case.name.to_string(),
            json!({
                "variant": case.variant,
                "m": case.m, "n": case.n, "k": case.k,
                "seconds": secs,
                "gflops": gflops,
                "scalar_seconds": scalar_secs,
                "scalar_gflops": scalar_gflops,
            }),
        ));
    }

    // im2col bandwidth at the ResNet/VGG body shape (batch 8, 16ch, 16×16,
    // 3×3 stride-1 pad-1). GB/s counts the patch matrix written.
    let x = rng.normal_tensor([8, 16, 16, 16], 0.0, 1.0);
    let g = Conv2dGeometry {
        in_channels: 16,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let out_bytes = (8 * g.cols() * g.patch_len() * std::mem::size_of::<f32>()) as f64;
    let secs = time_median(samples, || {
        std::hint::black_box(im2col(&x, &g));
    });
    let im2col_gbps = out_bytes / secs / 1e9;
    println!(
        "im2col/8x16x16x16_k3            {:>10.1} µs  {:>7.2} GB/s written",
        secs * 1e6,
        im2col_gbps
    );

    // One simulated FL round (FedAvg, miniature scale — matches
    // bench_fl_round's configuration).
    let build = || {
        ExperimentBuilder::new(Algorithm::FedAvg)
            .clients(3)
            .samples_per_client(24)
            .rounds(1)
            .local_epochs(1)
            .batch_size(12)
            .seed(5)
            .build()
    };
    let round_samples = if quick { 1 } else { 5 };
    let mut round_secs: Vec<f64> = (0..round_samples)
        .map(|_| {
            let mut sim = build();
            let t0 = Instant::now();
            sim.run_round();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    round_secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let round_sec = round_secs[round_secs.len() / 2];
    println!(
        "fl_round/fedavg_3clients        {:>10.1} ms",
        round_sec * 1e3
    );

    // Thread-scaling series: one child process per SPATL_THREADS point.
    let threads = thread_series(samples, quick);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let out = json!({
        "schema": 2,
        "mode": if quick { "quick" } else { "full" },
        "kernel": active_kernel(),
        "host_cpus": host_cpus,
        "matmul": serde_json::Value::Map(matmul_rows),
        "threads": json!({
            "case": THREAD_CASE,
            "series": threads
                .iter()
                .map(|(t, g)| json!({"threads": t, "gflops": g}))
                .collect::<Vec<_>>(),
        }),
        "im2col": json!({
            "shape": "8x16x16x16_k3s1p1",
            "seconds": secs,
            "gbps_written": im2col_gbps,
        }),
        "fl_round": json!({
            "config": "fedavg_3clients_24samples_1epoch",
            "seconds": round_sec,
        }),
    });
    let path = std::env::var("SPATL_BENCH_OUT").unwrap_or_else(|_| "BENCH_substrate.json".into());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serialise"),
    )
    .expect("write BENCH_substrate.json");
    println!("wrote {path}");
}
