//! TAB-2 — convergence at larger client scales (paper Table II).
//!
//! Train to convergence (fixed round budget at harness scale) with partial
//! participation, reporting converge rounds, per-round cost, total cost,
//! speed-up and average converge accuracy with Δ vs FedAvg.

use spatl::prelude::*;
use spatl_bench::{cli, mb, pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(6, 8);

    // (model, clients, sample_ratio) — the paper's 30/0.4, 50/0.7, 100/0.4
    // ladder, scaled.
    let settings: Vec<(ModelKind, usize, f32)> = match scale {
        Scale::Quick => vec![(ModelKind::ResNet20, 8, 0.5)],
        Scale::Full => vec![
            (ModelKind::ResNet20, 30, 0.4),
            (ModelKind::ResNet20, 50, 0.4),
            (ModelKind::Vgg11, 10, 0.4),
        ],
    };
    let algs = cli::algorithms_baseline_first();

    let mut table = Table::new(&[
        "Method",
        "Model",
        "Clients",
        "Ratio",
        "Round/Client",
        "Total",
        "Avg. Acc.",
        "ΔAcc vs FedAvg",
    ]);
    let mut artefact = Vec::new();
    for (model, clients, ratio) in settings {
        let mut fedavg_acc = 0.0f32;
        for (alg, name) in &algs {
            let mut sim = ExperimentBuilder::new(*alg)
                .model(model)
                .clients(clients)
                .sample_ratio(ratio)
                .samples_per_client(scale.pick(50, 60))
                .rounds(rounds)
                .local_epochs(2)
                .seed(3)
                .build();
            sim.run();
            // Deployment protocol (Eq. 4) for never-sampled clients.
            let final_accs = sim.finalize(3);
            let acc = final_accs.iter().sum::<f32>() / final_accs.len() as f32;
            let result = sim.result();
            if *name == "FedAvg" {
                fedavg_acc = acc;
            }
            eprintln!(
                "  {} {clients}c/{ratio}: {} acc={}",
                model.name(),
                name,
                pct(acc)
            );
            table.row(vec![
                name.to_string(),
                model.name().to_string(),
                clients.to_string(),
                format!("{ratio}"),
                mb(result.bytes_per_round_per_client),
                mb(result.total_bytes()),
                pct(acc),
                format!("{:+.1}pp", (acc - fedavg_acc) * 100.0),
            ]);
            artefact.push(serde_json::json!({
                "algorithm": name,
                "model": model.name(),
                "clients": clients,
                "sample_ratio": ratio,
                "rounds": rounds,
                "final_acc": acc,
                "total_bytes": result.total_bytes(),
                "framed_bytes": result.total_framed_bytes(),
                "transfer_s": result.total_transfer_s(),
                "bytes_per_round_per_client": result.bytes_per_round_per_client,
                "diverged_rounds": result.history.iter().filter(|h| h.diverged_clients > 0).count(),
            }));
        }
    }
    table.print();
    write_json("table2_convergence", &serde_json::json!(artefact));
}
