//! TAB-1 — communication cost to a target accuracy (paper Table I).
//!
//! Train ResNet-20/32 and VGG-11 with every algorithm until the mean
//! accuracy first reaches the target (or the round budget runs out), then
//! report rounds, per-round-per-client cost, total cost, and speed-up over
//! FedAvg — the paper's exact columns.

use spatl::prelude::*;
use spatl_bench::{cli, mb, write_json, Scale, Table};

struct Row {
    algorithm: &'static str,
    model: &'static str,
    rounds: Option<usize>,
    per_round_client: u64,
    total: u64,
    framed: u64,
    transfer_s: f64,
}

fn main() {
    let scale = Scale::from_env();
    let max_rounds = scale.pick(8, 15);
    let target = scale.pick(0.5, 0.5);
    let clients = scale.pick(4, 8);
    let models: Vec<ModelKind> = match scale {
        Scale::Quick => vec![ModelKind::ResNet20],
        Scale::Full => vec![ModelKind::ResNet20, ModelKind::ResNet32, ModelKind::Vgg11],
    };
    let algs = cli::algorithms_baseline_first();

    println!(
        "communication cost to {:.0}% mean accuracy, {clients} clients, ≤{max_rounds} rounds\n",
        target * 100.0
    );
    let mut rows: Vec<Row> = Vec::new();
    for &model in &models {
        // VGG-11 is ~6× the per-round compute of the ResNets on CPU; give
        // it a smaller federation so the table completes at harness scale.
        let (clients, max_rounds) = if model == ModelKind::Vgg11 {
            (clients.min(5), max_rounds.min(8))
        } else {
            (clients, max_rounds)
        };
        for (alg, name) in &algs {
            let mut sim = ExperimentBuilder::new(*alg)
                .model(model)
                .clients(clients)
                .samples_per_client(scale.pick(60, 90))
                .rounds(max_rounds)
                .local_epochs(2)
                .seed(1)
                .build();
            let mut reached = None;
            for _ in 0..max_rounds {
                let r = sim.run_round();
                if r.mean_acc >= target {
                    reached = Some(r.round + 1);
                    break;
                }
            }
            let result = sim.result();
            rows.push(Row {
                algorithm: name,
                model: model.name(),
                rounds: reached,
                per_round_client: result.bytes_per_round_per_client,
                total: result.total_bytes(),
                framed: result.total_framed_bytes(),
                transfer_s: result.total_transfer_s(),
            });
            eprintln!(
                "  {} / {}: rounds={:?} total={}",
                model.name(),
                name,
                reached,
                mb(result.total_bytes())
            );
        }
    }

    let mut table = Table::new(&[
        "Method",
        "Model",
        "Rounds",
        "Round/Client",
        "Total",
        "On-wire",
        "Transfer",
        "Speedup vs FedAvg",
    ]);
    let mut artefact = Vec::new();
    for &model in &models {
        let fedavg_total = rows
            .iter()
            .find(|r| r.model == model.name() && r.algorithm == "FedAvg")
            .map(|r| r.total)
            .unwrap_or(0);
        for r in rows.iter().filter(|r| r.model == model.name()) {
            let speedup = if r.total > 0 && fedavg_total > 0 {
                format!("{:.2}x", fedavg_total as f64 / r.total as f64)
            } else {
                "-".to_string()
            };
            table.row(vec![
                r.algorithm.to_string(),
                r.model.to_string(),
                r.rounds
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| format!(">{max_rounds}")),
                mb(r.per_round_client),
                mb(r.total),
                mb(r.framed),
                format!("{:.1}s", r.transfer_s),
                speedup,
            ]);
            artefact.push(serde_json::json!({
                "algorithm": r.algorithm,
                "model": r.model,
                "target": target,
                "rounds": r.rounds,
                "bytes_per_round_per_client": r.per_round_client,
                "total_bytes": r.total,
                "framed_bytes": r.framed,
                "transfer_s": r.transfer_s,
            }));
        }
    }
    table.print();
    write_json("table1_comm_cost", &serde_json::json!(artefact));
}
