//! ADVERSARY — accuracy under Byzantine clients (DESIGN.md §9,
//! EXPERIMENTS.md).
//!
//! Sweep the Byzantine fraction over {0, 0.1, 0.3} × aggregation rule for
//! FedAvg and SPATL on the CIFAR-like task under the headline scale attack
//! (λ = 100 model-replacement boosting). Defended configurations run the
//! full stack — update screen plus robust aggregator — so the table shows
//! defense in depth, not a single mechanism. The adversary plan is seeded;
//! every row (including each quarantine decision on the ledger) reproduces
//! exactly.

use spatl::prelude::*;
use spatl_bench::{pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(4, 8);
    let clients = scale.pick(5, 10);
    let fractions = [0.0, 0.1, 0.3];
    let aggregators: Vec<AggregatorKind> = vec![
        AggregatorKind::WeightedMean,
        AggregatorKind::NormClippedMean,
        AggregatorKind::CoordinateMedian,
        AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.2 },
    ];
    let algs: Vec<(Algorithm, &'static str)> = vec![
        (Algorithm::FedAvg, "FedAvg"),
        (Algorithm::Spatl(SpatlOptions::default()), "SPATL"),
    ];

    println!(
        "accuracy vs Byzantine fraction (scale attack, λ=100), \
         {clients} clients, {rounds} rounds\n"
    );
    let mut table = Table::new(&[
        "Method",
        "Aggregator",
        "Byzantine",
        "Best acc",
        "Final acc",
        "Tampered",
        "Quarantined",
    ]);
    let mut artefact = Vec::new();
    for (alg, name) in &algs {
        let mut clean_final = 0.0f32;
        for &frac in &fractions {
            for kind in &aggregators {
                // The attack-free baseline is aggregator-independent noise
                // we don't need four times over; run it once per method.
                if frac == 0.0 && *kind != AggregatorKind::WeightedMean {
                    continue;
                }
                let defended = *kind != AggregatorKind::WeightedMean;
                let mut builder = ExperimentBuilder::new(*alg)
                    .clients(clients)
                    .samples_per_client(scale.pick(60, 90))
                    .rounds(rounds)
                    .local_epochs(2)
                    .seed(1)
                    .aggregator(*kind);
                if frac > 0.0 {
                    builder = builder
                        .adversary(AdversaryPlan::with_attack(frac, AttackKind::ScaleAttack));
                }
                if defended {
                    builder = builder.screen(ScreenPolicy::default());
                }
                let result = builder.run();
                if frac == 0.0 {
                    clean_final = result.final_acc();
                }
                let tampered: usize = result.history.iter().map(|r| r.faults.byzantine).sum();
                let quarantined: usize = result.history.iter().map(|r| r.faults.quarantined).sum();
                table.row(vec![
                    name.to_string(),
                    kind.name().to_string(),
                    format!("{:.0}%", frac * 100.0),
                    pct(result.best_acc()),
                    pct(result.final_acc()),
                    tampered.to_string(),
                    quarantined.to_string(),
                ]);
                artefact.push(serde_json::json!({
                    "algorithm": name,
                    "aggregator": kind.name(),
                    "screened": defended,
                    "byzantine_fraction": frac,
                    "attack": "scale",
                    "lambda": 100.0,
                    "rounds": rounds,
                    "clients": clients,
                    "best_acc": result.best_acc(),
                    "final_acc": result.final_acc(),
                    "gap_to_attack_free": clean_final - result.final_acc(),
                    "tampered_uploads": tampered,
                    "quarantined": quarantined,
                }));
                eprintln!(
                    "  {name} {} byz={frac:.1}: best={:.3} final={:.3} \
                     tampered={tampered} quarantined={quarantined}",
                    kind.name(),
                    result.best_acc(),
                    result.final_acc()
                );
            }
        }
    }
    table.print();
    write_json("adversary_sweep", &serde_json::json!(artefact));
}
