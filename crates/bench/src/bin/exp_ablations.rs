//! FIG-ABL-SEL / FIG-ABL-TL / FIG-ABL-GC — the three component ablations
//! of §V-F (paper Figs. 4 and 5).
//!
//! * selection vs. no selection (ResNet-20, several client counts),
//! * transfer vs. no transfer (ResNet-20, 10 clients),
//! * gradient control vs. none (VGG-11, 10 clients).

use spatl::prelude::*;
use spatl_bench::{pct, write_json, Scale, Table};

#[allow(clippy::too_many_arguments)]
fn curve(
    alg: Algorithm,
    model: ModelKind,
    clients: usize,
    rounds: usize,
    spc: usize,
    beta: f64,
    noise: f32,
    seed: u64,
) -> RunResult {
    ExperimentBuilder::new(alg)
        .model(model)
        .clients(clients)
        .samples_per_client(spc)
        .beta(beta)
        .noise_std(noise)
        .rounds(rounds)
        .local_epochs(2)
        .seed(seed)
        .run()
}

fn series(r: &RunResult) -> Vec<f32> {
    r.history.iter().map(|h| h.mean_acc).collect()
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(5, 10);
    let spc = scale.pick(60, 80);
    let mut artefact = Vec::new();
    let mut table = Table::new(&["ablation", "setting", "variant", "best acc", "final acc"]);

    // --- Fig. 4: salient selection on/off, several client counts ---
    for clients in scale.pick(vec![4], vec![6, 12]) {
        for (on, label) in [(true, "with selection"), (false, "no selection")] {
            let opts = SpatlOptions {
                selection: on,
                ..Default::default()
            };
            let r = curve(
                Algorithm::Spatl(opts),
                ModelKind::ResNet20,
                clients,
                rounds,
                spc,
                0.5,
                2.5,
                91,
            );
            println!(
                "selection/{label}/{clients}c: {}",
                series(&r)
                    .iter()
                    .map(|a| format!("{a:.3}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            table.row(vec![
                "selection".into(),
                format!("{clients} clients"),
                label.into(),
                pct(r.best_acc()),
                pct(r.final_acc()),
            ]);
            artefact.push(serde_json::json!({
                "ablation": "selection", "clients": clients, "variant": label,
                "curve": series(&r),
            }));
        }
    }

    // --- Fig. 5(a): transfer on/off (ResNet-20) ---
    // The paper's transfer ablation targets *heterogeneous* clients; run it
    // in the strong-skew / hard-task regime (β = 0.2, noise 3.0) where
    // private predictors have something to adapt to.
    for (on, label) in [(true, "with transfer"), (false, "no transfer")] {
        let opts = SpatlOptions {
            transfer: on,
            ..Default::default()
        };
        let clients = scale.pick(4, 10);
        let r = curve(
            Algorithm::Spatl(opts),
            ModelKind::ResNet20,
            clients,
            rounds,
            spc,
            0.2,
            3.0,
            92,
        );
        println!(
            "transfer/{label}: {}",
            series(&r)
                .iter()
                .map(|a| format!("{a:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        table.row(vec![
            "transfer".into(),
            format!("{clients} clients"),
            label.into(),
            pct(r.best_acc()),
            pct(r.final_acc()),
        ]);
        artefact.push(serde_json::json!({
            "ablation": "transfer", "variant": label, "curve": series(&r),
        }));
    }

    // --- Fig. 5(b): gradient control on/off (VGG-11) ---
    for (on, label) in [
        (true, "with gradient control"),
        (false, "no gradient control"),
    ] {
        let opts = SpatlOptions {
            gradient_control: on,
            ..Default::default()
        };
        let clients = scale.pick(4, 10);
        let model = scale.pick(ModelKind::ResNet20, ModelKind::Vgg11);
        let r = curve(
            Algorithm::Spatl(opts),
            model,
            clients,
            rounds,
            spc,
            0.2,
            3.0,
            93,
        );
        println!(
            "gradient-control/{label}: {}",
            series(&r)
                .iter()
                .map(|a| format!("{a:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        table.row(vec![
            "gradient control".into(),
            format!("{} / {clients} clients", model.name()),
            label.into(),
            pct(r.best_acc()),
            pct(r.final_acc()),
        ]);
        artefact.push(serde_json::json!({
            "ablation": "gradient_control", "variant": label, "curve": series(&r),
        }));
    }

    println!();
    table.print();
    write_json("fig_ablations", &serde_json::json!(artefact));
}
