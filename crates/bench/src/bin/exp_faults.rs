//! FAULTS — accuracy under client dropout (DESIGN.md §8, EXPERIMENTS.md).
//!
//! Sweep the per-round dropout probability over {0, 0.1, 0.3} for FedAvg
//! and SPATL on the CIFAR-like task, and report best/final accuracy plus
//! the per-run fault ledger (dropouts, survivors, corrupted uploads,
//! retries). The fault plan is seeded, so every row reproduces exactly.

use spatl::prelude::*;
use spatl_bench::{pct, write_json, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(5, 10);
    let clients = scale.pick(4, 8);
    let dropouts = [0.0, 0.1, 0.3];
    let algs: Vec<(Algorithm, &'static str)> = vec![
        (Algorithm::FedAvg, "FedAvg"),
        (Algorithm::Spatl(SpatlOptions::default()), "SPATL"),
    ];

    println!(
        "accuracy vs per-round dropout, {clients} clients, {rounds} rounds, fault seed 0x5EED\n"
    );
    let mut table = Table::new(&[
        "Method",
        "Dropout",
        "Best acc",
        "Final acc",
        "Dropped",
        "Survived",
        "No-op rounds",
    ]);
    let mut artefact = Vec::new();
    for (alg, name) in &algs {
        let mut baseline_best = 0.0f32;
        for &p in &dropouts {
            let mut builder = ExperimentBuilder::new(*alg)
                .clients(clients)
                .samples_per_client(scale.pick(60, 90))
                .rounds(rounds)
                .local_epochs(2)
                .seed(1);
            if p > 0.0 {
                builder = builder.faults(FaultPlan::dropout_only(p));
            }
            let result = builder.run();
            if p == 0.0 {
                baseline_best = result.best_acc();
            }
            let dropped: usize = result.history.iter().map(|r| r.faults.dropouts).sum();
            let survived: usize = result.history.iter().map(|r| r.faults.survivors).sum();
            let sampled: usize = result.history.iter().map(|r| r.faults.sampled).sum();
            let noop = result.history.iter().filter(|r| r.faults.no_op).count();
            table.row(vec![
                name.to_string(),
                format!("{:.0}%", p * 100.0),
                pct(result.best_acc()),
                pct(result.final_acc()),
                format!("{dropped}/{sampled}"),
                survived.to_string(),
                noop.to_string(),
            ]);
            artefact.push(serde_json::json!({
                "algorithm": name,
                "dropout": p,
                "rounds": rounds,
                "clients": clients,
                "best_acc": result.best_acc(),
                "final_acc": result.final_acc(),
                "gap_to_fault_free": baseline_best - result.best_acc(),
                "sampled": sampled,
                "dropped": dropped,
                "survived": survived,
                "no_op_rounds": noop,
            }));
            eprintln!(
                "  {name} dropout={p:.1}: best={:.3} final={:.3} dropped={dropped}/{sampled}",
                result.best_acc(),
                result.final_acc()
            );
        }
    }
    table.print();
    write_json("faults_dropout_sweep", &serde_json::json!(artefact));
}
