//! Shared support for the experiment binaries (`exp_*`) and Criterion
//! benches that regenerate the SPATL paper's tables and figures.
//!
//! Every binary prints the paper-style rows to stdout and appends a
//! machine-readable JSON record under `results/` so EXPERIMENTS.md can be
//! assembled from artefacts.

use std::fs;
use std::path::PathBuf;

pub mod cli;

/// Experiment scale selected via the `SPATL_EXP_SCALE` environment
/// variable: `quick` (CI-sized), `full` (default; minutes per experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized runs: fewest rounds/clients that still show the shape.
    Quick,
    /// Paper-shaped runs at reproduction scale.
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("SPATL_EXP_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Pick `quick` or `full` value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SPATL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a JSON artefact for an experiment.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialise"),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\n[results written to {}]", path.display());
}

/// Minimal fixed-width table printer for paper-style rows.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Print with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", joined.join(" | "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format bytes as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / 1e6)
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_values() {
        assert_eq!(Scale::Quick.pick(1, 10), 1);
        assert_eq!(Scale::Full.pick(1, 10), 10);
    }

    #[test]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["1".into()]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(2_100_000), "2.10 MB");
        assert_eq!(pct(0.425), "42.5%");
    }
}
