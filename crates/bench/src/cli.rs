//! Shared command-line handling for the experiment (`exp_*`) and
//! networked-runtime (`spatl-server`/`spatl-client`) binaries.
//!
//! Two things live here: a tiny `--flag value` parser (no external
//! dependency, long flags only, `--flag=value` accepted), and the
//! canonical algorithm roster the binaries used to re-declare ad hoc —
//! one list per ordering convention, plus a name parser for selecting a
//! single algorithm from the command line.

use std::time::Duration;

use spatl::prelude::{
    Algorithm, ChaosPlan, ChurnPlan, ExperimentBuilder, Simulation, SpatlOptions,
};

/// The paper's five algorithms, SPATL first (the ordering the
/// figure-style experiments print).
pub fn algorithms() -> Vec<(Algorithm, &'static str)> {
    vec![
        (Algorithm::Spatl(SpatlOptions::default()), "SPATL"),
        (Algorithm::FedAvg, "FedAvg"),
        (Algorithm::FedProx { mu: 0.01 }, "FedProx"),
        (Algorithm::Scaffold, "SCAFFOLD"),
        (Algorithm::FedNova, "FedNova"),
    ]
}

/// The same five algorithms, baselines first (the ordering the
/// table-style experiments print, SPATL as the closing row).
pub fn algorithms_baseline_first() -> Vec<(Algorithm, &'static str)> {
    vec![
        (Algorithm::FedAvg, "FedAvg"),
        (Algorithm::FedNova, "FedNova"),
        (Algorithm::FedProx { mu: 0.01 }, "FedProx"),
        (Algorithm::Scaffold, "SCAFFOLD"),
        (Algorithm::Spatl(SpatlOptions::default()), "SPATL"),
    ]
}

/// Parse an algorithm name as given on a command line (case-insensitive:
/// `fedavg`, `fedprox`, `scaffold`, `fednova`, `spatl`), with each
/// algorithm's canonical reproduction parameters.
pub fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    match name.to_ascii_lowercase().as_str() {
        "fedavg" => Ok(Algorithm::FedAvg),
        "fedprox" => Ok(Algorithm::FedProx { mu: 0.01 }),
        "scaffold" => Ok(Algorithm::Scaffold),
        "fednova" => Ok(Algorithm::FedNova),
        "spatl" => Ok(Algorithm::Spatl(SpatlOptions::default())),
        other => Err(format!(
            "unknown algorithm '{other}' (expected fedavg|fedprox|scaffold|fednova|spatl)"
        )),
    }
}

/// Parsed command line: a sequence of `--flag value` (or `--flag=value`)
/// pairs. Unknown flags are rejected up front so a typo cannot silently
/// fall back to a default.
#[derive(Debug, Clone)]
pub struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    /// Parse the process's arguments, allowing only `accepted` flag names
    /// (without the `--` prefix). Exits with a usage message listing the
    /// accepted flags on any malformed or unknown argument.
    pub fn parse(accepted: &[&str]) -> Args {
        match Self::from_iter(std::env::args().skip(1), accepted) {
            Ok(args) => args,
            Err(msg) => {
                let mut usage = String::new();
                for f in accepted {
                    usage.push_str(&format!(" [--{f} <value>]"));
                }
                eprintln!("error: {msg}\nusage: {}{usage}", bin_name());
                std::process::exit(2);
            }
        }
    }

    /// Parse an explicit argument list (testable core of [`Args::parse`]).
    pub fn from_iter<I, S>(args: I, accepted: &[&str]) -> Result<Args, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = Vec::new();
        let mut iter = args.into_iter().map(Into::into);
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got '{arg}'"))?;
            let (name, value) = match name.split_once('=') {
                Some((n, v)) => (n.to_string(), v.to_string()),
                None => {
                    let v = iter
                        .next()
                        .ok_or_else(|| format!("flag --{name} is missing its value"))?;
                    (name.to_string(), v)
                }
            };
            if !accepted.contains(&name.as_str()) {
                return Err(format!("unknown flag --{name}"));
            }
            flags.push((name, value));
        }
        Ok(Args { flags })
    }

    /// The raw value of a flag, if given (last occurrence wins).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a flag's value, falling back to `default` when absent. Exits
    /// with an error message when the value is present but malformed.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: flag --{name} has malformed value '{v}'");
                std::process::exit(2);
            }),
        }
    }

    /// A flag that must be present.
    pub fn require(&self, name: &str) -> &str {
        self.get(name).unwrap_or_else(|| {
            eprintln!("error: flag --{name} is required");
            std::process::exit(2);
        })
    }
}

fn bin_name() -> String {
    std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "binary".to_string())
}

/// The flag set shared by `spatl-server` and `spatl-client`:
/// `--addr`, `--clients`, `--rounds`, `--seed`, `--algorithm`, plus the
/// session-shape flags both ends must agree on for the fingerprint to
/// match (`--samples`, `--local-epochs`, `--batch`).
#[derive(Debug, Clone)]
pub struct NetOpts {
    /// Coordinator address (listen address server-side, target
    /// client-side).
    pub addr: String,
    /// Number of federated clients in the session.
    pub clients: usize,
    /// Communication rounds to run.
    pub rounds: usize,
    /// Session seed (model init, sampling, shards).
    pub seed: u64,
    /// The federated algorithm.
    pub algorithm: Algorithm,
    /// Synthetic samples per client shard.
    pub samples: usize,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Local batch size.
    pub batch: usize,
    /// Seeded transport chaos plan, part of the session fingerprint —
    /// every endpoint of a run must be given the same chaos flags.
    pub chaos: Option<ChaosPlan>,
    /// Client churn plan, also fingerprinted across the endpoints.
    pub churn: Option<ChurnPlan>,
}

impl NetOpts {
    /// Flags [`NetOpts::from_args`] consumes (the chaos and churn flags
    /// included — they shape the session fingerprint, so every networked
    /// binary accepts them); binaries append their own extras before
    /// calling [`Args::parse`].
    pub const FLAGS: [&'static str; 21] = [
        "addr",
        "clients",
        "rounds",
        "seed",
        "algorithm",
        "samples",
        "local-epochs",
        "batch",
        "chaos-reset",
        "chaos-stall",
        "chaos-stall-ms",
        "chaos-duplicate",
        "chaos-kill-edge",
        "chaos-seed",
        "churn",
        "churn-period",
        "churn-duty",
        "churn-arrival-span",
        "churn-flake",
        "churn-abrupt",
        "churn-seed",
    ];

    /// Read the shared runtime flags out of parsed [`Args`], defaulting
    /// to a 4-client × 3-round FedAvg loopback session.
    pub fn from_args(args: &Args) -> NetOpts {
        let algorithm = match parse_algorithm(args.get("algorithm").unwrap_or("fedavg")) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        };
        NetOpts {
            addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
            clients: args.get_or("clients", 4),
            rounds: args.get_or("rounds", 3),
            seed: args.get_or("seed", 7),
            algorithm,
            samples: args.get_or("samples", 24),
            local_epochs: args.get_or("local-epochs", 1),
            batch: args.get_or("batch", 8),
            chaos: parse_chaos(args),
            churn: parse_churn(args),
        }
    }

    /// Deterministic session factory both networked endpoints share: the
    /// same flags produce the same model initialisation, the same data
    /// shards and the same control-plane fingerprint, on the server and
    /// on every client process.
    pub fn build_session(&self) -> Simulation {
        let mut b = ExperimentBuilder::new(self.algorithm)
            .clients(self.clients)
            .rounds(self.rounds)
            .samples_per_client(self.samples)
            .local_epochs(self.local_epochs)
            .batch_size(self.batch)
            .seed(self.seed);
        if let Some(plan) = self.chaos {
            b = b.chaos(plan);
        }
        if let Some(plan) = self.churn {
            b = b.churn(plan);
        }
        b.build()
    }
}

/// Build the chaos plan out of the `--chaos-*` flags; `None` when no
/// chaos flag was given at all (the common, chaos-free case).
/// `--chaos-kill-edge` takes `round:edge` (e.g. `1:0` kills edge 0 from
/// round 1 onward).
fn parse_chaos(args: &Args) -> Option<ChaosPlan> {
    let given = [
        "chaos-reset",
        "chaos-stall",
        "chaos-duplicate",
        "chaos-kill-edge",
    ]
    .iter()
    .any(|f| args.get(f).is_some());
    if !given {
        return None;
    }
    let defaults = ChaosPlan::default();
    let kill_edge = args.get("chaos-kill-edge").map(|v| {
        let parts: Option<(u32, u32)> = v
            .split_once(':')
            .and_then(|(r, e)| Some((r.parse().ok()?, e.parse().ok()?)));
        parts.unwrap_or_else(|| {
            eprintln!("error: flag --chaos-kill-edge wants 'round:edge', got '{v}'");
            std::process::exit(2);
        })
    });
    Some(ChaosPlan {
        reset: args.get_or("chaos-reset", defaults.reset),
        stall: args.get_or("chaos-stall", defaults.stall),
        stall_ms: args.get_or("chaos-stall-ms", defaults.stall_ms),
        duplicate: args.get_or("chaos-duplicate", defaults.duplicate),
        kill_edge,
        seed: args.get_or("chaos-seed", defaults.seed),
    })
}

/// Build the churn plan out of the `--churn*` flags; `None` when
/// `--churn` is absent. `--churn` names the base profile
/// (`cross-silo`, `cross-device` or `custom`) and the remaining flags
/// override its individual fields.
fn parse_churn(args: &Args) -> Option<ChurnPlan> {
    let base = match args.get("churn")? {
        "cross-silo" => ChurnPlan::cross_silo(),
        "cross-device" => ChurnPlan::cross_device(),
        "custom" => ChurnPlan::default(),
        other => {
            eprintln!(
                "error: flag --churn has unknown profile '{other}' \
                 (expected cross-silo|cross-device|custom)"
            );
            std::process::exit(2);
        }
    };
    Some(ChurnPlan {
        period: args.get_or("churn-period", base.period),
        duty: args.get_or("churn-duty", base.duty),
        arrival_span: args.get_or("churn-arrival-span", base.arrival_span),
        flake: args.get_or("churn-flake", base.flake),
        abrupt: args.get_or("churn-abrupt", base.abrupt),
        seed: args.get_or("churn-seed", base.seed),
    })
}

/// The runtime-deadline flag set shared by `spatl-server` and
/// `spatl-edge`: how long to wait for the cohort to register
/// (`--join-timeout`), for a round to complete (`--round-timeout`) and
/// for a single blocking read/write (`--io-timeout`), all in seconds —
/// plus the root's quorum commit fraction (`--quorum`).
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOpts {
    /// Registration wait before the first round starts short-handed.
    pub join_timeout: Duration,
    /// Shared per-round collection deadline.
    pub round_timeout: Duration,
    /// Per-operation socket deadline (handshakes, writes).
    pub io_timeout: Duration,
    /// Fraction of the round's participants whose folded uploads commit
    /// the round (`(0, 1]`; 1.0 waits for everyone).
    pub quorum: f64,
}

impl RuntimeOpts {
    /// Flags [`RuntimeOpts::from_args`] consumes.
    pub const FLAGS: [&'static str; 4] = ["join-timeout", "round-timeout", "io-timeout", "quorum"];

    /// Read the runtime flags out of parsed [`Args`] (defaults: 30 s
    /// join, 300 s round, 30 s io, quorum 1.0).
    pub fn from_args(args: &Args) -> RuntimeOpts {
        RuntimeOpts {
            join_timeout: Duration::from_secs(args.get_or("join-timeout", 30)),
            round_timeout: Duration::from_secs(args.get_or("round-timeout", 300)),
            io_timeout: Duration::from_secs(args.get_or("io-timeout", 30)),
            quorum: args.get_or("quorum", 1.0),
        }
    }
}

/// The topology flag set shared by `spatl-server`, `spatl-edge` and
/// `exp_topology`: how many edge aggregators the session runs (`--edges`,
/// 0 = flat), which edge a `spatl-edge` process is (`--edge-id`), where
/// the root listens (`--root-addr`) and where the durable round log lives
/// (`--wal`). Plain data — the binaries translate it into their runtime's
/// own configuration types.
#[derive(Debug, Clone)]
pub struct TierOpts {
    /// Number of edge aggregators between clients and root; 0 keeps the
    /// flat star topology.
    pub edges: usize,
    /// Which edge this process is (`spatl-edge` only; 0-based).
    pub edge_id: usize,
    /// Root coordinator address an edge connects upstream to.
    pub root_addr: String,
    /// Durable write-ahead round log path (root only); `None` disables
    /// mid-round crash recovery.
    pub wal: Option<String>,
}

impl TierOpts {
    /// Flags [`TierOpts::from_args`] consumes; binaries append them to
    /// [`NetOpts::FLAGS`] before calling [`Args::parse`].
    pub const FLAGS: [&'static str; 4] = ["edges", "edge-id", "root-addr", "wal"];

    /// Read the topology flags out of parsed [`Args`], defaulting to the
    /// flat topology with no round log.
    pub fn from_args(args: &Args) -> TierOpts {
        TierOpts {
            edges: args.get_or("edges", 0),
            edge_id: args.get_or("edge-id", 0),
            root_addr: args
                .get("root-addr")
                .unwrap_or("127.0.0.1:7878")
                .to_string(),
            wal: args.get("wal").map(str::to_string),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flag_pairs_and_equals_form() {
        let args =
            Args::from_iter(["--addr", "0.0.0.0:9", "--rounds=5"], &["addr", "rounds"]).unwrap();
        assert_eq!(args.get("addr"), Some("0.0.0.0:9"));
        assert_eq!(args.get_or("rounds", 0usize), 5);
        assert_eq!(args.get_or("missing", 7usize), 7);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(Args::from_iter(["--bogus", "1"], &["addr"]).is_err());
        assert!(Args::from_iter(["--addr"], &["addr"]).is_err());
        assert!(Args::from_iter(["addr", "1"], &["addr"]).is_err());
    }

    #[test]
    fn algorithm_names_parse() {
        for (_, name) in algorithms() {
            assert!(
                parse_algorithm(&name.to_ascii_lowercase()).is_ok(),
                "{name}"
            );
        }
        assert!(parse_algorithm("blockchain").is_err());
    }

    #[test]
    fn tier_flags_parse_and_default_to_flat() {
        let flat = TierOpts::from_args(&Args::from_iter::<[&str; 0], &str>([], &[]).unwrap());
        assert_eq!(flat.edges, 0);
        assert!(flat.wal.is_none());

        let accepted: Vec<&str> = TierOpts::FLAGS.to_vec();
        let args = Args::from_iter(
            ["--edges", "2", "--edge-id=1", "--wal", "log.jsonl"],
            &accepted,
        )
        .unwrap();
        let tiered = TierOpts::from_args(&args);
        assert_eq!((tiered.edges, tiered.edge_id), (2, 1));
        assert_eq!(tiered.wal.as_deref(), Some("log.jsonl"));
    }

    #[test]
    fn chaos_churn_and_runtime_flags_parse() {
        let accepted: Vec<&str> = NetOpts::FLAGS
            .iter()
            .chain(RuntimeOpts::FLAGS.iter())
            .copied()
            .collect();

        // No chaos/churn flags → no plans, so the fingerprint matches a
        // plain session.
        let none = Args::from_iter::<[&str; 0], &str>([], &accepted).unwrap();
        let opts = NetOpts::from_args(&none);
        assert!(opts.chaos.is_none() && opts.churn.is_none());
        let runtime = RuntimeOpts::from_args(&none);
        assert_eq!(runtime.round_timeout, Duration::from_secs(300));
        assert_eq!(runtime.quorum, 1.0);

        let args = Args::from_iter(
            [
                "--chaos-reset",
                "0.5",
                "--chaos-kill-edge",
                "2:1",
                "--churn",
                "cross-device",
                "--churn-duty",
                "0.6",
                "--quorum",
                "0.75",
                "--io-timeout",
                "5",
            ],
            &accepted,
        )
        .unwrap();
        let opts = NetOpts::from_args(&args);
        let chaos = opts.chaos.expect("chaos flags given");
        assert_eq!(chaos.reset, 0.5);
        assert_eq!(chaos.kill_edge, Some((2, 1)));
        assert_eq!(chaos.duplicate, 0.0);
        let churn = opts.churn.expect("churn profile given");
        assert_eq!(churn.duty, 0.6);
        assert_eq!(churn.arrival_span, ChurnPlan::cross_device().arrival_span);
        let runtime = RuntimeOpts::from_args(&args);
        assert_eq!(runtime.quorum, 0.75);
        assert_eq!(runtime.io_timeout, Duration::from_secs(5));
    }

    #[test]
    fn rosters_cover_the_same_five() {
        let mut a: Vec<&str> = algorithms().iter().map(|(_, n)| *n).collect();
        let mut b: Vec<&str> = algorithms_baseline_first()
            .iter()
            .map(|(_, n)| *n)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}
