//! Integration tests for agent pre-training and fine-tuning (Fig. 6 logic).

use spatl_agent::{finetune_agent, pretrain_agent, ActorCritic, AgentConfig, PruningEnv};
use spatl_data::{synth_cifar10, SynthConfig};
use spatl_models::{ModelConfig, ModelKind};
use spatl_nn::{CrossEntropyLoss, Optimizer, Sgd};
use spatl_tensor::TensorRng;

/// Briefly train a model so pruning decisions actually affect accuracy.
fn trained_model(kind: ModelKind, seed: u64) -> spatl_models::SplitModel {
    let cfg = SynthConfig {
        noise_std: 0.4,
        ..SynthConfig::cifar10_like()
    };
    let train = synth_cifar10(&cfg, 160, seed);
    let mut model = ModelConfig::cifar(kind).with_seed(seed).build();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    let mut loss = CrossEntropyLoss::new();
    let mut rng = TensorRng::seed_from(seed);
    for _ in 0..3 {
        for batch in train.batches(32, &mut rng) {
            model.zero_grad();
            let logits = model.forward(&batch.images, true);
            loss.forward(&logits, &batch.labels);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model.encoder);
            opt.step(&mut model.predictor);
        }
    }
    model
}

#[test]
fn pretraining_produces_valid_log_and_learns_signal() {
    let model = trained_model(ModelKind::ResNet20, 1);
    let val = synth_cifar10(&SynthConfig::cifar10_like(), 60, 99);
    let env = PruningEnv::new(model, val, 0.7);
    let mut agent = ActorCritic::new(AgentConfig::default(), 1);
    let mut rng = TensorRng::seed_from(2);
    let log = pretrain_agent(&mut agent, &env, 8, 4, 3, &mut rng);
    assert_eq!(log.rewards.len(), 8);
    assert_eq!(log.stats.len(), 8);
    assert!(log.rewards.iter().all(|&r| (0.0..=1.0).contains(&r)));
    assert!(log
        .stats
        .iter()
        .all(|s| s.policy_loss.is_finite() && s.value_loss.is_finite()));
}

#[test]
fn finetune_freezes_gnn_and_moves_heads() {
    let model = trained_model(ModelKind::ResNet20, 3);
    let val = synth_cifar10(&SynthConfig::cifar10_like(), 40, 98);
    let env = PruningEnv::new(model, val, 0.7);
    let mut agent = ActorCritic::new(AgentConfig::default(), 5);
    let gnn_before: Vec<Vec<f32>> = agent.params()[..4]
        .iter()
        .map(|t| t.data().to_vec())
        .collect();
    let heads_before: Vec<Vec<f32>> = agent.params()[4..]
        .iter()
        .map(|t| t.data().to_vec())
        .collect();
    let mut rng = TensorRng::seed_from(6);
    finetune_agent(&mut agent, &env, 3, 3, 2, &mut rng);
    for (a, b) in agent.params()[..4].iter().zip(&gnn_before) {
        assert_eq!(a.data(), &b[..], "GNN weights moved during fine-tune");
    }
    let heads_moved = agent.params()[4..]
        .iter()
        .zip(&heads_before)
        .any(|(a, b)| a.data() != &b[..]);
    assert!(heads_moved, "heads did not move during fine-tune");
}

#[test]
fn critic_value_tracks_reward_scale_after_training() {
    let model = trained_model(ModelKind::ResNet20, 7);
    let val = synth_cifar10(&SynthConfig::cifar10_like(), 40, 97);
    let env = PruningEnv::new(model, val, 0.7);
    let mut agent = ActorCritic::new(AgentConfig::default(), 8);
    let mut rng = TensorRng::seed_from(9);
    let log = pretrain_agent(&mut agent, &env, 10, 4, 4, &mut rng);
    let mean_reward: f32 = log.rewards.iter().sum::<f32>() / log.rewards.len() as f32;
    let v = agent.evaluate(&env.graph()).value;
    // The critic should be in the right ballpark of observed rewards.
    assert!(
        (v - mean_reward).abs() < 0.5,
        "value {v}, mean reward {mean_reward}"
    );
}

#[test]
fn agent_transfers_between_architectures() {
    // Pre-train on ResNet-20's graph, then evaluate on ResNet-18's graph —
    // the GNN must handle a different topology without retraining (the
    // premise of the paper's agent-transfer experiment).
    let m20 = trained_model(ModelKind::ResNet20, 11);
    let val = synth_cifar10(&SynthConfig::cifar10_like(), 40, 96);
    let env20 = PruningEnv::new(m20, val.clone(), 0.7);
    let mut agent = ActorCritic::new(AgentConfig::default(), 12);
    let mut rng = TensorRng::seed_from(13);
    pretrain_agent(&mut agent, &env20, 4, 3, 2, &mut rng);

    let m18 = ModelConfig::cifar(ModelKind::ResNet18).build();
    let env18 = PruningEnv::new(m18, val, 0.7);
    let g18 = env18.graph();
    let eval = agent.evaluate(&g18);
    assert_eq!(eval.mu.len(), g18.prune_nodes.len());
    assert!(eval.mu.iter().all(|m| m.is_finite()));
}
