//! Adam state over a flat list of tensors (the agent's parameters).

use serde::{Deserialize, Serialize};
use spatl_tensor::Tensor;

/// Adam optimiser state for a fixed-length parameter list, with support for
/// freezing a prefix of the list (used to fine-tune only the MLP head).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl AdamState {
    /// Create Adam state shaped like `params`.
    ///
    /// The paper's RL settings use Adam with lr = 1e-4 and β₁ = 0.9.
    pub fn new(params: &[Tensor], lr: f32) -> Self {
        AdamState {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: params
                .iter()
                .map(|p| Tensor::zeros(p.dims().to_vec()))
                .collect(),
            v: params
                .iter()
                .map(|p| Tensor::zeros(p.dims().to_vec()))
                .collect(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Set the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one Adam step. `frozen[i] = true` skips parameter `i` entirely
    /// (no state update either, so unfreezing later resumes cleanly).
    pub fn step(&mut self, params: &mut [Tensor], grads: &[Tensor], frozen: &[bool]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(params.len(), grads.len(), "grad count mismatch");
        assert_eq!(params.len(), frozen.len(), "frozen mask mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            if frozen[i] {
                continue;
            }
            let md = self.m[i].data_mut();
            let vd = self.v[i].data_mut();
            let gd = grads[i].data();
            let xd = params[i].data_mut();
            for j in 0..xd.len() {
                let g = gd[j];
                md[j] = self.beta1 * md[j] + (1.0 - self.beta1) * g;
                vd[j] = self.beta2 * vd[j] + (1.0 - self.beta2) * g * g;
                xd[j] -= self.lr * (md[j] / b1t) / ((vd[j] / b2t).sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_params_do_not_move() {
        let mut params = vec![Tensor::ones([2]), Tensor::ones([2])];
        let grads = vec![Tensor::ones([2]), Tensor::ones([2])];
        let mut adam = AdamState::new(&params, 0.1);
        adam.step(&mut params, &grads, &[true, false]);
        assert_eq!(params[0].data(), &[1.0, 1.0]);
        assert!(params[1].data()[0] < 1.0);
    }

    #[test]
    fn step_direction_opposes_gradient() {
        let mut params = vec![Tensor::zeros([3])];
        let grads = vec![Tensor::from_slice(&[1.0, -1.0, 0.0])];
        let mut adam = AdamState::new(&params, 0.01);
        adam.step(&mut params, &grads, &[false]);
        assert!(params[0].data()[0] < 0.0);
        assert!(params[0].data()[1] > 0.0);
        assert_eq!(params[0].data()[2], 0.0);
    }
}
