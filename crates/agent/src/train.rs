//! Pre-training and fine-tuning loops for the selection agent.

use crate::{ppo::ppo_update, ActorCritic, PpoStats, PruningEnv, Transition};
use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;
use std::sync::Arc;

/// Per-update-round log of an agent training run (drives Fig. 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainLog {
    /// Mean reward per update round.
    pub rewards: Vec<f32>,
    /// PPO statistics per update round.
    pub stats: Vec<PpoStats>,
}

fn run_rounds(
    agent: &mut ActorCritic,
    env: &PruningEnv,
    rounds: usize,
    steps_per_round: usize,
    epochs_per_round: usize,
    freeze_gnn: bool,
    rng: &mut TensorRng,
) -> TrainLog {
    let graph = Arc::new(env.graph());
    let mut log = TrainLog {
        rewards: Vec::with_capacity(rounds),
        stats: Vec::with_capacity(rounds),
    };
    for _ in 0..rounds {
        let mut batch = Vec::with_capacity(steps_per_round);
        let mut reward_sum = 0.0f32;
        for _ in 0..steps_per_round {
            let (action, eval) = agent.sample_action(&graph, rng);
            let outcome = env.step(&action);
            reward_sum += outcome.reward;
            let log_prob = agent.log_prob(&eval.mu, &action);
            batch.push(Transition {
                graph: graph.clone(),
                action,
                log_prob,
                value: eval.value,
                reward: outcome.reward,
            });
        }
        let stats = ppo_update(agent, &batch, epochs_per_round, freeze_gnn);
        log.rewards.push(reward_sum / steps_per_round as f32);
        log.stats.push(stats);
    }
    log
}

/// Pre-train the agent on the network-pruning task (paper: ResNet-56),
/// updating the full network (GNN + heads).
pub fn pretrain_agent(
    agent: &mut ActorCritic,
    env: &PruningEnv,
    rounds: usize,
    steps_per_round: usize,
    epochs_per_round: usize,
    rng: &mut TensorRng,
) -> TrainLog {
    run_rounds(
        agent,
        env,
        rounds,
        steps_per_round,
        epochs_per_round,
        false,
        rng,
    )
}

/// Fine-tune a pre-trained agent on a new encoder, updating **only the MLP
/// heads** (paper §V-A: "We only update the MLP's ... parameter when
/// fine-tuning").
pub fn finetune_agent(
    agent: &mut ActorCritic,
    env: &PruningEnv,
    rounds: usize,
    steps_per_round: usize,
    epochs_per_round: usize,
    rng: &mut TensorRng,
) -> TrainLog {
    run_rounds(
        agent,
        env,
        rounds,
        steps_per_round,
        epochs_per_round,
        true,
        rng,
    )
}
