//! GNN actor-critic with hand-written backpropagation.
//!
//! Architecture (Eq. 5-6 of the paper):
//!
//! ```text
//! H1 = relu(A · X · W1 + b1)          # GNN message passing, layer 1
//! H2 = relu(A · H1 · W2 + b2)         # GNN message passing, layer 2
//! μ_k = s_max · σ(MLP(H2[prune_k]))   # per-prune-layer sparsity mean
//! V   = MLP_v(mean_rows(H2))          # state value
//! ```
//!
//! The policy is a diagonal Gaussian with fixed standard deviation (the
//! paper uses σ = 0.5) over the per-layer sparsity vector.

use crate::AdamState;
use serde::{Deserialize, Serialize};
use spatl_graph::{CompGraph, FEATURE_DIM};
use spatl_tensor::{matmul, matmul_nt, matmul_tn, Tensor, TensorRng};

/// Hyper-parameters of the actor-critic (paper §V-A "RL Agent Settings").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AgentConfig {
    /// GNN embedding width.
    pub hidden: usize,
    /// MLP head width.
    pub mlp_hidden: usize,
    /// Maximum per-layer sparsity the policy can emit.
    pub s_max: f32,
    /// Fixed Gaussian policy standard deviation (paper: 0.5).
    pub std: f32,
    /// PPO clip parameter ε (paper: 0.2).
    pub clip: f32,
    /// Discount factor (paper: 0.99; episodes are single-step so it only
    /// matters for multi-step extensions).
    pub gamma: f32,
    /// Adam learning rate (paper: 1e-4; the harness default is larger
    /// because its pruning episodes are much cheaper).
    pub lr: f32,
    /// Weight of the critic loss.
    pub value_coef: f32,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            hidden: 32,
            mlp_hidden: 32,
            s_max: 0.8,
            std: 0.5,
            clip: 0.2,
            gamma: 0.99,
            lr: 3e-3,
            value_coef: 0.5,
        }
    }
}

/// Index layout of the parameter list: GNN weights occupy `0..4`, the
/// actor/critic heads the rest — the paper fine-tunes only the heads.
pub(crate) const GNN_PARAMS: usize = 4;

/// Result of one policy evaluation on a graph.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Per-prune-layer action means μ ∈ `[0, s_max]`.
    pub mu: Vec<f32>,
    /// Critic value estimate.
    pub value: f32,
}

/// The GNN actor-critic network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorCritic {
    /// Hyper-parameters.
    pub cfg: AgentConfig,
    /// Parameters: `[W1, b1, W2, b2, M1, m1, M2, m2, C1, c1, C2, c2]`.
    params: Vec<Tensor>,
    adam: AdamState,
}

struct ForwardCache {
    x: Tensor,
    s1: Tensor,
    h1: Tensor,
    s2: Tensor,
    h2: Tensor,
    z: Tensor,
    us: Tensor,
    u: Tensor,
    mu_raw: Tensor,
    cs: Tensor,
    cu: Tensor,
    g: Tensor,
}

impl ActorCritic {
    /// Create a randomly initialised agent.
    pub fn new(cfg: AgentConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed_from(seed);
        let d = cfg.hidden;
        let dh = cfg.mlp_hidden;
        let f = FEATURE_DIM;
        let params = vec![
            rng.kaiming_uniform([f, d], f),   // W1
            Tensor::zeros([1, d]),            // b1
            rng.kaiming_uniform([d, d], d),   // W2
            Tensor::zeros([1, d]),            // b2
            rng.kaiming_uniform([d, dh], d),  // M1
            Tensor::zeros([1, dh]),           // m1
            rng.kaiming_uniform([dh, 1], dh), // M2
            // Conservative initial policy: σ(−1.5) ≈ 0.18, so the agent
            // starts by pruning lightly and only raises sparsity where the
            // reward (masked validation accuracy) supports it.
            Tensor::full([1, 1], -1.5),       // m2
            rng.kaiming_uniform([d, dh], d),  // C1
            Tensor::zeros([1, dh]),           // c1
            rng.kaiming_uniform([dh, 1], dh), // C2
            Tensor::zeros([1, 1]),            // c2
        ];
        let adam = AdamState::new(&params, cfg.lr);
        ActorCritic { cfg, params, adam }
    }

    /// Total scalar parameter count — the paper reports the agent is tiny
    /// (tens of KB), which this should reproduce.
    pub fn num_params(&self) -> usize {
        self.params.iter().map(|p| p.numel()).sum()
    }

    /// Memory footprint of the parameters in bytes (f32 storage).
    pub fn param_bytes(&self) -> usize {
        self.num_params() * 4
    }

    /// Borrow the raw parameter list (for snapshots in tests).
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn add_bias(mut x: Tensor, b: &Tensor) -> Tensor {
        let cols = x.dims()[1];
        let bd = b.data();
        for row in x.data_mut().chunks_mut(cols) {
            for (v, bv) in row.iter_mut().zip(bd) {
                *v += bv;
            }
        }
        x
    }

    fn relu(mut x: Tensor) -> Tensor {
        x.map_in_place(|v| v.max(0.0));
        x
    }

    fn forward(&self, graph: &CompGraph) -> (Evaluation, ForwardCache) {
        let x = graph.features.clone();
        let [w1, b1, w2, b2, m1w, m1b, m2w, m2b, c1w, c1b, c2w, c2b] = {
            let p = &self.params;
            [
                &p[0], &p[1], &p[2], &p[3], &p[4], &p[5], &p[6], &p[7], &p[8], &p[9], &p[10],
                &p[11],
            ]
        };
        let s1 = Self::add_bias(graph.adj.spmm(&matmul(&x, w1)), b1);
        let h1 = Self::relu(s1.clone());
        let s2 = Self::add_bias(graph.adj.spmm(&matmul(&h1, w2)), b2);
        let h2 = Self::relu(s2.clone());

        // Actor: gather prune-node rows.
        let d = self.cfg.hidden;
        let k = graph.prune_nodes.len();
        let mut z = Tensor::zeros([k, d]);
        for (row, &node) in graph.prune_nodes.iter().enumerate() {
            z.data_mut()[row * d..(row + 1) * d]
                .copy_from_slice(&h2.data()[node * d..(node + 1) * d]);
        }
        let us = Self::add_bias(matmul(&z, m1w), m1b);
        let u = Self::relu(us.clone());
        let mu_raw = Self::add_bias(matmul(&u, m2w), m2b);
        let mu: Vec<f32> = mu_raw
            .data()
            .iter()
            .map(|&v| self.cfg.s_max * sigmoid(v))
            .collect();

        // Critic: mean-pool node embeddings.
        let n = h2.dims()[0];
        let mut g = Tensor::zeros([1, d]);
        for row in 0..n {
            for j in 0..d {
                g.data_mut()[j] += h2.data()[row * d + j] / n as f32;
            }
        }
        let cs = Self::add_bias(matmul(&g, c1w), c1b);
        let cu = Self::relu(cs.clone());
        let v = Self::add_bias(matmul(&cu, c2w), c2b).data()[0];

        (
            Evaluation { mu, value: v },
            ForwardCache {
                x,
                s1,
                h1,
                s2,
                h2,
                z,
                us,
                u,
                mu_raw,
                cs,
                cu,
                g,
            },
        )
    }

    /// Deterministic policy evaluation: per-layer sparsity means and value.
    pub fn evaluate(&self, graph: &CompGraph) -> Evaluation {
        self.forward(graph).0
    }

    /// Sample a stochastic action (Gaussian around μ, clipped to
    /// `[0, s_max]`).
    pub fn sample_action(&self, graph: &CompGraph, rng: &mut TensorRng) -> (Vec<f32>, Evaluation) {
        let eval = self.evaluate(graph);
        let action: Vec<f32> = eval
            .mu
            .iter()
            .map(|&m| (m + rng.normal(0.0, self.cfg.std)).clamp(0.0, self.cfg.s_max))
            .collect();
        (action, eval)
    }

    /// Gaussian log-probability of `action` under means `mu` (fixed σ),
    /// summed over layers.
    pub fn log_prob(&self, mu: &[f32], action: &[f32]) -> f32 {
        let s2 = self.cfg.std * self.cfg.std;
        mu.iter()
            .zip(action)
            .map(|(&m, &a)| -(a - m) * (a - m) / (2.0 * s2))
            .sum()
    }

    /// One PPO gradient step over a batch of `(graph, action, old_mu,
    /// advantage, return)` tuples. `freeze_gnn` restricts the update to the
    /// MLP heads (online fine-tuning mode). Returns (policy_loss,
    /// value_loss) before the step.
    #[allow(clippy::too_many_arguments)]
    pub fn ppo_step(
        &mut self,
        graphs: &[&CompGraph],
        actions: &[Vec<f32>],
        old_log_probs: &[f32],
        advantages: &[f32],
        returns: &[f32],
        freeze_gnn: bool,
    ) -> (f32, f32) {
        assert_eq!(graphs.len(), actions.len());
        let batch = graphs.len();
        assert!(batch > 0, "empty PPO batch");

        let mut grads: Vec<Tensor> = self
            .params
            .iter()
            .map(|p| Tensor::zeros(p.dims().to_vec()))
            .collect();
        let mut policy_loss = 0.0f32;
        let mut value_loss = 0.0f32;
        let s2 = self.cfg.std * self.cfg.std;
        let inv_b = 1.0 / batch as f32;

        for i in 0..batch {
            let (eval, cache) = self.forward(graphs[i]);
            let new_lp = self.log_prob(&eval.mu, &actions[i]);
            let ratio = (new_lp - old_log_probs[i]).exp();
            let adv = advantages[i];
            let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip);
            let surr1 = ratio * adv;
            let surr2 = clipped * adv;
            policy_loss += -surr1.min(surr2) * inv_b;

            // d(policy loss)/d(ratio): gradient flows only when the
            // unclipped branch is the active minimum.
            let dr = if surr1 <= surr2 { -adv * inv_b } else { 0.0 };
            // dμ_k: dr · r · dlogπ/dμ_k, with dlogπ/dμ = (a − μ)/σ².
            let mut dmu: Vec<f32> = eval
                .mu
                .iter()
                .zip(&actions[i])
                .map(|(&m, &a)| dr * ratio * (a - m) / s2)
                .collect();

            // Value loss 0.5·c_v·(V − R)².
            let verr = eval.value - returns[i];
            value_loss += 0.5 * self.cfg.value_coef * verr * verr * inv_b;
            let dv = self.cfg.value_coef * verr * inv_b;

            self.accumulate_grads(graphs[i], &cache, &mut dmu, dv, &mut grads);
        }

        let mut frozen = vec![false; self.params.len()];
        if freeze_gnn {
            for f in frozen.iter_mut().take(GNN_PARAMS) {
                *f = true;
            }
        }
        self.adam.step(&mut self.params, &grads, &frozen);
        (policy_loss, value_loss)
    }

    /// Backpropagate dμ (per prune layer) and dV into parameter gradients.
    fn accumulate_grads(
        &self,
        graph: &CompGraph,
        cache: &ForwardCache,
        dmu: &mut [f32],
        dv: f32,
        grads: &mut [Tensor],
    ) {
        let d = self.cfg.hidden;
        let n = cache.h2.dims()[0];
        let k = graph.prune_nodes.len();

        // --- Actor head backward ---
        // μ = s_max·σ(μ_raw) ⇒ dμ_raw = dμ·s_max·σ'(μ_raw).
        let mut dmu_raw = Tensor::zeros([k, 1]);
        for (i, dm) in dmu.iter().enumerate() {
            let sg = sigmoid(cache.mu_raw.data()[i]);
            dmu_raw.data_mut()[i] = dm * self.cfg.s_max * sg * (1.0 - sg);
        }
        // μ_raw = U·M2 + m2.
        let d_m2w = matmul_tn(&cache.u, &dmu_raw);
        grads[6].add_assign(&d_m2w).expect("M2 grad");
        grads[7].data_mut()[0] += dmu_raw.sum();
        let mut du = matmul_nt(&dmu_raw, &self.params[6]); // [k, dh]
                                                           // U = relu(Us).
        for (v, &s) in du.data_mut().iter_mut().zip(cache.us.data()) {
            if s <= 0.0 {
                *v = 0.0;
            }
        }
        // Us = Z·M1 + m1.
        let d_m1w = matmul_tn(&cache.z, &du);
        grads[4].add_assign(&d_m1w).expect("M1 grad");
        {
            let gm1b = grads[5].data_mut();
            let dh = self.cfg.mlp_hidden;
            for row in du.data().chunks(dh) {
                for (g, r) in gm1b.iter_mut().zip(row) {
                    *g += r;
                }
            }
        }
        let dz = matmul_nt(&du, &self.params[4]); // [k, d]

        // --- Critic head backward ---
        // V = Cu·C2 + c2.
        let mut dcu = Tensor::zeros([1, self.cfg.mlp_hidden]);
        for (j, v) in dcu.data_mut().iter_mut().enumerate() {
            *v = dv * self.params[10].data()[j];
        }
        {
            let g_c2 = grads[10].data_mut();
            for (j, g) in g_c2.iter_mut().enumerate() {
                *g += dv * cache.cu.data()[j];
            }
            grads[11].data_mut()[0] += dv;
        }
        // Cu = relu(Cs).
        for (v, &s) in dcu.data_mut().iter_mut().zip(cache.cs.data()) {
            if s <= 0.0 {
                *v = 0.0;
            }
        }
        // Cs = g·C1 + c1.
        let d_c1w = matmul_tn(&cache.g, &dcu);
        grads[8].add_assign(&d_c1w).expect("C1 grad");
        grads[9].add_assign(&dcu).expect("c1 grad");
        let dg = matmul_nt(&dcu, &self.params[8]); // [1, d]

        // --- Combine into dH2 ---
        let mut dh2 = Tensor::zeros([n, d]);
        for (row, &node) in graph.prune_nodes.iter().enumerate() {
            for j in 0..d {
                dh2.data_mut()[node * d + j] += dz.data()[row * d + j];
            }
        }
        let inv_n = 1.0 / n as f32;
        for row in 0..n {
            for j in 0..d {
                dh2.data_mut()[row * d + j] += dg.data()[j] * inv_n;
            }
        }

        // --- GNN layer 2 backward ---
        // H2 = relu(S2), S2 = A·(H1·W2) + b2.
        let mut ds2 = dh2;
        for (v, &s) in ds2.data_mut().iter_mut().zip(cache.s2.data()) {
            if s <= 0.0 {
                *v = 0.0;
            }
        }
        {
            let gb2 = grads[3].data_mut();
            for row in ds2.data().chunks(d) {
                for (g, r) in gb2.iter_mut().zip(row) {
                    *g += r;
                }
            }
        }
        let at_ds2 = graph.adj.spmm_t(&ds2);
        let d_w2 = matmul_tn(&cache.h1, &at_ds2);
        grads[2].add_assign(&d_w2).expect("W2 grad");
        let mut dh1 = matmul_nt(&at_ds2, &self.params[2]);

        // --- GNN layer 1 backward ---
        for (v, &s) in dh1.data_mut().iter_mut().zip(cache.s1.data()) {
            if s <= 0.0 {
                *v = 0.0;
            }
        }
        {
            let gb1 = grads[1].data_mut();
            for row in dh1.data().chunks(d) {
                for (g, r) in gb1.iter_mut().zip(row) {
                    *g += r;
                }
            }
        }
        let at_ds1 = graph.adj.spmm_t(&dh1);
        let d_w1 = matmul_tn(&cache.x, &at_ds1);
        grads[0].add_assign(&d_w1).expect("W1 grad");
    }

    /// Set the Adam learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.adam.set_lr(lr);
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_graph::extract;
    use spatl_models::{ModelConfig, ModelKind};

    fn graph() -> CompGraph {
        extract(&ModelConfig::cifar(ModelKind::ResNet20).build())
    }

    #[test]
    fn outputs_are_in_range() {
        let g = graph();
        let agent = ActorCritic::new(AgentConfig::default(), 1);
        let eval = agent.evaluate(&g);
        assert_eq!(eval.mu.len(), g.prune_nodes.len());
        assert!(eval.mu.iter().all(|&m| (0.0..=0.8).contains(&m)));
        assert!(eval.value.is_finite());
    }

    #[test]
    fn agent_is_tiny() {
        // Paper: agent memory consumption ~26 KB. Ours must be the same
        // order of magnitude.
        let agent = ActorCritic::new(AgentConfig::default(), 1);
        assert!(
            agent.param_bytes() < 64 * 1024,
            "{} bytes",
            agent.param_bytes()
        );
    }

    #[test]
    fn sampling_is_stochastic_but_seeded() {
        let g = graph();
        let agent = ActorCritic::new(AgentConfig::default(), 1);
        let (a1, _) = agent.sample_action(&g, &mut TensorRng::seed_from(5));
        let (a2, _) = agent.sample_action(&g, &mut TensorRng::seed_from(5));
        let (a3, _) = agent.sample_action(&g, &mut TensorRng::seed_from(6));
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
        assert!(a1.iter().all(|&a| (0.0..=0.8).contains(&a)));
    }

    #[test]
    fn log_prob_peaks_at_mean() {
        let agent = ActorCritic::new(AgentConfig::default(), 1);
        let mu = vec![0.4, 0.4];
        let at_mean = agent.log_prob(&mu, &[0.4, 0.4]);
        let off_mean = agent.log_prob(&mu, &[0.6, 0.2]);
        assert!(at_mean > off_mean);
    }

    #[test]
    fn ppo_step_increases_prob_of_high_advantage_action() {
        let g = graph();
        let mut agent = ActorCritic::new(AgentConfig::default(), 2);
        let eval0 = agent.evaluate(&g);
        // Pick a target action displaced from μ and reward it.
        let action: Vec<f32> = eval0.mu.iter().map(|&m| (m + 0.2).min(0.8)).collect();
        let old_lp = agent.log_prob(&eval0.mu, &action);
        for _ in 0..30 {
            agent.ppo_step(
                &[&g],
                std::slice::from_ref(&action),
                &[old_lp],
                &[1.0],
                &[1.0],
                false,
            );
        }
        let eval1 = agent.evaluate(&g);
        let lp0 = agent.log_prob(&eval0.mu, &action);
        let lp1 = agent.log_prob(&eval1.mu, &action);
        assert!(lp1 > lp0, "log prob did not increase: {lp1} vs {lp0}");
    }

    #[test]
    fn critic_regresses_towards_returns() {
        let g = graph();
        let mut agent = ActorCritic::new(AgentConfig::default(), 3);
        let eval = agent.evaluate(&g);
        let action = eval.mu.clone();
        let old_lp = agent.log_prob(&eval.mu, &action);
        let target = 0.7f32;
        for _ in 0..200 {
            agent.ppo_step(
                &[&g],
                std::slice::from_ref(&action),
                &[old_lp],
                &[0.0],
                &[target],
                false,
            );
        }
        let v = agent.evaluate(&g).value;
        assert!((v - target).abs() < 0.15, "value {v} target {target}");
    }

    #[test]
    fn frozen_gnn_leaves_gnn_params_untouched() {
        let g = graph();
        let mut agent = ActorCritic::new(AgentConfig::default(), 4);
        let before: Vec<Tensor> = agent.params()[..GNN_PARAMS].to_vec();
        let eval = agent.evaluate(&g);
        let action: Vec<f32> = eval.mu.iter().map(|&m| (m + 0.1).min(0.8)).collect();
        let old_lp = agent.log_prob(&eval.mu, &action);
        agent.ppo_step(&[&g], &[action], &[old_lp], &[1.0], &[0.5], true);
        for (a, b) in agent.params()[..GNN_PARAMS].iter().zip(&before) {
            assert_eq!(a.data(), b.data(), "GNN params changed despite freeze");
        }
        // Heads did move.
        assert!(
            agent.params()[4..]
                .iter()
                .zip(agent.params()[4..].iter())
                .count()
                > 0
        );
    }

    #[test]
    fn gradcheck_policy_head_via_finite_difference() {
        // Check dμ/dparam for one MLP-head weight using the PPO surrogate
        // with advantage 1 and ratio ≈ 1 (old_lp = current lp at action=μ+δ).
        let g = graph();
        let agent = ActorCritic::new(AgentConfig::default(), 5);
        let eval = agent.evaluate(&g);
        let action: Vec<f32> = eval.mu.iter().map(|&m| (m + 0.05).min(0.8)).collect();
        let old_lp = agent.log_prob(&eval.mu, &action);

        // Numeric: L(θ) = -ratio(θ)·adv at adv=1.
        let loss_of = |agent: &ActorCritic| {
            let e = agent.evaluate(&g);
            let lp = agent.log_prob(&e.mu, &action);
            -((lp - old_lp).exp())
        };
        // Analytic via one ppo_step on a clone with huge clip (no clipping),
        // reading the parameter delta: Adam normalises magnitude, so instead
        // compare the *sign* of movement for a few head weights with the
        // finite-difference gradient sign.
        let mut stepped = agent.clone();
        let mut cfg = stepped.cfg;
        cfg.clip = 10.0;
        stepped.cfg = cfg;
        stepped.ppo_step(
            &[&g],
            std::slice::from_ref(&action),
            &[old_lp],
            &[1.0],
            &[eval.value],
            false,
        );

        let eps = 1e-3;
        let mut checked = 0;
        // Scan for live units instead of probing fixed indices: which
        // units are dead depends on the RNG stream behind initialization.
        let head_len = agent.params()[6].data().len();
        for wi in 0..head_len.min(64) {
            if checked >= 3 {
                break;
            }
            let mut plus = agent.clone();
            plus.perturb(6, wi, eps);
            let mut minus = agent.clone();
            minus.perturb(6, wi, -eps);
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            if fd.abs() < 1e-5 {
                continue; // dead unit, skip
            }
            let moved = stepped.params()[6].data()[wi] - agent.params()[6].data()[wi];
            // Adam moves against the gradient: sign(moved) == -sign(fd).
            assert!((moved < 0.0) == (fd > 0.0), "w[{wi}] fd={fd} moved={moved}");
            checked += 1;
        }
        assert!(checked > 0, "all probed units dead");
    }

    impl ActorCritic {
        fn perturb(&mut self, pi: usize, wi: usize, eps: f32) {
            self.params[pi].data_mut()[wi] += eps;
        }
    }
}
