//! PPO experience types and batched updates.

use crate::{ActorCritic, CompGraphRef};
use serde::{Deserialize, Serialize};

/// One stored interaction: the episodes of the pruning task are single-step
/// (state → action → reward), matching the paper's one-shot selection.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Environment state (the computational graph).
    pub graph: CompGraphRef,
    /// Sampled action (per-layer sparsities, pre-projection).
    pub action: Vec<f32>,
    /// Log-probability of `action` under the behaviour policy.
    pub log_prob: f32,
    /// Critic value at collection time.
    pub value: f32,
    /// Observed reward (validation accuracy).
    pub reward: f32,
}

/// Statistics of one PPO update phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PpoStats {
    /// Mean policy surrogate loss over epochs.
    pub policy_loss: f32,
    /// Mean value loss over epochs.
    pub value_loss: f32,
    /// Mean advantage of the batch.
    pub mean_advantage: f32,
    /// Mean reward of the batch.
    pub mean_reward: f32,
}

/// Run `epochs` PPO epochs over a batch of transitions.
///
/// Advantages are `reward − value` (single-step episodes ⇒ the return *is*
/// the reward), normalised across the batch when it has more than one
/// element — the standard variance-reduction trick.
pub fn ppo_update(
    agent: &mut ActorCritic,
    batch: &[Transition],
    epochs: usize,
    freeze_gnn: bool,
) -> PpoStats {
    assert!(!batch.is_empty(), "PPO update requires transitions");
    let rewards: Vec<f32> = batch.iter().map(|t| t.reward).collect();
    let mut advantages: Vec<f32> = batch.iter().map(|t| t.reward - t.value).collect();
    if batch.len() > 1 {
        let mean = advantages.iter().sum::<f32>() / advantages.len() as f32;
        let var = advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / advantages.len() as f32;
        let std = var.sqrt().max(1e-6);
        for a in advantages.iter_mut() {
            *a = (*a - mean) / std;
        }
    }
    let graphs: Vec<&spatl_graph::CompGraph> = batch.iter().map(|t| t.graph.as_ref()).collect();
    let actions: Vec<Vec<f32>> = batch.iter().map(|t| t.action.clone()).collect();
    let old_lps: Vec<f32> = batch.iter().map(|t| t.log_prob).collect();

    let mut stats = PpoStats {
        mean_advantage: advantages.iter().sum::<f32>() / advantages.len() as f32,
        mean_reward: rewards.iter().sum::<f32>() / rewards.len() as f32,
        ..Default::default()
    };
    for _ in 0..epochs {
        let (pl, vl) = agent.ppo_step(
            &graphs,
            &actions,
            &old_lps,
            &advantages,
            &rewards,
            freeze_gnn,
        );
        stats.policy_loss += pl / epochs as f32;
        stats.value_loss += vl / epochs as f32;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgentConfig;
    use spatl_graph::extract;
    use spatl_models::{ModelConfig, ModelKind};
    use std::sync::Arc;

    #[test]
    fn update_runs_and_reports() {
        let g = Arc::new(extract(&ModelConfig::cifar(ModelKind::ResNet20).build()));
        let mut agent = ActorCritic::new(AgentConfig::default(), 1);
        let eval = agent.evaluate(&g);
        let t = Transition {
            graph: g.clone(),
            action: eval.mu.clone(),
            log_prob: agent.log_prob(&eval.mu, &eval.mu),
            value: eval.value,
            reward: 0.5,
        };
        let stats = ppo_update(&mut agent, &[t.clone(), t], 3, false);
        assert!(stats.policy_loss.is_finite());
        assert!(stats.value_loss.is_finite());
        assert!((stats.mean_reward - 0.5).abs() < 1e-6);
    }

    #[test]
    fn advantages_are_normalised_in_batches() {
        let g = Arc::new(extract(&ModelConfig::cifar(ModelKind::ResNet20).build()));
        let mut agent = ActorCritic::new(AgentConfig::default(), 2);
        let eval = agent.evaluate(&g);
        let lp = agent.log_prob(&eval.mu, &eval.mu);
        let mk = |reward: f32| Transition {
            graph: g.clone(),
            action: eval.mu.clone(),
            log_prob: lp,
            value: 0.0,
            reward,
        };
        let stats = ppo_update(&mut agent, &[mk(0.1), mk(0.9)], 1, false);
        // Normalised advantages average to ~0.
        assert!(stats.mean_advantage.abs() < 1e-5);
    }
}
