//! The salient-parameter-selection agent (§IV-B of the paper).
//!
//! A GNN encoder embeds the encoder's simplified computational graph; an
//! MLP head reads out a sparsity ratio per prunable layer (the *action*,
//! Eq. 5-6); a critic head estimates state value. The agent is trained with
//! PPO (Eq. 8) on the network-pruning task — reward is the masked model's
//! validation accuracy (Eq. 7) — then transferred to new encoders by
//! fine-tuning **only the MLP head**, exactly as the paper customises the
//! pre-trained agent on each client.

mod adam;
mod env;
mod net;
mod ppo;
mod train;

pub use adam::AdamState;

/// Shared reference to an environment state; transitions collected within
/// one round share the same graph.
pub type CompGraphRef = std::sync::Arc<spatl_graph::CompGraph>;
pub use env::{project_to_budget, EnvOutcome, PruningEnv};
pub use net::{ActorCritic, AgentConfig, Evaluation};
pub use ppo::{PpoStats, Transition};
pub use train::{finetune_agent, pretrain_agent, TrainLog};
