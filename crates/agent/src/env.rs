//! The network-pruning RL environment (Algorithm 1 of the paper).

use serde::{Deserialize, Serialize};
use spatl_data::Dataset;
use spatl_graph::{extract, CompGraph};
use spatl_models::SplitModel;
use spatl_pruning::{apply_sparsities, Criterion};

/// Outcome of applying an action in the pruning environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvOutcome {
    /// Reward: validation accuracy of the masked sub-network (Eq. 7).
    pub reward: f32,
    /// FLOPs of the sub-network relative to the dense model.
    pub flops_ratio: f32,
    /// The sparsities actually applied (after budget projection).
    pub applied: Vec<f32>,
}

/// RL environment: state is the encoder's computational graph, actions are
/// per-layer sparsities, reward is masked validation accuracy subject to a
/// FLOPs constraint.
///
/// Algorithm 1 loops "while size(E') does not satisfy constraints" —
/// [`project_to_budget`] realises that loop by scaling the action up until
/// the constraint holds, so every evaluated sub-network is feasible.
#[derive(Debug, Clone)]
pub struct PruningEnv {
    /// The model being pruned (weights matter: reward is its accuracy).
    pub model: SplitModel,
    /// Validation set used for the reward.
    pub val: Dataset,
    /// Maximum allowed `flops / flops_dense`.
    pub target_flops_ratio: f32,
    /// Saliency criterion used to turn ratios into channel masks.
    pub criterion: Criterion,
}

impl PruningEnv {
    /// Create an environment.
    pub fn new(model: SplitModel, val: Dataset, target_flops_ratio: f32) -> Self {
        PruningEnv {
            model,
            val,
            target_flops_ratio,
            criterion: Criterion::L2,
        }
    }

    /// The environment state: the encoder's simplified computational graph.
    pub fn graph(&self) -> CompGraph {
        extract(&self.model)
    }

    /// Apply an action (per-layer sparsities), projecting it onto the FLOPs
    /// budget first, and return the reward.
    pub fn step(&self, sparsities: &[f32]) -> EnvOutcome {
        let applied = project_to_budget(
            &self.model,
            sparsities,
            self.target_flops_ratio,
            self.criterion,
        );
        let mut candidate = self.model.clone();
        apply_sparsities(&mut candidate, &applied, self.criterion);
        let flops_ratio = candidate.flops() as f32 / self.model.flops_dense() as f32;
        let batch = self.val.as_batch();
        let reward = candidate.evaluate(&batch.images, &batch.labels);
        EnvOutcome {
            reward,
            flops_ratio,
            applied,
        }
    }

    /// Apply an action *to the stored model* (after the search picks the
    /// best action, SPATL keeps the masks for upload selection).
    pub fn commit(&mut self, sparsities: &[f32]) -> EnvOutcome {
        let out = self.step(sparsities);
        apply_sparsities(&mut self.model, &out.applied, self.criterion);
        out
    }
}

/// Scale sparsities up (towards `s=0.95`) until the masked model meets the
/// FLOPs budget. If the raw action already satisfies it, it is returned
/// unchanged. Uses bisection on a blend factor, at most 8 model profiles.
pub fn project_to_budget(
    model: &SplitModel,
    sparsities: &[f32],
    target_flops_ratio: f32,
    criterion: Criterion,
) -> Vec<f32> {
    let dense = model.flops_dense() as f32;
    let ratio_of = |s: &[f32]| -> f32 {
        let mut m = model.clone();
        apply_sparsities(&mut m, s, criterion);
        m.flops() as f32 / dense
    };
    if ratio_of(sparsities) <= target_flops_ratio {
        return sparsities.to_vec();
    }
    // Blend towards the max-sparsity action: s(t) = (1−t)·s + t·0.95.
    let blend = |t: f32| -> Vec<f32> {
        sparsities
            .iter()
            .map(|&s| (1.0 - t) * s + t * 0.95)
            .collect()
    };
    let (mut lo, mut hi) = (0.0f32, 1.0f32);
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        if ratio_of(&blend(mid)) <= target_flops_ratio {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    blend(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_data::{synth_cifar10, SynthConfig};
    use spatl_models::{ModelConfig, ModelKind};

    fn env() -> PruningEnv {
        let model = ModelConfig::cifar(ModelKind::ResNet20).build();
        let val = synth_cifar10(&SynthConfig::cifar10_like(), 30, 1);
        PruningEnv::new(model, val, 0.6)
    }

    #[test]
    fn step_meets_budget() {
        let e = env();
        let k = e.model.prune_points.len();
        let out = e.step(&vec![0.0; k]);
        assert!(out.flops_ratio <= 0.62, "ratio {}", out.flops_ratio);
        assert!((0.0..=1.0).contains(&out.reward));
    }

    #[test]
    fn feasible_action_unchanged() {
        let e = env();
        let k = e.model.prune_points.len();
        let action = vec![0.9f32; k];
        let projected = project_to_budget(&e.model, &action, 0.9, Criterion::L2);
        assert_eq!(projected, action);
    }

    #[test]
    fn commit_applies_masks_to_model() {
        let mut e = env();
        let k = e.model.prune_points.len();
        e.commit(&vec![0.5; k]);
        assert!(e.model.flops() < e.model.flops_dense());
    }

    #[test]
    fn graph_matches_prune_points() {
        let e = env();
        let g = e.graph();
        assert_eq!(g.prune_nodes.len(), e.model.prune_points.len());
    }
}
