//! `spatl-cli` — command-line front end for the SPATL reproduction.
//!
//! ```text
//! spatl-cli run       --algorithm spatl --model resnet20 --clients 10 --rounds 20
//! spatl-cli pretrain  --model resnet56 --rounds 30 --out agent.json
//! spatl-cli prune     --model resnet56 --budget 0.6 [--agent agent.json]
//! spatl-cli transfer  --encoder run.json --samples 300
//! ```
//!
//! Arguments are `--key value` pairs; unknown keys are rejected. Every
//! command prints a human-readable summary and (with `--out`) writes a
//! JSON artefact.

use spatl::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --key, got '{key}'"));
        };
        let Some(value) = it.next() else {
            return Err(format!("missing value for --{name}"));
        };
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    map: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: '{v}'")),
    }
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "resnet20" => ModelKind::ResNet20,
        "resnet32" => ModelKind::ResNet32,
        "resnet56" => ModelKind::ResNet56,
        "resnet18" => ModelKind::ResNet18,
        "vgg11" => ModelKind::Vgg11,
        "cnn2" => ModelKind::Cnn2,
        other => return Err(format!("unknown model '{other}'")),
    })
}

fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "spatl" => Algorithm::Spatl(SpatlOptions::default()),
        "fedavg" => Algorithm::FedAvg,
        "fedprox" => Algorithm::FedProx { mu: 0.01 },
        "scaffold" => Algorithm::Scaffold,
        "fednova" => Algorithm::FedNova,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn cmd_run(map: HashMap<String, String>) -> Result<(), String> {
    let algorithm = parse_algorithm(&get(&map, "algorithm", "spatl".to_string())?)?;
    let model = parse_model(&get(&map, "model", "resnet20".to_string())?)?;
    let clients: usize = get(&map, "clients", 10)?;
    let rounds: usize = get(&map, "rounds", 10)?;
    let samples: usize = get(&map, "samples-per-client", 80)?;
    let epochs: usize = get(&map, "local-epochs", 2)?;
    let beta: f64 = get(&map, "beta", 0.5)?;
    let ratio: f32 = get(&map, "sample-ratio", 1.0)?;
    let seed: u64 = get(&map, "seed", 0)?;

    println!(
        "running {} / {} — {clients} clients × {rounds} rounds (β={beta}, ratio={ratio})",
        algorithm.name(),
        model.name()
    );
    let mut sim = ExperimentBuilder::new(algorithm)
        .model(model)
        .clients(clients)
        .sample_ratio(ratio)
        .samples_per_client(samples)
        .rounds(rounds)
        .local_epochs(epochs)
        .beta(beta)
        .seed(seed)
        .build();
    for _ in 0..rounds {
        let r = sim.run_round();
        println!(
            "round {:>3}: acc {:5.1}%  comm {:8.2} MB  upload-keep {:4.0}%",
            r.round + 1,
            r.mean_acc * 100.0,
            r.cumulative_bytes as f64 / 1e6,
            r.mean_keep_ratio * 100.0
        );
    }
    let result = sim.result();
    println!(
        "\nbest {:.1}% | final {:.1}% | {:.2} MB total",
        result.best_acc() * 100.0,
        result.final_acc() * 100.0,
        result.total_bytes() as f64 / 1e6
    );
    if let Some(out) = map.get("out") {
        spatl::save_result(&result, out).map_err(|e| e.to_string())?;
        println!("results written to {out}");
    }
    Ok(())
}

fn cmd_pretrain(map: HashMap<String, String>) -> Result<(), String> {
    let model_kind = parse_model(&get(&map, "model", "resnet56".to_string())?)?;
    let rounds: usize = get(&map, "rounds", 20)?;
    let budget: f32 = get(&map, "budget", 0.7)?;
    let seed: u64 = get(&map, "seed", 0)?;

    let synth = SynthConfig {
        noise_std: 1.0,
        ..SynthConfig::cifar10_like()
    };
    let val = synth_cifar10(&synth, 120, seed ^ 1);
    let model = ModelConfig::cifar(model_kind).with_seed(seed).build();
    let env = PruningEnv::new(model, val, budget);
    let mut agent = ActorCritic::new(AgentConfig::default(), seed);
    let mut rng = TensorRng::seed_from(seed ^ 2);
    println!(
        "pre-training agent on {} pruning ({rounds} rounds)…",
        model_kind.name()
    );
    let log = pretrain_agent(&mut agent, &env, rounds, 4, 4, &mut rng);
    for (i, r) in log.rewards.iter().enumerate() {
        println!("update {:>3}: mean reward {r:.3}", i + 1);
    }
    if let Some(out) = map.get("out") {
        spatl::save_agent(&agent, out).map_err(|e| e.to_string())?;
        println!("agent ({} KB) written to {out}", agent.param_bytes() / 1024);
    }
    Ok(())
}

fn cmd_prune(map: HashMap<String, String>) -> Result<(), String> {
    let model_kind = parse_model(&get(&map, "model", "resnet56".to_string())?)?;
    let budget: f32 = get(&map, "budget", 0.6)?;
    let seed: u64 = get(&map, "seed", 0)?;

    let mut model = ModelConfig::cifar(model_kind).with_seed(seed).build();
    let action = match map.get("agent") {
        Some(path) => {
            let agent = spatl::load_agent(path).map_err(|e| e.to_string())?;
            agent.evaluate(&extract(&model)).mu
        }
        None => vec![0.0; model.prune_points.len()],
    };
    let applied = spatl::agent::project_to_budget(&model, &action, budget, Criterion::L2);
    apply_sparsities(&mut model, &applied, Criterion::L2);
    let ratio = model.flops() as f64 / model.flops_dense() as f64;
    println!(
        "{}: FLOPs {:.1}% of dense ({} → {} FLOPs)",
        model_kind.name(),
        ratio * 100.0,
        model.flops_dense(),
        model.flops()
    );
    for (p, s) in model.prune_points.iter().zip(&applied) {
        println!("  {:<24} sparsity {:.2}", p.name, s);
    }
    if let Some(out) = map.get("out") {
        spatl::save_model(&model, out).map_err(|e| e.to_string())?;
        println!("pruned model written to {out}");
    }
    Ok(())
}

fn cmd_transfer(map: HashMap<String, String>) -> Result<(), String> {
    let samples: usize = get(&map, "samples", 200)?;
    let epochs: usize = get(&map, "epochs", 6)?;
    let seed: u64 = get(&map, "seed", 0)?;

    let synth = SynthConfig {
        noise_std: 1.2,
        ..SynthConfig::cifar10_like()
    };
    let train = synth_cifar10(&synth, samples, seed ^ 0xAB);
    let val = synth_cifar10(&synth, samples / 2, seed ^ 0xCD);

    let mut model = match map.get("model-file") {
        Some(path) => spatl::load_model(path).map_err(|e| e.to_string())?,
        None => ModelConfig::cifar(ModelKind::ResNet20)
            .with_seed(seed)
            .build(),
    };
    let before = {
        let b = val.as_batch();
        model.evaluate(&b.images, &b.labels)
    };
    adapt_predictor(&mut model, &train, epochs, 0.05, seed);
    let after = {
        let b = val.as_batch();
        model.evaluate(&b.images, &b.labels)
    };
    println!(
        "predictor-only adaptation: {:.1}% → {:.1}%",
        before * 100.0,
        after * 100.0
    );
    Ok(())
}

const USAGE: &str = "usage: spatl-cli <run|pretrain|prune|transfer> [--key value]…
  run       --algorithm spatl|fedavg|fedprox|scaffold|fednova --model resnet20|resnet32|resnet56|resnet18|vgg11|cnn2
            --clients N --rounds N --samples-per-client N --local-epochs N --beta F --sample-ratio F --seed N [--out FILE]
  pretrain  --model resnet56 --rounds N --budget F --seed N [--out FILE]
  prune     --model resnet56 --budget F [--agent FILE] [--out FILE]
  transfer  [--model-file FILE] --samples N --epochs N --seed N";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = parse_args(rest).and_then(|map| match cmd.as_str() {
        "run" => cmd_run(map),
        "pretrain" => cmd_pretrain(map),
        "prune" => cmd_prune(map),
        "transfer" => cmd_transfer(map),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
