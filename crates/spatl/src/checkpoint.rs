//! Checkpointing: persist and restore agents, models and run results.
//!
//! The paper's workflow pre-trains the selection agent once (on a
//! network-pruning task) and ships it to clients; this module provides the
//! serialisation layer for that hand-off, plus model and result
//! checkpoints for long experiment campaigns.

use serde::{de::DeserializeOwned, Serialize};
use spatl_agent::ActorCritic;
use spatl_fl::{GlobalState, RunResult};
use spatl_models::SplitModel;
use std::io;
use std::path::Path;

/// Errors raised by checkpoint operations.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(io::Error),
    /// (De)serialisation error.
    Codec(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Codec(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), CheckpointError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(io::BufWriter::new(file), value)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, CheckpointError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(io::BufReader::new(file))?)
}

/// Persist a pre-trained selection agent.
pub fn save_agent(agent: &ActorCritic, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    save(agent, path.as_ref())
}

/// Restore a selection agent saved with [`save_agent`].
pub fn load_agent(path: impl AsRef<Path>) -> Result<ActorCritic, CheckpointError> {
    load(path.as_ref())
}

/// Persist a model (encoder + predictor + masks).
///
/// Cached activations are dropped before writing.
pub fn save_model(model: &SplitModel, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut clean = model.clone();
    clean.clear_caches();
    save(&clean, path.as_ref())
}

/// Restore a model saved with [`save_model`].
pub fn load_model(path: impl AsRef<Path>) -> Result<SplitModel, CheckpointError> {
    load(path.as_ref())
}

/// Persist the server's [`GlobalState`] — shared parameters, SCAFFOLD /
/// SPATL control variates, FedNova momentum and batch-norm buffers — so a
/// campaign can stop after any round and resume from the exact aggregation
/// state (bit-identical; regression-tested in this module).
pub fn save_global(global: &GlobalState, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    save(global, path.as_ref())
}

/// Restore server state saved with [`save_global`]; assign it to
/// [`Simulation::global`](spatl_fl::Simulation) before resuming rounds.
pub fn load_global(path: impl AsRef<Path>) -> Result<GlobalState, CheckpointError> {
    load(path.as_ref())
}

/// Persist a federated run's results.
pub fn save_result(result: &RunResult, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    save(result, path.as_ref())
}

/// Restore results saved with [`save_result`].
pub fn load_result(path: impl AsRef<Path>) -> Result<RunResult, CheckpointError> {
    load(path.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_agent::AgentConfig;
    use spatl_models::{ModelConfig, ModelKind};
    use spatl_tensor::TensorRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spatl-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn agent_round_trips_bitwise() {
        let agent = ActorCritic::new(AgentConfig::default(), 7);
        let path = tmp("agent.json");
        save_agent(&agent, &path).unwrap();
        let loaded = load_agent(&path).unwrap();
        for (a, b) in agent.params().iter().zip(loaded.params()) {
            assert_eq!(a.data(), b.data());
        }
        // The restored agent produces identical actions.
        let model = ModelConfig::cifar(ModelKind::ResNet20).build();
        let g = spatl_graph::extract(&model);
        assert_eq!(agent.evaluate(&g).mu, loaded.evaluate(&g).mu);
    }

    #[test]
    fn model_round_trips_with_masks() {
        let mut model = ModelConfig::cifar(ModelKind::ResNet20).with_seed(3).build();
        let ch = model.prune_points[0].out_channels;
        let mut mask = vec![1.0; ch];
        mask[0] = 0.0;
        model.set_mask(0, mask);
        // Exercise forward so caches exist (they must not be serialised).
        let mut rng = TensorRng::seed_from(1);
        let x = rng.normal_tensor([1, 3, 16, 16], 0.0, 1.0);
        model.forward(&x, true);

        let path = tmp("model.json");
        save_model(&model, &path).unwrap();
        let mut loaded = load_model(&path).unwrap();
        assert_eq!(loaded.encoder.to_flat(), model.encoder.to_flat());
        assert_eq!(loaded.keep_ratios(), model.keep_ratios());
        // The restored model computes the same function.
        let y1 = model.forward(&x, false);
        let y2 = loaded.forward(&x, false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn global_state_round_trips_bitwise_and_resumes() {
        use crate::experiment::ExperimentBuilder;
        use spatl_fl::Algorithm;

        // SCAFFOLD populates the control variate; the model's batch-norm
        // layers populate `buffers` — the two pieces of server state beyond
        // the shared vector that a resume must not lose.
        let build = || {
            ExperimentBuilder::new(Algorithm::Scaffold)
                .clients(2)
                .samples_per_client(10)
                .rounds(2)
                .local_epochs(1)
                .seed(11)
                .build()
        };
        let mut sim = build();
        sim.run_round();
        assert!(
            sim.global.control.iter().any(|&c| c != 0.0),
            "round must move the control variate"
        );

        let path = tmp("global.json");
        save_global(&sim.global, &path).unwrap();
        let loaded = load_global(&path).unwrap();
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&loaded.shared), bits(&sim.global.shared));
        assert_eq!(bits(&loaded.control), bits(&sim.global.control));
        assert_eq!(bits(&loaded.momentum), bits(&sim.global.momentum));
        assert_eq!(bits(&loaded.buffers), bits(&sim.global.buffers));

        // A fresh simulation that adopts the checkpoint replays the next
        // round bit-identically to the original continuing in-process.
        // (Client-side state is re-derived: SCAFFOLD client controls are
        // maintained against the broadcast state, and round randomness is
        // seeded by (seed, round).)
        let mut resumed = build();
        resumed.run_round(); // advance client state + round RNG in lockstep
        resumed.global = loaded;
        let a = sim.run_round();
        let b = resumed.run_round();
        assert_eq!(bits(&sim.global.shared), bits(&resumed.global.shared));
        assert_eq!(a.mean_acc.to_bits(), b.mean_acc.to_bits());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_agent(tmp("does-not-exist.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn corrupt_file_is_codec_error() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_agent(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Codec(_)));
    }
}
