//! High-level experiment builder used by examples and the bench harness.

use serde::{Deserialize, Serialize};
use spatl_data::{dirichlet_partition, synth_cifar10, synth_femnist, Dataset, SynthConfig};
use spatl_fl::{
    AdversaryPlan, AggregatorKind, Algorithm, ChaosPlan, ChurnPlan, FaultPlan, FlConfig, RunResult,
    ScreenPolicy, Simulation,
};
use spatl_models::{ModelConfig, ModelKind};
use spatl_tensor::TensorRng;

/// Which synthetic task to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// CIFAR-10-like (10 classes, 3 channels) with Dirichlet label skew —
    /// the Non-IID benchmark setting of the paper.
    CifarLike,
    /// FEMNIST-like (62 classes, 1 channel) with per-writer shards — the
    /// LEAF setting.
    FemnistLike,
}

/// Builder wiring data synthesis, Non-IID partitioning, model construction
/// and the federated simulator into one call.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentBuilder {
    algorithm: Algorithm,
    model: ModelKind,
    dataset: DatasetKind,
    n_clients: usize,
    sample_ratio: f32,
    rounds: usize,
    local_epochs: usize,
    batch_size: usize,
    lr: f32,
    beta: f64,
    samples_per_client: usize,
    noise_std: Option<f32>,
    width_mult: f32,
    seed: u64,
    faults: Option<FaultPlan>,
    adversary: Option<AdversaryPlan>,
    screen: Option<ScreenPolicy>,
    aggregator: AggregatorKind,
    chaos: Option<ChaosPlan>,
    churn: Option<ChurnPlan>,
}

impl ExperimentBuilder {
    /// Start building an experiment for the given algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        ExperimentBuilder {
            algorithm,
            model: ModelKind::ResNet20,
            dataset: DatasetKind::CifarLike,
            n_clients: 10,
            sample_ratio: 1.0,
            rounds: 10,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.05,
            beta: 0.5,
            samples_per_client: 80,
            noise_std: None,
            width_mult: 0.25,
            seed: 0,
            faults: None,
            adversary: None,
            screen: None,
            aggregator: AggregatorKind::WeightedMean,
            chaos: None,
            churn: None,
        }
    }

    /// Architecture to train (default ResNet-20).
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Task (default CIFAR-10-like).
    pub fn dataset(mut self, dataset: DatasetKind) -> Self {
        self.dataset = dataset;
        self
    }

    /// Number of clients (default 10).
    pub fn clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    /// Fraction of clients sampled per round (default 1.0).
    pub fn sample_ratio(mut self, r: f32) -> Self {
        self.sample_ratio = r;
        self
    }

    /// Communication rounds (default 10).
    pub fn rounds(mut self, r: usize) -> Self {
        self.rounds = r;
        self
    }

    /// Local epochs per round (default 2; paper uses 10).
    pub fn local_epochs(mut self, e: usize) -> Self {
        self.local_epochs = e;
        self
    }

    /// Local batch size (default 16).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Local learning rate (default 0.05).
    pub fn lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Dirichlet concentration β for the label-skew partition (default 0.5,
    /// as in the paper; ignored for FEMNIST-like data).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Samples per client (default 80).
    pub fn samples_per_client(mut self, n: usize) -> Self {
        self.samples_per_client = n;
        self
    }

    /// Synthetic-noise level controlling task difficulty. Defaults are
    /// per-dataset (2.5 for CIFAR-like, 0.8 for the 62-class FEMNIST-like
    /// task) — calibrated so accuracy curves span the paper's dynamic range
    /// instead of saturating or flat-lining; see EXPERIMENTS.md.
    pub fn noise_std(mut self, s: f32) -> Self {
        self.noise_std = Some(s);
        self
    }

    /// Model width multiplier (default 0.25).
    pub fn width_mult(mut self, w: f32) -> Self {
        self.width_mult = w;
        self
    }

    /// Master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject faults into every round of the run (default: none). See
    /// [`FaultPlan`] and DESIGN.md §8 for the failure model.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Make a fraction of the clients Byzantine (default: all honest). See
    /// [`AdversaryPlan`] and DESIGN.md §9 for the threat model.
    pub fn adversary(mut self, plan: AdversaryPlan) -> Self {
        self.adversary = Some(plan);
        self
    }

    /// Screen decoded uploads server-side before aggregation (default:
    /// trust every decoded upload). See [`ScreenPolicy`].
    pub fn screen(mut self, policy: ScreenPolicy) -> Self {
        self.screen = Some(policy);
        self
    }

    /// Aggregation rule the server applies (default
    /// [`AggregatorKind::WeightedMean`], each algorithm's published rule).
    pub fn aggregator(mut self, kind: AggregatorKind) -> Self {
        self.aggregator = kind;
        self
    }

    /// Seeded transport chaos for the networked runtime (default: none).
    /// Part of the session fingerprint — every endpoint of a run must be
    /// built with the same plan. See [`ChaosPlan`] and DESIGN.md §14.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Trace-driven client churn: cohorts are sampled from the clients
    /// the availability model has online each round (default: everyone
    /// always available). See [`ChurnPlan`] and DESIGN.md §14.
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = Some(plan);
        self
    }

    /// Materialise the simulation without running it.
    pub fn build(self) -> Simulation {
        let mut fl = FlConfig::new(self.algorithm);
        fl.n_clients = self.n_clients;
        fl.sample_ratio = self.sample_ratio;
        fl.rounds = self.rounds;
        fl.local_epochs = self.local_epochs;
        fl.batch_size = self.batch_size;
        fl.lr = self.lr;
        fl.seed = self.seed;
        fl.faults = self.faults;
        fl.adversary = self.adversary;
        fl.screen = self.screen;
        fl.aggregator = self.aggregator;
        fl.chaos = self.chaos;
        fl.churn = self.churn;

        let (model_cfg, shards) = match self.dataset {
            DatasetKind::CifarLike => {
                let synth = SynthConfig {
                    noise_std: self.noise_std.unwrap_or(2.5),
                    ..SynthConfig::cifar10_like()
                };
                let total = self.n_clients * self.samples_per_client;
                let data = synth_cifar10(&synth, total, self.seed);
                let mut rng = TensorRng::seed_from(self.seed ^ 0xDA7A);
                let parts = dirichlet_partition(
                    &data.labels,
                    synth.num_classes,
                    self.n_clients,
                    self.beta,
                    &mut rng,
                );
                let shards: Vec<(Dataset, Dataset)> = parts
                    .into_iter()
                    .map(|idx| data.subset(&idx).split(0.75, &mut rng))
                    .collect();
                let mut mc = ModelConfig::cifar(self.model);
                mc.width_mult = self.width_mult;
                (mc, shards)
            }
            DatasetKind::FemnistLike => {
                let synth = SynthConfig {
                    noise_std: self.noise_std.unwrap_or(0.8),
                    ..SynthConfig::femnist_like()
                };
                let writers =
                    synth_femnist(&synth, self.n_clients, self.samples_per_client, self.seed);
                let mut rng = TensorRng::seed_from(self.seed ^ 0xFE);
                let shards: Vec<(Dataset, Dataset)> = writers
                    .into_iter()
                    .map(|d| d.split(0.75, &mut rng))
                    .collect();
                let mut mc = ModelConfig::femnist();
                mc.kind = self.model;
                mc.width_mult = self.width_mult;
                (mc, shards)
            }
        };
        Simulation::new(fl, model_cfg, shards)
    }

    /// Build and run to completion.
    pub fn run(self) -> RunResult {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_everything() {
        let sim = ExperimentBuilder::new(Algorithm::FedAvg)
            .clients(3)
            .samples_per_client(20)
            .rounds(1)
            .local_epochs(1)
            .build();
        assert_eq!(sim.clients.len(), 3);
        assert_eq!(sim.cfg.rounds, 1);
    }

    #[test]
    fn builder_wires_fault_plan() {
        let sim = ExperimentBuilder::new(Algorithm::FedAvg)
            .clients(2)
            .samples_per_client(10)
            .faults(FaultPlan::dropout_only(0.5))
            .build();
        assert_eq!(sim.cfg.faults, Some(FaultPlan::dropout_only(0.5)));
    }

    #[test]
    fn builder_wires_defense_knobs() {
        use spatl_fl::AttackKind;
        let sim = ExperimentBuilder::new(Algorithm::FedAvg)
            .clients(2)
            .samples_per_client(10)
            .adversary(AdversaryPlan::with_attack(0.5, AttackKind::SignFlip))
            .screen(ScreenPolicy::default())
            .aggregator(AggregatorKind::CoordinateMedian)
            .build();
        assert_eq!(
            sim.cfg.adversary,
            Some(AdversaryPlan::with_attack(0.5, AttackKind::SignFlip))
        );
        assert_eq!(sim.cfg.screen, Some(ScreenPolicy::default()));
        assert_eq!(sim.cfg.aggregator, AggregatorKind::CoordinateMedian);
    }

    #[test]
    fn femnist_uses_cnn_and_62_classes() {
        let sim = ExperimentBuilder::new(Algorithm::FedAvg)
            .dataset(DatasetKind::FemnistLike)
            .model(ModelKind::Cnn2)
            .clients(2)
            .samples_per_client(10)
            .build();
        assert_eq!(sim.clients[0].train.num_classes, 62);
        assert_eq!(sim.clients[0].model.config.kind, ModelKind::Cnn2);
    }
}
