//! Durable write-ahead round log (WAL) for a federated coordinator.
//!
//! [`save_global`](crate::save_global) checkpoints let a campaign resume
//! *between* runs; the round log extends that to resuming *mid-round*: a
//! coordinator appends a `begin` record (round index, sampled cohort,
//! pre-round [`GlobalState`]) before broadcasting, and a `commit` record
//! (post-round state) after aggregating. Every append is `fsync`ed, so a
//! killed-and-restarted root either finds the round committed — and
//! carries on from the next one — or finds the pending `begin` and
//! replays exactly the round it was killed in, from exactly the state it
//! broadcast. DESIGN.md §11 documents the format and the crash matrix.
//!
//! The log is line-delimited JSON (one record per line). Recovery
//! tolerates a torn trailing write — the partial line is discarded and
//! the file truncated back to the last durable record — and a later
//! `begin` for a round supersedes an uncommitted earlier one (the replay
//! of a round that crashed twice).

use serde::{Deserialize, Serialize};
use spatl_fl::GlobalState;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::CheckpointError;

/// One durable record in the log, externally tagged:
/// `{"Begin":{"round":3,...}}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum WalRecord {
    /// First record of every log: identifies the session configuration
    /// so a restarted coordinator cannot resume someone else's run.
    Header {
        /// Session fingerprint (hash of the full `FlConfig`).
        fingerprint: u64,
    },
    /// A round is about to be broadcast.
    Begin {
        /// Absolute round index.
        round: u32,
        /// The sampled cohort, ascending client ids.
        sampled: Vec<u32>,
        /// Global state the round starts from (pre-broadcast).
        global: GlobalState,
    },
    /// A round's aggregation was applied (or the round was a no-op).
    Commit {
        /// Absolute round index.
        round: u32,
        /// Global state after aggregation.
        global: GlobalState,
    },
}

/// A `begin` record with no matching `commit`: the round the coordinator
/// was killed in, to be replayed on restart.
#[derive(Debug, Clone)]
pub struct PendingRound {
    /// Absolute round index to replay.
    pub round: u32,
    /// The cohort the interrupted round had sampled.
    pub sampled: Vec<usize>,
    /// The pre-round global state the cohort trained against.
    pub global: GlobalState,
}

/// Everything recovery learns from an existing log.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// Session fingerprint recorded at log creation; the caller must
    /// verify it matches its own configuration before resuming.
    pub fingerprint: u64,
    /// Number of committed rounds (the next fresh round index when no
    /// round is pending).
    pub completed: u32,
    /// Global state after the last committed round; `None` when no round
    /// ever committed (resume from the initial state).
    pub global: Option<GlobalState>,
    /// The interrupted round to replay, if the log ends in a `begin`.
    pub pending: Option<PendingRound>,
}

/// Append-only, fsync-per-record round log.
#[derive(Debug)]
pub struct RoundLog {
    file: File,
}

impl RoundLog {
    /// Create (truncating any previous log at `path`) and write the
    /// session header durably.
    pub fn create(path: impl AsRef<Path>, fingerprint: u64) -> Result<RoundLog, CheckpointError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        let mut log = RoundLog { file };
        log.append(&WalRecord::Header { fingerprint })?;
        Ok(log)
    }

    /// Durably record that `round` is about to be broadcast to `sampled`
    /// from state `global`. Call *before* the first assignment goes out.
    pub fn begin(
        &mut self,
        round: usize,
        sampled: &[usize],
        global: &GlobalState,
    ) -> Result<(), CheckpointError> {
        self.append(&WalRecord::Begin {
            round: round as u32,
            sampled: sampled.iter().map(|&c| c as u32).collect(),
            global: global.clone(),
        })
    }

    /// Durably record `round`'s post-aggregation state. Call after the
    /// round's bookkeeping is final (no-op rounds commit too — the state
    /// is simply unchanged).
    pub fn commit(&mut self, round: usize, global: &GlobalState) -> Result<(), CheckpointError> {
        self.append(&WalRecord::Commit {
            round: round as u32,
            global: global.clone(),
        })
    }

    fn append(&mut self, record: &WalRecord) -> Result<(), CheckpointError> {
        let mut line = serde_json::to_string(record)?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        // One fsync per record: a begin/commit that returned Ok survives
        // `kill -9`. Rounds are seconds-long; the sync is noise.
        self.file.sync_data()?;
        Ok(())
    }

    /// Recover an existing log: parse the durable prefix, truncate any
    /// torn trailing write, and reopen for appending. Returns what was
    /// learned plus the reopened log.
    pub fn recover(path: impl AsRef<Path>) -> Result<(WalRecovery, RoundLog), CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let mut records: Vec<WalRecord> = Vec::new();
        let mut durable = 0usize; // byte length of the valid prefix
        let mut pos = 0usize;
        for line in bytes.split_inclusive(|&b| b == b'\n') {
            let end = pos + line.len();
            let parsed = std::str::from_utf8(line)
                .ok()
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .and_then(|t| serde_json::from_str::<WalRecord>(t).ok());
            match parsed {
                Some(rec) => {
                    records.push(rec);
                    durable = end;
                    pos = end;
                }
                // Torn or corrupt tail: everything from here on is not
                // durable state — discard it.
                None => break,
            }
        }

        let mut iter = records.into_iter();
        let fingerprint = match iter.next() {
            Some(WalRecord::Header { fingerprint }) => fingerprint,
            _ => {
                return Err(CheckpointError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a round log (missing header)", path.display()),
                )))
            }
        };
        let mut recovery = WalRecovery {
            fingerprint,
            completed: 0,
            global: None,
            pending: None,
        };
        for rec in iter {
            match rec {
                WalRecord::Header { .. } => {
                    return Err(CheckpointError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "duplicate round-log header",
                    )))
                }
                WalRecord::Begin {
                    round,
                    sampled,
                    global,
                } => {
                    // A later begin supersedes an uncommitted one: the
                    // round that crashed twice replays from its latest
                    // (identical) broadcast state.
                    recovery.pending = Some(PendingRound {
                        round,
                        sampled: sampled.into_iter().map(|c| c as usize).collect(),
                        global,
                    });
                }
                WalRecord::Commit { round, global } => {
                    recovery.completed = round + 1;
                    recovery.global = Some(global);
                    recovery.pending = None;
                }
            }
        }

        if durable < bytes.len() {
            // Rewrite without the torn tail so the next append starts on
            // a record boundary.
            std::fs::write(path, &bytes[..durable])?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((recovery, RoundLog { file }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spatl-roundlog-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn state(x: f32) -> GlobalState {
        GlobalState {
            shared: vec![x, -x, 0.5 * x],
            control: vec![0.1 * x],
            momentum: Vec::new(),
            buffers: vec![x],
        }
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn committed_rounds_recover_bitwise() {
        let path = tmp("commit.waljson");
        let mut log = RoundLog::create(&path, 42).unwrap();
        log.begin(0, &[0, 2], &state(1.0)).unwrap();
        log.commit(0, &state(2.0)).unwrap();
        log.begin(1, &[1, 3], &state(2.0)).unwrap();
        log.commit(1, &state(3.0)).unwrap();
        drop(log);

        let (rec, _log) = RoundLog::recover(&path).unwrap();
        assert_eq!(rec.fingerprint, 42);
        assert_eq!(rec.completed, 2);
        assert!(rec.pending.is_none());
        let g = rec.global.unwrap();
        assert_eq!(bits(&g.shared), bits(&state(3.0).shared));
        assert_eq!(bits(&g.buffers), bits(&state(3.0).buffers));
    }

    #[test]
    fn uncommitted_begin_is_the_pending_round() {
        let path = tmp("pending.waljson");
        let mut log = RoundLog::create(&path, 7).unwrap();
        log.begin(0, &[0], &state(1.0)).unwrap();
        log.commit(0, &state(2.0)).unwrap();
        log.begin(1, &[0, 1], &state(2.0)).unwrap();
        drop(log); // killed mid-round

        let (rec, _log) = RoundLog::recover(&path).unwrap();
        assert_eq!(rec.completed, 1);
        let pending = rec.pending.unwrap();
        assert_eq!(pending.round, 1);
        assert_eq!(pending.sampled, vec![0, 1]);
        assert_eq!(bits(&pending.global.shared), bits(&state(2.0).shared));
        // The last *committed* state is still round 0's.
        assert_eq!(bits(&rec.global.unwrap().shared), bits(&state(2.0).shared));
    }

    #[test]
    fn replayed_begin_supersedes_the_first() {
        let path = tmp("supersede.waljson");
        let mut log = RoundLog::create(&path, 7).unwrap();
        log.begin(3, &[0], &state(5.0)).unwrap();
        drop(log); // crash during round 3
        let (rec, mut log) = RoundLog::recover(&path).unwrap();
        assert_eq!(rec.pending.as_ref().unwrap().round, 3);
        log.begin(3, &[0], &state(5.0)).unwrap(); // replay begins again
        drop(log); // crash during the replay, too
        let (rec, _log) = RoundLog::recover(&path).unwrap();
        assert_eq!(rec.pending.unwrap().round, 3);
        assert_eq!(rec.completed, 0);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let path = tmp("torn.waljson");
        let mut log = RoundLog::create(&path, 9).unwrap();
        log.begin(0, &[0], &state(1.0)).unwrap();
        log.commit(0, &state(2.0)).unwrap();
        drop(log);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a write torn by the kill: half a begin record.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Begin\":{\"round\":1,\"sam").unwrap();
        drop(f);

        let (rec, log) = RoundLog::recover(&path).unwrap();
        assert_eq!(rec.completed, 1);
        assert!(rec.pending.is_none(), "torn begin must not become pending");
        drop(log);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail truncated"
        );
        // And the truncated log keeps working.
        let (_, mut log) = RoundLog::recover(&path).unwrap();
        log.begin(1, &[0], &state(2.0)).unwrap();
        log.commit(1, &state(3.0)).unwrap();
        drop(log);
        let (rec, _log) = RoundLog::recover(&path).unwrap();
        assert_eq!(rec.completed, 2);
    }

    #[test]
    fn missing_or_headerless_files_are_errors() {
        assert!(matches!(
            RoundLog::recover(tmp("absent.waljson")),
            Err(CheckpointError::Io(_))
        ));
        let path = tmp("headerless.waljson");
        std::fs::write(
            &path,
            b"{\"Commit\":{\"round\":0,\"global\":{\"shared\":[],\"control\":[],\"momentum\":[],\"buffers\":[]}}}\n",
        )
        .unwrap();
        assert!(RoundLog::recover(&path).is_err());
    }
}
