//! # SPATL — Salient Parameter Aggregation and Transfer Learning
//!
//! A from-scratch Rust reproduction of *"SPATL: Salient Parameter
//! Aggregation and Transfer Learning for Heterogeneous Federated Learning"*
//! (SC 2022). This facade crate re-exports the whole stack and provides
//! [`ExperimentBuilder`], a one-stop configuration surface used by the
//! examples and the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use spatl::prelude::*;
//!
//! let result = ExperimentBuilder::new(Algorithm::Spatl(SpatlOptions::default()))
//!     .clients(4)
//!     .rounds(2)
//!     .samples_per_client(24)
//!     .local_epochs(1)
//!     .seed(7)
//!     .run();
//! assert_eq!(result.history.len(), 2);
//! ```
//!
//! ## Layout
//!
//! | crate | role |
//! |---|---|
//! | `spatl-tensor` | dense tensors, matmul, im2col |
//! | `spatl-nn` | layers, losses, optimisers, flat parameter layout |
//! | `spatl-models` | ResNet-20/32/56/18, VGG-11, 2-layer CNN as encoder/predictor splits |
//! | `spatl-data` | synthetic CIFAR-10-like / FEMNIST-like data, Dirichlet & writer partitions |
//! | `spatl-graph` | simplified computational graphs (RL states) |
//! | `spatl-pruning` | channel saliency, masks, SFP/FPGM/DSA baselines, salient index selection |
//! | `spatl-agent` | GNN actor-critic + PPO selection agent |
//! | `spatl-fl` | FedAvg / FedProx / SCAFFOLD / FedNova / SPATL simulator |

mod checkpoint;
mod experiment;
mod roundlog;

pub use checkpoint::{
    load_agent, load_global, load_model, load_result, save_agent, save_global, save_model,
    save_result, CheckpointError,
};
pub use experiment::{DatasetKind, ExperimentBuilder};
pub use roundlog::{PendingRound, RoundLog, WalRecovery};

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use crate::{DatasetKind, ExperimentBuilder};
    pub use spatl_agent::{finetune_agent, pretrain_agent, ActorCritic, AgentConfig, PruningEnv};
    pub use spatl_data::{
        dirichlet_partition, iid_partition, partition_stats, synth_cifar10, synth_femnist, Dataset,
        SynthConfig,
    };
    pub use spatl_fl::{
        adapt_predictor, transfer_evaluate, AdversaryPlan, AggregatorKind, Algorithm, AttackKind,
        ChaosPlan, ChurnModel, ChurnPlan, FaultKind, FaultPlan, FaultRecord, FlConfig, RunResult,
        ScreenPolicy, Simulation, SpatlOptions,
    };
    pub use spatl_graph::extract;
    pub use spatl_models::{profile, ModelConfig, ModelKind, SplitModel};
    pub use spatl_nn::{accuracy, CrossEntropyLoss, Network, Optimizer, Sgd};
    pub use spatl_pruning::{
        apply_sparsities, channel_saliency, dsa_allocate, salient_param_indices,
        uniform_sparsities, Criterion, SoftFilterPruner,
    };
    pub use spatl_tensor::{Tensor, TensorRng};
}

// Re-export the sub-crates for qualified access.
pub use spatl_agent as agent;
pub use spatl_data as data;
pub use spatl_fl as fl;
pub use spatl_graph as graph;
pub use spatl_models as models;
pub use spatl_nn as nn;
pub use spatl_pruning as pruning;
pub use spatl_tensor as tensor;
pub use spatl_wire as wire;
