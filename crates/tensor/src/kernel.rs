//! Micro-kernel implementations and runtime kernel selection.
//!
//! The packed GEMM driver in [`matmul`](crate::matmul) is generic over a
//! [`MicroKernel`]: the one piece of the BLIS recipe that touches ISA
//! specifics. Two kernels exist:
//!
//! * [`Scalar4x8`] — the portable fallback, a 4×8 register tile whose
//!   `NR`-wide inner update auto-vectorises to whatever the target
//!   baseline offers (two 128-bit lanes on plain x86-64). Always
//!   available, byte-identical on every platform.
//! * `Fma6x16` (x86-64 only) — a hand-written AVX2+FMA 6×16 tile using
//!   `core::arch` intrinsics: 12 ymm accumulators, two ymm B loads and
//!   one A broadcast per k step — 15 of the 16 ymm registers, the widest
//!   tile that fits without spilling.
//!
//! Selection happens once per GEMM call, not per tile: `avx2`+`fma` are
//! runtime-detected (`is_x86_feature_detected!`), the `SPATL_FORCE_SCALAR`
//! environment variable pins the fallback for A/B testing and for CI
//! runners whose hardware has AVX but whose job wants the portable path
//! exercised, and [`force_scalar`] toggles the same pin programmatically
//! so one process can ladder scalar-vs-SIMD benchmarks.
//!
//! Numerical note: the FMA kernel contracts each multiply-add to one
//! rounding, so its results differ from the scalar kernel's in the last
//! ulps (it is *more* accurate, not less). Nothing in the workspace
//! claims bit-identity between matmul and a reference — the packed-vs-
//! naive tests use an epsilon — but anything downstream that hashes
//! model bytes must run all compared processes with the same kernel;
//! the FL determinism tests do (same process or same machine).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Largest tile height any kernel uses; accumulator tiles are statically
/// sized by this so the driver needs no const generics.
pub(crate) const MAX_MR: usize = 8;
/// Largest tile width any kernel uses.
pub(crate) const MAX_NR: usize = 16;

/// One register-tiled inner loop: everything the GEMM driver needs to
/// know about an ISA-specific kernel.
///
/// # Safety contract for [`MicroKernel::tile`]
///
/// `tile` is `unsafe fn` because implementations may require ISA
/// extensions: the caller must only invoke a kernel after confirming its
/// requirements hold on the running CPU ([`Scalar4x8`] has none;
/// `Fma6x16` requires AVX2+FMA, which [`use_fma`] checks). Slices must
/// satisfy `ap.len() >= kc * MR` and `bp.len() >= kc * NR`.
pub(crate) trait MicroKernel {
    /// Tile height: rows of C accumulated in registers at once.
    const MR: usize;
    /// Tile width: columns of C accumulated in registers at once.
    const NR: usize;
    /// Human-readable kernel name, recorded by the bench harness.
    const NAME: &'static str;

    /// Compute the `MR×NR` panel product over one k-block into `acc`.
    ///
    /// On entry `acc` is zeroed; on exit `acc[r][j]` for `r < MR`,
    /// `j < NR` holds `Σ_p ap[p·MR + r] · bp[p·NR + j]`; entries beyond
    /// the tile are unspecified. See the trait-level safety contract.
    unsafe fn tile(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; MAX_NR]; MAX_MR]);

    /// Full-tile fast path: compute the panel product and store (or
    /// accumulate, per `accumulate`) a complete `MR×NR` tile straight
    /// into C at `c` with row stride `ldc`, skipping the intermediate
    /// accumulator buffer. Only called for interior tiles; edge tiles go
    /// through [`MicroKernel::tile`] plus the scalar write path.
    ///
    /// # Safety
    ///
    /// Everything [`MicroKernel::tile`] requires, plus: `c` must point
    /// into a live `f32` buffer such that `c[r·ldc + j]` is in-bounds
    /// and writable for all `r < MR`, `j < NR`, with no other thread
    /// concurrently accessing those elements.
    unsafe fn tile_into(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        accumulate: bool,
    ) {
        let mut acc = [[0.0f32; MAX_NR]; MAX_MR];
        // SAFETY: forwarded caller contract.
        unsafe { Self::tile(kc, ap, bp, &mut acc) };
        for (r, row) in acc.iter().enumerate().take(Self::MR) {
            // SAFETY: the caller guarantees rows `r < MR` of `NR`
            // elements at stride `ldc` are in-bounds and unaliased.
            let dst = unsafe { std::slice::from_raw_parts_mut(c.add(r * ldc), Self::NR) };
            if accumulate {
                for (d, &v) in dst.iter_mut().zip(row) {
                    *d += v;
                }
            } else {
                dst.copy_from_slice(&row[..Self::NR]);
            }
        }
    }
}

/// Portable scalar/auto-vectorised fallback kernel (4×8 tile).
///
/// `MR·NR/4 + NR/4 + 1` SSE registers must fit in the 16 available on
/// baseline x86-64, so 4×8 (8 accumulator registers) is the sweet spot;
/// an 8×8 tile spills and runs ~40% slower.
pub(crate) struct Scalar4x8;

impl MicroKernel for Scalar4x8 {
    const MR: usize = 4;
    const NR: usize = 8;
    const NAME: &'static str = "scalar4x8";

    #[inline(always)]
    unsafe fn tile(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; MAX_NR]; MAX_MR]) {
        // No ISA requirement; entirely safe code.
        debug_assert!(ap.len() >= kc * Self::MR && bp.len() >= kc * Self::NR);
        for (a, b) in ap
            .chunks_exact(Self::MR)
            .zip(bp.chunks_exact(Self::NR))
            .take(kc)
        {
            let a: &[f32; 4] = a.try_into().unwrap();
            let b: &[f32; 8] = b.try_into().unwrap();
            for r in 0..4 {
                let ar = a[r];
                for j in 0..8 {
                    acc[r][j] += ar * b[j];
                }
            }
        }
    }
}

/// AVX2+FMA micro-kernel (6×16 tile), x86-64 only.
///
/// Register allocation per k step: 12 ymm accumulators (6 rows × 2
/// vectors of 8 columns), 2 ymm holding the current B row, 1 ymm for the
/// broadcast A element — 15 of 16 ymm registers, leaving one for the
/// compiler. Each k step issues 12 FMAs on 8 lanes = 192 FLOPs.
#[cfg(target_arch = "x86_64")]
pub(crate) struct Fma6x16;

#[cfg(target_arch = "x86_64")]
impl MicroKernel for Fma6x16 {
    const MR: usize = 6;
    const NR: usize = 16;
    const NAME: &'static str = "fma6x16";

    #[inline]
    unsafe fn tile(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; MAX_NR]; MAX_MR]) {
        // SAFETY: per the trait contract the caller has verified AVX2+FMA
        // (the GEMM driver only instantiates this kernel when `use_fma()`
        // returned true) and the panel-length preconditions.
        unsafe { fma_tile_6x16(kc, ap, bp, acc) }
    }

    #[inline]
    unsafe fn tile_into(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        accumulate: bool,
    ) {
        // SAFETY: same ISA argument as `tile`; the C-tile bounds are the
        // caller's contract, forwarded unchanged.
        unsafe { fma_tile_into_6x16(kc, ap, bp, c, ldc, accumulate) }
    }
}

/// The actual AVX2+FMA inner loop; split out so `#[target_feature]` can
/// let the compiler use ymm registers and fuse multiply-adds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_tile_6x16(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; MAX_NR]; MAX_MR]) {
    use core::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 6 && bp.len() >= kc * 16);
    // SAFETY (whole body): pointer arithmetic stays inside `ap`/`bp` —
    // the loop reads exactly `kc` steps of 6 (resp. 16) floats, which the
    // debug-asserted preconditions cover; `_mm256_loadu_ps`/`storeu` are
    // the unaligned variants, so no alignment requirement; the final
    // stores hit `acc[r][0..16]`, in-bounds for `[f32; MAX_NR]` rows.
    unsafe {
        let mut c: [[__m256; 2]; 6] = [[_mm256_setzero_ps(); 2]; 6];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for (r, row) in c.iter_mut().enumerate() {
                let ar = _mm256_set1_ps(*a.add(r));
                row[0] = _mm256_fmadd_ps(ar, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ar, b1, row[1]);
            }
            a = a.add(6);
            b = b.add(16);
        }
        for (r, row) in c.iter().enumerate() {
            _mm256_storeu_ps(acc[r].as_mut_ptr(), row[0]);
            _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), row[1]);
        }
    }
}

/// Full-tile AVX2+FMA path: identical compute loop, but the 6×16 result
/// goes straight from ymm registers into C (vector load+add+store when
/// accumulating) — no intermediate accumulator buffer, no scalar write.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_tile_into_6x16(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    cp: *mut f32,
    ldc: usize,
    accumulate: bool,
) {
    use core::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 6 && bp.len() >= kc * 16);
    // SAFETY (whole body): panel reads as in `fma_tile_6x16`; C accesses
    // touch `cp[r·ldc + j]` for `r < 6`, `j < 16`, exactly the region the
    // caller's contract declares in-bounds and exclusively ours; all
    // loads/stores are the unaligned variants.
    unsafe {
        let mut c: [[__m256; 2]; 6] = [[_mm256_setzero_ps(); 2]; 6];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for (r, row) in c.iter_mut().enumerate() {
                let ar = _mm256_set1_ps(*a.add(r));
                row[0] = _mm256_fmadd_ps(ar, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ar, b1, row[1]);
            }
            a = a.add(6);
            b = b.add(16);
        }
        for (r, row) in c.iter().enumerate() {
            let dst = cp.add(r * ldc);
            if accumulate {
                let lo = _mm256_add_ps(_mm256_loadu_ps(dst), row[0]);
                let hi = _mm256_add_ps(_mm256_loadu_ps(dst.add(8)), row[1]);
                _mm256_storeu_ps(dst, lo);
                _mm256_storeu_ps(dst.add(8), hi);
            } else {
                _mm256_storeu_ps(dst, row[0]);
                _mm256_storeu_ps(dst.add(8), row[1]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

const OVERRIDE_UNSET: u8 = 0;
const OVERRIDE_SCALAR: u8 = 1;
const OVERRIDE_AUTO: u8 = 2;

/// Programmatic override; when unset, the `SPATL_FORCE_SCALAR`
/// environment default applies.
static OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_UNSET);

fn env_default_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPATL_FORCE_SCALAR")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false)
    })
}

fn scalar_forced() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        OVERRIDE_SCALAR => true,
        OVERRIDE_AUTO => false,
        _ => env_default_scalar(),
    }
}

/// Does this CPU support the AVX2+FMA kernel? Detected once, cached.
#[cfg(target_arch = "x86_64")]
pub(crate) fn fma_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn fma_available() -> bool {
    false
}

/// Should the GEMM driver take the FMA kernel on this call?
pub(crate) fn use_fma() -> bool {
    fma_available() && !scalar_forced()
}

/// Pin (or un-pin) the portable scalar micro-kernel for subsequent
/// matmuls in this process, overriding both hardware detection and the
/// `SPATL_FORCE_SCALAR` environment default.
///
/// Thread-visible immediately (relaxed atomic): in-flight matmuls keep
/// the kernel they dispatched with; new calls observe the change. The
/// bench harness uses this to measure the scalar→SIMD ladder in one
/// process.
pub fn force_scalar(on: bool) {
    OVERRIDE.store(
        if on { OVERRIDE_SCALAR } else { OVERRIDE_AUTO },
        Ordering::Relaxed,
    );
}

/// Name of the micro-kernel the next matmul will dispatch to:
/// `"fma6x16"` when AVX2+FMA is detected and not overridden,
/// `"scalar4x8"` otherwise. Recorded in BENCH_substrate.json so numbers
/// are attributable to a code path.
pub fn active_kernel() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if use_fma() {
        return Fma6x16::NAME;
    }
    Scalar4x8::NAME
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_overrides_detection() {
        force_scalar(true);
        assert_eq!(active_kernel(), "scalar4x8");
        force_scalar(false);
        // Whatever the hardware offers; just must not be pinned scalar
        // if FMA exists.
        if fma_available() {
            assert_eq!(active_kernel(), "fma6x16");
        } else {
            assert_eq!(active_kernel(), "scalar4x8");
        }
        // Leave the process in auto mode for other tests.
    }

    #[test]
    fn scalar_tile_matches_reference() {
        let kc = 7;
        let ap: Vec<f32> = (0..kc * 4).map(|i| i as f32 * 0.25 - 3.0).collect();
        let bp: Vec<f32> = (0..kc * 8).map(|i| 1.5 - i as f32 * 0.125).collect();
        let mut acc = [[0.0f32; MAX_NR]; MAX_MR];
        // SAFETY: Scalar4x8 has no ISA requirement; panels sized above.
        unsafe { Scalar4x8::tile(kc, &ap, &bp, &mut acc) };
        for r in 0..4 {
            for j in 0..8 {
                let want: f32 = (0..kc).map(|p| ap[p * 4 + r] * bp[p * 8 + j]).sum();
                assert!((acc[r][j] - want).abs() < 1e-4);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_tile_matches_scalar_reference() {
        if !fma_available() {
            return; // nothing to test on this CPU
        }
        let kc = 13;
        let ap: Vec<f32> = (0..kc * 6).map(|i| (i as f32).sin()).collect();
        let bp: Vec<f32> = (0..kc * 16).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut acc = [[0.0f32; MAX_NR]; MAX_MR];
        // SAFETY: fma_available() confirmed AVX2+FMA; panels sized above.
        unsafe { Fma6x16::tile(kc, &ap, &bp, &mut acc) };
        for r in 0..6 {
            for j in 0..16 {
                let want: f32 = (0..kc).map(|p| ap[p * 6 + r] * bp[p * 16 + j]).sum();
                assert!(
                    (acc[r][j] - want).abs() < 1e-4,
                    "r={r} j={j}: {} vs {want}",
                    acc[r][j]
                );
            }
        }
    }
}
