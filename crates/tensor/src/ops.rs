//! Element-wise operations, reductions and the vector algebra used by the
//! optimisers and federated-learning aggregation rules.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise sum producing a new tensor.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
        Ok(())
    }

    /// Element-wise difference producing a new tensor.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        let mut out = self.clone();
        for (a, b) in out.data_mut().iter_mut().zip(other.data()) {
            *a -= b;
        }
        Ok(out)
    }

    /// Element-wise `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "sub_assign")?;
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a -= b;
        }
        Ok(())
    }

    /// Element-wise (Hadamard) product producing a new tensor.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        let mut out = self.clone();
        for (a, b) in out.data_mut().iter_mut().zip(other.data()) {
            *a *= b;
        }
        Ok(out)
    }

    /// `self += alpha * other` — the BLAS `axpy` primitive that every FL
    /// aggregation rule in this project reduces to.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data_mut() {
            *a *= alpha;
        }
    }

    /// New tensor with every element multiplied by a scalar.
    pub fn scaled(&self, alpha: f32) -> Tensor {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Apply `f` to every element, in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.data_mut() {
            *a = f(*a);
        }
    }

    /// New tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        out.map_in_place(f);
        out
    }

    /// Dot product over the flattened buffers.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "dot")?;
        Ok(self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element of a rank-1 tensor (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the flattened buffer.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum()
    }

    /// L2 norm of the flattened buffer.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// L1 norm of the flattened buffer.
    pub fn norm_l1(&self) -> f32 {
        self.data().iter().map(|v| v.abs()).sum()
    }

    /// Clamp every element into `[lo, hi]`, in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for a in self.data_mut() {
            *a = a.clamp(lo, hi);
        }
    }

    /// Zero the buffer, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        for a in self.data_mut() {
            *a = value;
        }
    }

    /// Row-wise softmax of a rank-2 tensor `[batch, classes]`, numerically
    /// stabilised by subtracting the row maximum.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "softmax_rows requires rank 2");
        let (b, c) = (self.dims()[0], self.dims()[1]);
        let mut out = self.clone();
        for i in 0..b {
            let row = &mut out.data_mut()[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                denom += *v;
            }
            let inv = 1.0 / denom;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1., 2., 3.]);
        let b = t(&[4., 5., 6.]);
        assert_eq!(a.add(&b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4., 10., 18.]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = t(&[1., 2.]);
        let b = t(&[1., 2., 3.]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = t(&[1., 2.]);
        a.axpy(0.5, &t(&[4., 8.])).unwrap();
        assert_eq!(a.data(), &[3., 6.]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1., -2., 3.]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 2.0 / 3.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.argmax(), 2);
        assert_eq!(a.norm_l1(), 6.0);
        assert!((a.norm() - 14f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 0., 0., 0.]).unwrap();
        let s = x.softmax_rows();
        for i in 0..2 {
            let row = &s.data()[i * 3..(i + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probability.
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
        // Uniform logits give uniform probabilities.
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec([1, 2], vec![1000.0, 1001.0]).unwrap();
        let s = x.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!((s.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clamp_and_fill() {
        let mut a = t(&[-5., 0.5, 5.]);
        a.clamp_in_place(-1.0, 1.0);
        assert_eq!(a.data(), &[-1., 0.5, 1.]);
        a.fill(0.0);
        assert_eq!(a.data(), &[0., 0., 0.]);
    }
}
