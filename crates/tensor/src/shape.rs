//! Shape handling for row-major contiguous tensors.

use serde::{Deserialize, Serialize};

/// The shape of a tensor: dimension sizes in row-major order.
///
/// A `Shape` is a thin wrapper over `Vec<usize>` providing element counts and
/// row-major stride computation. Rank-0 shapes are permitted and describe a
/// scalar with one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for rank 0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Panics in debug builds if `index` has the wrong rank or is out of
    /// bounds; release builds perform the unchecked arithmetic.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let strides = self.strides();
        index
            .iter()
            .enumerate()
            .map(|(d, &i)| {
                debug_assert!(i < self.0[d], "index {i} out of bounds in dim {d}");
                i * strides[d]
            })
            .sum()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        assert_eq!(Shape::new(Vec::<usize>::new()).numel(), 1);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::from([2, 3, 4]).numel(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn zero_dim_gives_zero_numel() {
        assert_eq!(Shape::from([4, 0, 2]).numel(), 0);
    }
}
