//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolution in `spatl-nn` is implemented as `im2col` followed by a matrix
//! multiplication — the classic lowering used by CPU deep-learning runtimes.
//! `col2im` is the adjoint scatter used in the backward pass.
//!
//! Both directions are parallel: `im2col` over output rows (each patch row of
//! the column matrix is an independent gather) and `col2im` over images (each
//! image's gradient is a disjoint scatter target, so `par_chunks_mut` is
//! race-free). The `_into` variants reuse caller-provided buffers and write
//! **every** element of their output — padding positions are stored as
//! explicit zeros — so recycled workspace buffers need no pre-zeroing.

use crate::Tensor;
use rayon::prelude::*;

/// Geometry of a 2-D convolution: input/output spatial extents and the
/// kernel/stride/padding that relate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output height after convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of columns produced per image: `out_h * out_w`.
    pub fn cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Rows of the patch matrix: `in_channels * kernel * kernel`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unfold a batch of images `[n, c, h, w]` into a patch matrix
/// `[n * out_h * out_w, c * k * k]`, so that convolution with a weight matrix
/// `[out_c, c * k * k]` becomes a single matmul.
pub fn im2col(input: &Tensor, g: &Conv2dGeometry) -> Tensor {
    let n = input.dims()[0];
    let mut out = Tensor::zeros([n * g.cols(), g.patch_len()]);
    im2col_into(input, g, &mut out);
    out
}

/// [`im2col`] into a preallocated `[n * out_h * out_w, c * k * k]` tensor.
/// Every element is written (padding as explicit `0.0`), so the previous
/// contents of `out` are irrelevant.
pub fn im2col_into(input: &Tensor, g: &Conv2dGeometry, out: &mut Tensor) {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "im2col expects [n,c,h,w]");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, g.in_channels, "channel mismatch");
    assert_eq!(h, g.in_h, "height mismatch");
    assert_eq!(w, g.in_w, "width mismatch");

    let (oh, ow, k, s, p) = (g.out_h(), g.out_w(), g.kernel, g.stride, g.padding);
    let patch = g.patch_len();
    assert_eq!(
        out.dims(),
        &[n * oh * ow, patch],
        "im2col output shape mismatch"
    );
    let src = input.data();

    // One patch row per output position: rows are disjoint, so this is an
    // embarrassingly parallel gather.
    out.data_mut()
        .par_chunks_mut(patch)
        .enumerate()
        .for_each(|(row, dst)| {
            let ox = row % ow;
            let oy = (row / ow) % oh;
            let img = row / (oh * ow);
            let img_base = img * c * h * w;
            for ch in 0..c {
                let ch_base = img_base + ch * h * w;
                for ky in 0..k {
                    let iy = (oy * s + ky) as isize - p as isize;
                    let dst_row = &mut dst[(ch * k + ky) * k..(ch * k + ky) * k + k];
                    if iy < 0 || iy as usize >= h {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &src[ch_base + iy as usize * w..ch_base + (iy as usize + 1) * w];
                    for (kx, d) in dst_row.iter_mut().enumerate() {
                        let ix = (ox * s + kx) as isize - p as isize;
                        *d = if ix < 0 || ix as usize >= w {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        });
}

/// Adjoint of [`im2col`]: scatter-add a patch-matrix gradient
/// `[n * out_h * out_w, c * k * k]` back into an image gradient
/// `[n, c, h, w]`.
pub fn col2im(cols: &Tensor, g: &Conv2dGeometry, n: usize) -> Tensor {
    let mut out = Tensor::zeros([n, g.in_channels, g.in_h, g.in_w]);
    col2im_into(cols, g, &mut out);
    out
}

/// [`col2im`] into a preallocated `[n, c, h, w]` tensor. The output is
/// zeroed before the scatter, so the previous contents of `out` are
/// irrelevant.
pub fn col2im_into(cols: &Tensor, g: &Conv2dGeometry, out: &mut Tensor) {
    let (oh, ow, k, s, p) = (g.out_h(), g.out_w(), g.kernel, g.stride, g.padding);
    let (c, h, w) = (g.in_channels, g.in_h, g.in_w);
    let patch = g.patch_len();
    let dims = out.dims();
    assert_eq!(dims.len(), 4, "col2im output must be [n,c,h,w]");
    let n = dims[0];
    assert_eq!(&dims[1..], &[c, h, w], "col2im output geometry mismatch");
    assert_eq!(cols.dims(), &[n * oh * ow, patch], "col2im shape mismatch");
    let src = cols.data();

    // Images scatter into disjoint `c*h*w` chunks of the output, so the
    // accumulation is race-free under per-image parallelism.
    out.data_mut()
        .par_chunks_mut(c * h * w)
        .enumerate()
        .for_each(|(img, dst)| {
            dst.fill(0.0);
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((img * oh + oy) * ow + ox) * patch;
                    for ch in 0..c {
                        let ch_base = ch * h * w;
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let iy = iy as usize;
                            let src_off = row + (ch * k + ky) * k;
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                dst[ch_base + iy * w + ix as usize] += src[src_off + kx];
                            }
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn output_dims_formula() {
        let g = geom(3, 8, 8, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
        let g2 = geom(3, 8, 8, 3, 2, 1);
        assert_eq!((g2.out_h(), g2.out_w()), (4, 4));
        let g3 = geom(1, 5, 5, 1, 1, 0);
        assert_eq!((g3.out_h(), g3.out_w()), (5, 5));
    }

    #[test]
    fn identity_kernel_1x1_is_permuted_copy() {
        let g = geom(2, 2, 2, 1, 1, 0);
        let x = Tensor::from_vec([1, 2, 2, 2], (0..8).map(|v| v as f32).collect()).unwrap();
        let cols = im2col(&x, &g);
        // Rows iterate over spatial positions, columns over channels.
        assert_eq!(cols.dims(), &[4, 2]);
        assert_eq!(cols.data(), &[0., 4., 1., 5., 2., 6., 3., 7.]);
    }

    #[test]
    fn padding_fills_zeros() {
        let g = geom(1, 1, 1, 3, 1, 1);
        let x = Tensor::from_vec([1, 1, 1, 1], vec![5.0]).unwrap();
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[1, 9]);
        let mut expect = [0.0; 9];
        expect[4] = 5.0; // centre of the 3x3 patch
        assert_eq!(cols.data(), &expect[..]);
    }

    #[test]
    fn into_variants_overwrite_dirty_buffers() {
        // Recycled workspace buffers arrive dirty; both directions must
        // fully overwrite their output.
        let g = geom(2, 5, 4, 3, 1, 1);
        let nimg = 2;
        let x = Tensor::from_vec(
            [nimg, 2, 5, 4],
            (0..nimg * 2 * 5 * 4).map(|v| v as f32 * 0.1).collect(),
        )
        .unwrap();
        let mut cols = Tensor::full([nimg * g.cols(), g.patch_len()], f32::NAN);
        im2col_into(&x, &g, &mut cols);
        assert_eq!(cols, im2col(&x, &g));

        let mut back = Tensor::full([nimg, 2, 5, 4], f32::NAN);
        col2im_into(&cols, &g, &mut back);
        assert_eq!(back, col2im(&cols, &g, nimg));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint scatter.
        let g = geom(2, 5, 4, 3, 2, 1);
        let nimg = 2;
        let mut x = Tensor::zeros([nimg, 2, 5, 4]);
        let mut state = 1234u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for v in x.data_mut() {
            *v = next();
        }
        let cols = im2col(&x, &g);
        let mut y = Tensor::zeros(cols.dims().to_vec());
        for v in y.data_mut() {
            *v = next();
        }
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, &g, nimg);
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn stride_two_no_padding_counts() {
        let g = geom(1, 4, 4, 2, 2, 0);
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[4, 4]);
        // First patch is the top-left 2x2 block.
        assert_eq!(&cols.data()[0..4], &[0., 1., 4., 5.]);
        // Last patch is the bottom-right 2x2 block.
        assert_eq!(&cols.data()[12..16], &[10., 11., 14., 15.]);
    }
}
