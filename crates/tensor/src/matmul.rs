//! Blocked, rayon-parallel matrix multiplication.
//!
//! Essentially all training time in this project is spent here (convolution
//! is lowered to matmul via `im2col`). The kernel is a cache-blocked `ikj`
//! loop parallelised over row blocks of the output; for the matrix sizes the
//! scaled-down SPATL models produce (hundreds × hundreds) this is within a
//! small factor of a tuned BLAS and entirely safe Rust.

use crate::Tensor;
use rayon::prelude::*;

/// Row-block size for parallel partitioning.
const ROW_BLOCK: usize = 32;
/// Inner (k) blocking factor, sized to keep a block of B in L1.
const K_BLOCK: usize = 128;

/// `C = A · B` for row-major `A: [m,k]`, `B: [k,n]`.
///
/// Panics if the inner dimensions disagree; shape errors here are programmer
/// bugs (layer wiring), not runtime data errors.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = Tensor::zeros([a.dims()[0], b.dims()[1]]);
    matmul_into(a, b, &mut c);
    c
}

/// `C += 0; C = A · B` writing into a preallocated output tensor.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    assert_eq!(c.dims(), &[m, n], "matmul output shape mismatch");

    let av = a.data();
    let bv = b.data();
    c.data_mut()
        .par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, c_rows)| {
            let row0 = blk * ROW_BLOCK;
            let rows = c_rows.len() / n;
            for r in c_rows.iter_mut() {
                *r = 0.0;
            }
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + K_BLOCK).min(k);
                for i in 0..rows {
                    let a_row = &av[(row0 + i) * k..(row0 + i) * k + k];
                    let c_row = &mut c_rows[i * n..(i + 1) * n];
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &bv[kk * n..(kk + 1) * n];
                        for (cv, bv_) in c_row.iter_mut().zip(b_row) {
                            *cv += aik * bv_;
                        }
                    }
                }
                k0 = k1;
            }
        });
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` → `C: [m,n]`, without
/// materialising the transpose. Used for weight gradients.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
    let av = a.data();
    let bv = b.data();
    let mut c = Tensor::zeros([m, n]);
    c.data_mut()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, c_row)| {
            for kk in 0..k {
                let aki = av[kk * m + i];
                if aki == 0.0 {
                    continue;
                }
                let b_row = &bv[kk * n..(kk + 1) * n];
                for (cv, bv_) in c_row.iter_mut().zip(b_row) {
                    *cv += aki * bv_;
                }
            }
        });
    c
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` → `C: [m,n]`, without
/// materialising the transpose. Used for input gradients.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
    let av = a.data();
    let bv = b.data();
    let mut c = Tensor::zeros([m, n]);
    c.data_mut()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, c_row)| {
            let a_row = &av[i * k..(i + 1) * k];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &bv[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *cv = acc;
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn rand_t(dims: [usize; 2], seed: u64) -> Tensor {
        // Small deterministic pseudo-random fill without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
        t
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matches_naive_on_odd_sizes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (33, 129, 17),
            (64, 64, 64),
            (70, 130, 40),
        ] {
            let a = rand_t([m, k], (m * k) as u64);
            let b = rand_t([k, n], (k * n + 7) as u64);
            assert_close(&matmul(&a, &b), &naive(&a, &b));
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = rand_t([9, 5], 3);
        let b = rand_t([9, 4], 4);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose2(), &b));
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = rand_t([6, 8], 5);
        let b = rand_t([7, 8], 6);
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose2()));
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_t([5, 5], 11);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a);
        assert_close(&matmul(&eye, &a), &a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dim_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }
}
