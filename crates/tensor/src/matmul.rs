//! Packed, register-tiled, rayon-parallel matrix multiplication.
//!
//! Essentially all training time in this project is spent here (convolution
//! is lowered to matmul via `im2col`), so the kernel follows the classic
//! BLIS-style CPU recipe:
//!
//! * The output is computed in `MR`×`NR` **register tiles**: the micro-kernel
//!   keeps a full accumulator tile in registers across an entire k-block, so
//!   C traffic is one store (or load+store) per tile per k-block instead of
//!   one load+store per scalar multiply.
//! * Operands are read through **packed panels**: for each k-block a worker
//!   packs its A rows into `MR`-high column-interleaved panels and each B
//!   column strip into an `NR`-wide row-interleaved panel, so the
//!   micro-kernel's inner loop reads two short contiguous runs per k step
//!   regardless of the original layouts. Packing also zero-pads edge tiles,
//!   which keeps the micro-kernel free of bounds logic for arbitrary m/n/k.
//! * The transposed variants [`matmul_tn`] / [`matmul_nt`] reuse the same
//!   micro-kernel — only the packing routines differ — so the gradient
//!   GEMMs run at the same throughput as the forward one (the old
//!   dot-product `nt` loop could not vectorise at all).
//!
//! The micro-kernel itself is pluggable (see [`kernel`](crate::kernel)):
//! an AVX2+FMA 6×16 tile on x86-64 CPUs that have it, the portable 4×8
//! auto-vectorised tile everywhere else, chosen per call at runtime. The
//! driver is generic over the kernel's tile shape, so packing, edge
//! handling, and parallel partitioning are written once.
//!
//! Work is parallelised over `MC`-row blocks of C via `par_chunks_mut`
//! (the persistent worker pool in the vendored `rayon`); each worker owns
//! stack-allocated pack buffers, so a matmul performs no heap allocation
//! beyond its output (and none at all through the `_into` variants).
//! Tile/block constants and retuning notes live in DESIGN.md §7 and §13.

use crate::kernel::{MicroKernel, Scalar4x8, MAX_MR, MAX_NR};
use crate::Tensor;
use rayon::prelude::*;

/// Tile height of the portable fallback micro-kernel (`Scalar4x8` in
/// the `kernel` module); the AVX2+FMA kernel uses a 6×16 tile. Kept
/// public as the canonical reference point for blocking math in docs
/// and benches.
pub const MR: usize = 4;
/// Tile width of the portable fallback micro-kernel.
pub const NR: usize = 8;
/// k-block: one A panel plus one B panel stay L1-resident for either
/// kernel (worst case 6·128·4 B + 128·16·4 B = 11 KiB of 32 KiB L1d).
pub const KC: usize = 128;
/// Row block: the unit of parallel partitioning and of A packing
/// (≤ `(MC+MAX_MR)·KC` floats = 36 KiB packed, L2-resident next to
/// streamed B panels).
pub const MC: usize = 64;

/// How the left operand is stored relative to the product `C = A·B`.
#[derive(Clone, Copy)]
enum AKind {
    /// `A: [m,k]` row-major; element `(i,p)` at `a[i·k + p]`.
    RowMajor,
    /// `A` stored `[k,m]` (the product uses `Aᵀ`); `(i,p)` at `a[p·m + i]`.
    Transposed,
}

/// How the right operand is stored relative to the product `C = A·B`.
#[derive(Clone, Copy)]
enum BKind {
    /// `B: [k,n]` row-major; element `(p,j)` at `b[p·n + j]`.
    RowMajor,
    /// `B` stored `[n,k]` (the product uses `Bᵀ`); `(p,j)` at `b[j·k + p]`.
    Transposed,
}

/// `C = A · B` for row-major `A: [m,k]`, `B: [k,n]`.
///
/// Panics if the inner dimensions disagree; shape errors here are programmer
/// bugs (layer wiring), not runtime data errors.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = Tensor::zeros([a.dims()[0], b.dims()[1]]);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` writing into a preallocated output tensor. Every element of
/// `c` is overwritten, so the buffer's previous contents are irrelevant.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    assert_eq!(c.dims(), &[m, n], "matmul output shape mismatch");
    gemm(
        a.data(),
        AKind::RowMajor,
        b.data(),
        BKind::RowMajor,
        m,
        n,
        k,
        c.data_mut(),
    );
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` → `C: [m,n]`, without
/// materialising the transpose. Used for weight gradients.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = Tensor::zeros([a.dims()[1], b.dims()[1]]);
    matmul_tn_into(a, b, &mut c);
    c
}

/// `C = Aᵀ · B` writing into a preallocated output tensor.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "matmul_tn lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "matmul_tn rhs must be rank 2");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");
    assert_eq!(c.dims(), &[m, n], "matmul_tn output shape mismatch");
    gemm(
        a.data(),
        AKind::Transposed,
        b.data(),
        BKind::RowMajor,
        m,
        n,
        k,
        c.data_mut(),
    );
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` → `C: [m,n]`, without
/// materialising the transpose. Used for input gradients and for the
/// `y = x·Wᵀ` forward of conv/linear layers.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = Tensor::zeros([a.dims()[0], b.dims()[0]]);
    matmul_nt_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` writing into a preallocated output tensor.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "matmul_nt lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "matmul_nt rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
    assert_eq!(c.dims(), &[m, n], "matmul_nt output shape mismatch");
    gemm(
        a.data(),
        AKind::RowMajor,
        b.data(),
        BKind::Transposed,
        m,
        n,
        k,
        c.data_mut(),
    );
}

/// Blocked driver shared by all three layout variants: dispatches once
/// per call to the widest micro-kernel the CPU (and any override)
/// allows, then runs the kernel-generic blocked loop.
#[allow(clippy::too_many_arguments)]
fn gemm(
    a: &[f32],
    akind: AKind,
    b: &[f32],
    bkind: BKind,
    m: usize,
    n: usize,
    k: usize,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::use_fma() {
        gemm_with::<crate::kernel::Fma6x16>(a, akind, b, bkind, m, n, k, c);
        return;
    }
    gemm_with::<Scalar4x8>(a, akind, b, bkind, m, n, k, c);
}

thread_local! {
    /// Reusable packed-B strip: one k-block of B packed once per k-block
    /// and shared (read-only) by every parallel row-block worker, instead
    /// of each worker re-packing the same panels. Thread-local and grown
    /// once, so steady-state matmuls perform no heap allocation. Taken
    /// out of the cell for the duration of a call (and restored after),
    /// so a re-entrant matmul on the same thread — possible when the
    /// pool's help-first wait runs another call's job — simply allocates
    /// its own buffer instead of aliasing this one.
    static BSTRIP: std::cell::Cell<Vec<f32>> = const { std::cell::Cell::new(Vec::new()) };
}

/// The kernel-generic blocked loop.
///
/// Per k-block, the whole `kc × n` B strip is packed once into a shared
/// thread-local buffer; C is then partitioned into `MC`-row blocks
/// processed in parallel, each worker packing its own A rows and running
/// the register-tiled micro-kernel over the shared strip. Interior tiles
/// take the kernel's direct-to-C vector store path
/// ([`MicroKernel::tile_into`]); edge tiles (zero-padded in the packed
/// panels) use the accumulator-buffer path with a scalar partial write.
/// The first k-block *stores* (so `c` need not be zeroed beforehand);
/// later k-blocks accumulate.
#[allow(clippy::too_many_arguments)]
fn gemm_with<K: MicroKernel>(
    a: &[f32],
    akind: AKind,
    b: &[f32],
    bkind: BKind,
    m: usize,
    n: usize,
    k: usize,
    c: &mut [f32],
) {
    let astride = match akind {
        AKind::RowMajor => k,
        AKind::Transposed => m,
    };
    let bstride = match bkind {
        BKind::RowMajor => n,
        BKind::Transposed => k,
    };
    let bpanels = n.div_ceil(K::NR);

    let mut strip = BSTRIP.take();
    strip.resize(bpanels * KC * K::NR, 0.0);
    {
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            for bp in 0..bpanels {
                let j0 = bp * K::NR;
                let nr = K::NR.min(n - j0);
                pack_b(
                    &mut strip[bp * kc * K::NR..(bp + 1) * kc * K::NR],
                    b,
                    bkind,
                    bstride,
                    j0,
                    nr,
                    pc,
                    kc,
                    K::NR,
                );
            }
            // Only the first `kc`-sized prefix of each panel slot is live
            // this k-block; slice it so `chunks_exact` yields exactly
            // `bpanels` panels.
            let strip: &[f32] = &strip[..bpanels * kc * K::NR];

            c.par_chunks_mut(MC * n)
                .enumerate()
                .for_each(|(blk, c_rows)| {
                    let row0 = blk * MC;
                    let rows = c_rows.len() / n;
                    // Stack-allocated A pack buffer sized for the widest
                    // kernel, allowing one partially-out-of-range panel
                    // (`MC` need not divide `K::MR`). No heap, no TLS.
                    let mut apack = [0.0f32; (MC + MAX_MR) * KC];
                    let panels = rows.div_ceil(K::MR);
                    pack_a(&mut apack, a, akind, astride, row0, rows, pc, kc, K::MR);

                    for (bp, bpanel) in strip.chunks_exact(kc * K::NR).enumerate() {
                        let j0 = bp * K::NR;
                        let nr = K::NR.min(n - j0);
                        for p in 0..panels {
                            let ap = &apack[p * kc * K::MR..(p + 1) * kc * K::MR];
                            let ir = p * K::MR;
                            let mr = K::MR.min(rows - ir);
                            if mr == K::MR && nr == K::NR {
                                let ctile = c_rows[ir * n + j0..].as_mut_ptr();
                                // SAFETY: `gemm` selected this kernel after
                                // its ISA check (`use_fma`; the scalar
                                // kernel needs none); panel slices satisfy
                                // the `kc·MR`/`kc·NR` length contract; the
                                // full `MR×NR` tile at `ctile` (row stride
                                // `n`) lies inside this worker's exclusive
                                // `c_rows` chunk.
                                unsafe { K::tile_into(kc, ap, bpanel, ctile, n, pc > 0) };
                            } else {
                                let mut acc = [[0.0f32; MAX_NR]; MAX_MR];
                                // SAFETY: as above, minus the C-tile
                                // clause (edge tiles are written through
                                // the bounds-checked scalar path below).
                                unsafe { K::tile(kc, ap, bpanel, &mut acc) };
                                write_tile(c_rows, n, ir, j0, mr, nr, &acc, pc > 0);
                            }
                        }
                    }
                });
            pc += KC;
        }
    }
    BSTRIP.set(strip);
}

/// Pack A rows `[row0, row0+rows)` × k `[pc, pc+kc)` into `tile_mr`-high
/// panels (the active kernel's tile height).
///
/// Panel `p` holds rows `row0 + p·tile_mr ..`, laid out k-major
/// (`tile_mr` contiguous values per k step, zero-padded past the last
/// real row) so the micro-kernel reads one short contiguous run per k
/// step.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    apack: &mut [f32],
    a: &[f32],
    kind: AKind,
    stride: usize,
    row0: usize,
    rows: usize,
    pc: usize,
    kc: usize,
    tile_mr: usize,
) {
    let panels = rows.div_ceil(tile_mr);
    debug_assert!(
        apack.len() >= panels * kc * tile_mr,
        "A pack buffer too small: {} < {}",
        apack.len(),
        panels * kc * tile_mr
    );
    for p in 0..panels {
        let r0 = row0 + p * tile_mr;
        let mr = tile_mr.min(row0 + rows - r0);
        let dst = &mut apack[p * kc * tile_mr..(p + 1) * kc * tile_mr];
        debug_assert!(mr >= 1, "empty A panel: rows={rows} p={p}");
        if mr < tile_mr {
            dst.fill(0.0); // zero-pad the edge panel once, then overwrite
        }
        match kind {
            AKind::RowMajor => {
                for r in 0..mr {
                    let src = &a[(r0 + r) * stride + pc..(r0 + r) * stride + pc + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        dst[kk * tile_mr + r] = v;
                    }
                }
            }
            AKind::Transposed => {
                for kk in 0..kc {
                    let src = &a[(pc + kk) * stride + r0..(pc + kk) * stride + r0 + mr];
                    dst[kk * tile_mr..kk * tile_mr + mr].copy_from_slice(src);
                }
            }
        }
    }
}

/// Pack the B strip columns `[j0, j0+nr)` × k `[pc, pc+kc)` into one
/// `tile_nr`-wide panel, k-major (`tile_nr` contiguous values per k
/// step), zero-padded past the last real column.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bpack: &mut [f32],
    b: &[f32],
    kind: BKind,
    stride: usize,
    j0: usize,
    nr: usize,
    pc: usize,
    kc: usize,
    tile_nr: usize,
) {
    debug_assert!(
        bpack.len() >= kc * tile_nr && (1..=tile_nr).contains(&nr),
        "B pack: len={} kc={kc} nr={nr}",
        bpack.len()
    );
    match kind {
        BKind::RowMajor => {
            for kk in 0..kc {
                let src = &b[(pc + kk) * stride + j0..(pc + kk) * stride + j0 + nr];
                let dst = &mut bpack[kk * tile_nr..(kk + 1) * tile_nr];
                dst[..nr].copy_from_slice(src);
                dst[nr..].fill(0.0);
            }
        }
        BKind::Transposed => {
            if nr < tile_nr {
                bpack[..kc * tile_nr].fill(0.0);
            }
            for j in 0..nr {
                let src = &b[(j0 + j) * stride + pc..(j0 + j) * stride + pc + kc];
                for (kk, &v) in src.iter().enumerate() {
                    bpack[kk * tile_nr + j] = v;
                }
            }
        }
    }
}

/// Write the valid `mr × nr` part of an accumulator tile to C rows
/// (`ir` is the row offset inside the worker's row block).
#[allow(clippy::too_many_arguments)]
#[inline]
fn write_tile(
    c_rows: &mut [f32],
    ldc: usize,
    ir: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    acc: &[[f32; MAX_NR]; MAX_MR],
    accumulate: bool,
) {
    debug_assert!(
        (1..=MAX_MR).contains(&mr) && (1..=MAX_NR).contains(&nr),
        "edge tile {mr}x{nr}"
    );
    for (r, acc_row) in acc.iter().enumerate().take(mr) {
        let dst = &mut c_rows[(ir + r) * ldc + j0..(ir + r) * ldc + j0 + nr];
        if accumulate {
            for (d, &v) in dst.iter_mut().zip(acc_row) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&acc_row[..nr]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn rand_t(dims: [usize; 2], seed: u64) -> Tensor {
        // Small deterministic pseudo-random fill without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
        t
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matches_naive_on_odd_sizes() {
        // Deliberately straddles every blocking boundary: m/n around MR/NR
        // and MC multiples, k around KC.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (33, 129, 17),
            (64, 64, 64),
            (70, 130, 40),
            (8, 8, 8),
            (9, 127, 9),
            (65, 128, 8),
            (63, 257, 15),
            (129, 256, 65),
        ] {
            let a = rand_t([m, k], (m * k) as u64);
            let b = rand_t([k, n], (k * n + 7) as u64);
            assert_close(&matmul(&a, &b), &naive(&a, &b));
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        for &(k, m, n) in &[(9, 5, 4), (130, 33, 17), (257, 8, 9)] {
            let a = rand_t([k, m], (k + m) as u64);
            let b = rand_t([k, n], (k + n + 3) as u64);
            assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose2(), &b));
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        for &(m, k, n) in &[(6, 8, 7), (33, 130, 19), (9, 257, 8)] {
            let a = rand_t([m, k], (m + k) as u64);
            let b = rand_t([n, k], (n + k + 5) as u64);
            assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose2()));
        }
    }

    #[test]
    fn into_variants_overwrite_dirty_buffers() {
        // `_into` outputs must not depend on prior buffer contents.
        let a = rand_t([13, 21], 1);
        let b = rand_t([21, 11], 2);
        let mut c = Tensor::full([13, 11], f32::NAN);
        matmul_into(&a, &b, &mut c);
        assert_close(&c, &naive(&a, &b));

        let at = rand_t([21, 13], 3);
        let mut c2 = Tensor::full([13, 11], 1e30);
        matmul_tn_into(&at, &b, &mut c2);
        assert_close(&c2, &matmul(&at.transpose2(), &b));

        let bt = rand_t([11, 21], 4);
        let mut c3 = Tensor::full([13, 11], -7.0);
        matmul_nt_into(&a, &bt, &mut c3);
        assert_close(&c3, &matmul(&a, &bt.transpose2()));
    }

    #[test]
    fn zero_inner_dimension_yields_zeros() {
        let a = Tensor::zeros([3, 0]);
        let b = Tensor::zeros([0, 4]);
        let mut c = Tensor::full([3, 4], 9.0);
        matmul_into(&a, &b, &mut c);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_t([5, 5], 11);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a);
        assert_close(&matmul(&eye, &a), &a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dim_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }

    /// Run one shape through a specific kernel, bypassing dispatch.
    fn gemm_k<K: MicroKernel>(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros([m, n]);
        gemm_with::<K>(
            a.data(),
            AKind::RowMajor,
            b.data(),
            BKind::RowMajor,
            m,
            n,
            k,
            c.data_mut(),
        );
        c
    }

    #[test]
    fn every_kernel_matches_naive_on_odd_sizes() {
        // Same boundary-straddling shapes as `matches_naive_on_odd_sizes`,
        // but pinned per kernel so both code paths are exercised in one
        // process regardless of dispatch state. Shapes around 6/16 edges
        // matter for the FMA tile; 4/8 edges for the scalar tile.
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 3, 15),
            (6, 128, 16),
            (7, 129, 17),
            (12, 64, 33),
            (65, 128, 31),
            (66, 130, 48),
            (129, 256, 65),
        ] {
            let a = rand_t([m, k], (m * k + 13) as u64);
            let b = rand_t([k, n], (k * n + 29) as u64);
            let want = naive(&a, &b);
            assert_close(&gemm_k::<Scalar4x8>(&a, &b), &want);
            #[cfg(target_arch = "x86_64")]
            if crate::kernel::fma_available() {
                assert_close(&gemm_k::<crate::kernel::Fma6x16>(&a, &b), &want);
            }
        }
    }
}
