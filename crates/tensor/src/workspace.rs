//! A scratch-buffer arena for allocation-free steady-state training.
//!
//! Every `conv`/`linear`/pool/batch-norm forward and backward needs
//! temporaries — patch matrices, activation outputs, gradient buffers. Fresh
//! `Tensor::zeros` per call means the inner training loop allocates (and
//! zero-initialises) megabytes per step. A [`Workspace`] instead keeps a pool
//! of previously used `Vec<f32>` buffers: layers check buffers out with
//! [`Workspace::take_tensor`], and return them with [`Workspace::recycle`]
//! once consumed. After one warm-up iteration the pool contains a buffer of
//! every size the network needs, and subsequent iterations perform **zero**
//! heap allocation in the hot loop — a property the stats counters make
//! testable (see `fresh_allocs`/`grows` in [`WorkspaceStats`]).
//!
//! Lifetime rules:
//! * Checked-out buffers have *unspecified contents* — callers must fully
//!   overwrite them (the `_into` kernels and layer code are written to do
//!   exactly that). Use [`Workspace::take_zeroed_tensor`] for scatter-add
//!   targets that genuinely need zeroing.
//! * A buffer may be returned to **any** workspace (or simply dropped); the
//!   pool is a cache, not an ownership ledger. Dropping instead of recycling
//!   is never unsound, merely a future allocation.
//! * The workspace is not thread-safe (`&mut self` everywhere); each
//!   training context owns one. `spatl-nn`'s `Network` embeds one so
//!   federated clients reuse it across local epochs.

use crate::{Shape, Tensor};

/// Counters describing a workspace's allocation behaviour.
///
/// The pair (`fresh_allocs`, `grows`) is the "did the hot loop allocate?"
/// signal: once a training step is in steady state, repeating it must leave
/// both unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total buffer checkouts over the workspace's lifetime.
    pub checkouts: u64,
    /// Checkouts that had to allocate a brand-new buffer.
    pub fresh_allocs: u64,
    /// Checkouts served by growing a pooled buffer's capacity.
    pub grows: u64,
    /// Maximum number of f32 elements checked out simultaneously.
    pub high_water_elements: usize,
}

/// A pool of reusable `f32` scratch buffers. See the module docs for the
/// checkout/return protocol.
#[derive(Default)]
pub struct Workspace {
    /// Returned buffers, unordered; checkout scans for the best capacity fit.
    free: Vec<Vec<f32>>,
    stats: WorkspaceStats,
    outstanding_elements: usize,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a buffer of exactly `len` elements with **unspecified
    /// contents** — the caller must overwrite every element it reads back.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.stats.checkouts += 1;
        self.outstanding_elements += len;
        self.stats.high_water_elements = self
            .stats
            .high_water_elements
            .max(self.outstanding_elements);

        // Best fit: the smallest pooled buffer whose capacity suffices, so
        // large buffers stay available for large requests.
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
        }
        if let Some(i) = best {
            let mut buf = self.free.swap_remove(i);
            buf.resize(len, 0.0); // shrink is free; capacity suffices
            return buf;
        }
        // No pooled buffer is big enough: grow the largest one rather than
        // letting the pool accumulate many never-again-sufficient buffers.
        let largest = (0..self.free.len()).max_by_key(|&i| self.free[i].capacity());
        if let Some(i) = largest {
            self.stats.grows += 1;
            let mut buf = self.free.swap_remove(i);
            buf.resize(len, 0.0);
            return buf;
        }
        self.stats.fresh_allocs += 1;
        vec![0.0; len]
    }

    /// Check out a tensor of `shape` with **unspecified contents**.
    pub fn take_tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.take(shape.numel());
        Tensor::from_vec(shape, buf).expect("workspace buffer length matches shape")
    }

    /// Check out a tensor of `shape` with every element set to `0.0` —
    /// for scatter-add targets.
    pub fn take_zeroed_tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let mut t = self.take_tensor(shape);
        t.data_mut().fill(0.0);
        t
    }

    /// Return a raw buffer to the pool.
    pub fn give(&mut self, buf: Vec<f32>) {
        self.outstanding_elements = self.outstanding_elements.saturating_sub(buf.len());
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Return a tensor's buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.give(t.into_vec());
    }

    /// Allocation counters accumulated so far.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Drop all pooled buffers (stats are retained).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

/// Cloning a workspace yields an **empty** one: pooled scratch memory is
/// per-context state, and cloning a `Network` (e.g. to seed a federated
/// client) must not duplicate megabytes of scratch.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("pooled_buffers", &self.free.len())
            .field(
                "pooled_elements",
                &self.free.iter().map(|b| b.capacity()).sum::<usize>(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_avoids_fresh_allocs() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        ws.give(a);
        let b = ws.take(80); // fits in the pooled 100-buffer
        assert_eq!(b.len(), 80);
        let s = ws.stats();
        assert_eq!(s.checkouts, 2);
        assert_eq!(s.fresh_allocs, 1);
        assert_eq!(s.grows, 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let big = ws.take(1000);
        let small = ws.take(10);
        ws.give(big);
        ws.give(small);
        let t = ws.take(8);
        assert!(
            t.capacity() < 1000,
            "picked the big buffer for a tiny request"
        );
        ws.give(t);
        // The 1000-capacity buffer must still be pooled for large requests.
        let big2 = ws.take(900);
        assert_eq!(ws.stats().fresh_allocs, 2);
        assert_eq!(big2.len(), 900);
    }

    #[test]
    fn grows_largest_when_nothing_fits() {
        let mut ws = Workspace::new();
        let a = ws.take(10);
        ws.give(a);
        let b = ws.take(10_000);
        assert_eq!(b.len(), 10_000);
        let s = ws.stats();
        assert_eq!(s.fresh_allocs, 1);
        assert_eq!(s.grows, 1);
    }

    #[test]
    fn high_water_tracks_concurrent_checkouts() {
        let mut ws = Workspace::new();
        let a = ws.take(30);
        let b = ws.take(20);
        ws.give(a);
        let c = ws.take(5);
        assert_eq!(ws.stats().high_water_elements, 50);
        ws.give(b);
        ws.give(c);
    }

    #[test]
    fn tensor_round_trip_and_zeroed() {
        let mut ws = Workspace::new();
        let mut t = ws.take_tensor([2, 3]);
        t.data_mut().fill(7.0);
        ws.recycle(t);
        let z = ws.take_zeroed_tensor([3, 2]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        assert_eq!(ws.stats().fresh_allocs, 1);
    }

    #[test]
    fn clone_is_empty() {
        let mut ws = Workspace::new();
        let a = ws.take(64);
        ws.give(a);
        let c = ws.clone();
        assert_eq!(c.pooled(), 0);
        assert_eq!(c.stats(), WorkspaceStats::default());
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        // Warm up: the sizes a "training step" needs.
        for _ in 0..2 {
            let a = ws.take(512);
            let b = ws.take(128);
            let c = ws.take(512);
            ws.give(a);
            ws.give(b);
            ws.give(c);
        }
        let warm = ws.stats();
        for _ in 0..10 {
            let a = ws.take(512);
            let b = ws.take(128);
            let c = ws.take(512);
            ws.give(a);
            ws.give(b);
            ws.give(c);
        }
        let s = ws.stats();
        assert_eq!(s.fresh_allocs, warm.fresh_allocs, "steady state allocated");
        assert_eq!(s.grows, warm.grows, "steady state grew a buffer");
    }
}
