//! The core dense tensor type.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major, contiguous f32 tensor.
///
/// `Tensor` is the single numeric container used throughout SPATL: layer
/// weights, activations, gradients, control variates and uploaded parameter
/// deltas are all `Tensor`s (or flat views thereof). It is deliberately
/// simple — owned storage, no views — because federated-learning bookkeeping
/// constantly serialises, slices and re-assembles parameters, and owning the
/// buffer keeps those operations obviously correct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Create a tensor of ones with the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Create a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Create a tensor from raw data, validating the element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::BadReshape {
                from: data.len(),
                to: shape.dims().to_vec(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Create a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from([data.len()]),
            data: data.to_vec(),
        }
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(Vec::new()),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterpret the tensor with a new shape of equal element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to: shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place reshape (no data copy).
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to: shape.dims().to_vec(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Copy of row `i` of a rank-2 tensor (or the `i`-th slab of the leading
    /// dimension for higher ranks).
    pub fn slab(&self, i: usize) -> Result<Tensor> {
        let d0 = self.shape.dim(0);
        if i >= d0 {
            return Err(TensorError::OutOfBounds { index: i, len: d0 });
        }
        let slab = self.numel() / d0;
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        Tensor::from_vec(rest, self.data[i * slab..(i + 1) * slab].to_vec())
    }

    /// Write `src` into the `i`-th slab of the leading dimension.
    pub fn set_slab(&mut self, i: usize, src: &Tensor) -> Result<()> {
        let d0 = self.shape.dim(0);
        if i >= d0 {
            return Err(TensorError::OutOfBounds { index: i, len: d0 });
        }
        let slab = self.numel() / d0;
        if src.numel() != slab {
            return Err(TensorError::ShapeMismatch {
                op: "set_slab",
                lhs: self.shape.dims().to_vec(),
                rhs: src.shape.dims().to_vec(),
            });
        }
        self.data[i * slab..(i + 1) * slab].copy_from_slice(src.data());
        Ok(())
    }

    /// Stack rank-(k) tensors of identical shape into one rank-(k+1) tensor.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * inner.numel());
        for t in items {
            if t.shape != inner {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: inner.dims().to_vec(),
                    rhs: t.shape.dims().to_vec(),
                });
            }
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        Tensor::from_vec(dims, data)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires rank-2 tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: Shape::from([n, m]),
            data: out,
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} (", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full([2], 3.5);
        assert_eq!(f.data(), &[3.5, 3.5]);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec([2, 2], vec![1.0; 5]).is_err());
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::zeros([2, 3]);
        assert!(t.reshape([3, 2]).is_ok());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn slab_extracts_rows() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r1 = t.slab(1).unwrap();
        assert_eq!(r1.data(), &[4., 5., 6.]);
        assert_eq!(r1.dims(), &[3]);
        assert!(t.slab(2).is_err());
    }

    #[test]
    fn stack_and_set_slab() {
        let a = Tensor::from_slice(&[1., 2.]);
        let b = Tensor::from_slice(&[3., 4.]);
        let s = Tensor::stack(&[a.clone(), b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1., 2., 3., 4.]);
        let mut s2 = s.clone();
        s2.set_slab(0, &Tensor::from_slice(&[9., 9.])).unwrap();
        assert_eq!(s2.data(), &[9., 9., 3., 4.]);
    }

    #[test]
    fn transpose2_swaps() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose2();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
