//! Dense f32 tensor primitives for the SPATL federated learning stack.
//!
//! This crate provides the numeric substrate for everything above it: a
//! row-major contiguous [`Tensor`] with the element-wise operations,
//! reductions, matrix multiplication, and `im2col`/`col2im` transforms that
//! the neural-network layers in `spatl-nn` are built from.
//!
//! Design notes:
//! * All tensors are owned, contiguous, row-major `Vec<f32>` buffers. The
//!   models in this project are small enough that views/strides would buy
//!   complexity, not speed; convolution goes through explicit `im2col`.
//! * Matrix multiplication is a packed, register-tiled, rayon-parallel
//!   kernel (see `matmul` module docs), which is where essentially all
//!   training time is spent. Hot paths use the `_into` kernel variants plus
//!   a [`Workspace`] scratch arena so steady-state training performs zero
//!   heap allocation; freshly allocated outputs are written exactly once.
//! * Random initialisation is deterministic given a seed (ChaCha8), so every
//!   experiment in the benchmark harness is reproducible.

#![deny(missing_docs)]

mod im2col;
mod init;
mod kernel;
mod matmul;
mod ops;
mod shape;
mod tensor;
mod workspace;

pub use im2col::{col2im, col2im_into, im2col, im2col_into, Conv2dGeometry};
pub use init::TensorRng;
pub use kernel::{active_kernel, force_scalar};
pub use matmul::{
    matmul, matmul_into, matmul_nt, matmul_nt_into, matmul_tn, matmul_tn_into, KC, MC, MR, NR,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors raised by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Context string identifying the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// A reshape was requested whose element count differs from the source.
    BadReshape {
        /// Source element count.
        from: usize,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An index was out of bounds for the tensor.
    OutOfBounds {
        /// Offending index.
        index: usize,
        /// Length of the dimension indexed.
        len: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from} elements into {to:?}")
            }
            TensorError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
