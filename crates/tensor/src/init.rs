//! Deterministic random tensor initialisation.
//!
//! All randomness in the SPATL stack flows through [`TensorRng`], a ChaCha8
//! generator seeded explicitly, so that every experiment in the benchmark
//! harness is reproducible bit-for-bit across runs and thread counts.

use crate::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// A deterministic random number generator for tensor initialisation and
/// stochastic algorithms (client sampling, Gaussian policies, data synthesis).
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: ChaCha8Rng,
}

impl TensorRng {
    /// Create a generator from an explicit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator; used to give each federated
    /// client its own stream without coupling to iteration order.
    pub fn fork(&mut self, salt: u64) -> TensorRng {
        let s = self.rng.gen::<u64>() ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        TensorRng::seed_from(s)
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        Uniform::new(lo, hi).sample(&mut self.rng)
    }

    /// Standard normal sample scaled by `std` around `mean`.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        Normal::new(mean, std)
            .expect("std must be finite")
            .sample(&mut self.rng)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n).
    pub fn choose_k(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }

    /// Access the underlying rand RNG for distribution sampling.
    pub fn raw(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Tensor with i.i.d. `N(mean, std)` entries.
    pub fn normal_tensor(&mut self, shape: impl Into<crate::Shape>, mean: f32, std: f32) -> Tensor {
        let mut t = Tensor::zeros(shape.into());
        for v in t.data_mut() {
            *v = self.normal(mean, std);
        }
        t
    }

    /// Tensor with i.i.d. `U[lo, hi)` entries.
    pub fn uniform_tensor(&mut self, shape: impl Into<crate::Shape>, lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(shape.into());
        for v in t.data_mut() {
            *v = self.uniform(lo, hi);
        }
        t
    }

    /// Kaiming (He) uniform initialisation for a weight tensor whose fan-in
    /// is `fan_in`: `U[-bound, bound]` with `bound = sqrt(6 / fan_in)`.
    pub fn kaiming_uniform(&mut self, shape: impl Into<crate::Shape>, fan_in: usize) -> Tensor {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        self.uniform_tensor(shape, -bound, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(42);
        let mut b = TensorRng::seed_from(42);
        for _ in 0..16 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let xs: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        assert_eq!(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
    }

    #[test]
    fn choose_k_gives_distinct_sorted() {
        let mut r = TensorRng::seed_from(9);
        let ks = r.choose_k(10, 4);
        assert_eq!(ks.len(), 4);
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, ks);
    }

    #[test]
    fn kaiming_bound_respected() {
        let mut r = TensorRng::seed_from(5);
        let t = r.kaiming_uniform([64, 9], 9);
        let bound = (6.0f32 / 9.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not all zeros.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn normal_tensor_moments_roughly_right() {
        let mut r = TensorRng::seed_from(11);
        let t = r.normal_tensor([10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
