//! Property-based tests for tensor invariants.

use proptest::prelude::*;
use spatl_tensor::{col2im, im2col, matmul, matmul_nt, matmul_tn, Conv2dGeometry, Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

/// Matrix dimensions that deliberately straddle the packed kernel's tile and
/// block boundaries (MR = 4, NR = 8, MC = 64), not just small values.
fn dim_near_tiles() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..12,
        Just(31usize),
        Just(32usize),
        Just(33usize),
        Just(63usize),
        Just(64usize),
        Just(65usize),
    ]
}

/// Inner dimensions that cross the KC = 128 k-blocking boundary.
fn inner_near_kc() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..12, Just(127usize), Just(128usize), Just(129usize)]
}

/// Deterministic pseudo-random tensor fill (LCG), values roughly in ±0.5.
fn lcg_tensor(dims: [usize; 2], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut st = seed.wrapping_add(0x9e37);
    for v in t.data_mut() {
        st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
        *v = ((st >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
    }
    t
}

/// Reference triple-loop product of row-major `a` (`m`×`k`) and `b` (`k`×`n`).
fn naive_mm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aik = a[i * k + p];
            for j in 0..n {
                c[i * n + j] += aik * b[p * n + j];
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn numel_matches_strides_extent(dims in small_dims()) {
        let s = Shape::new(dims.clone());
        let strides = s.strides();
        // Offset of the last element + 1 equals numel for non-empty shapes.
        let last: Vec<usize> = dims.iter().map(|d| d - 1).collect();
        prop_assert_eq!(s.offset(&last) + 1, s.numel());
        prop_assert_eq!(strides.len(), dims.len());
    }

    #[test]
    fn add_is_commutative(v in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let a = Tensor::from_slice(&v);
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_round_trips(v in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let a = Tensor::from_slice(&v);
        let b = a.map(|x| x.sin());
        let r = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in r.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_is_linear_in_norm(v in prop::collection::vec(-10.0f32..10.0, 1..64), k in -4.0f32..4.0) {
        let a = Tensor::from_slice(&v);
        let s = a.scaled(k);
        prop_assert!((s.norm() - k.abs() * a.norm()).abs() < 1e-2 * (1.0 + a.norm()));
    }

    #[test]
    fn transpose_is_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let mut t = Tensor::zeros([m, n]);
        let mut state = seed.wrapping_add(1);
        for v in t.data_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = (state >> 40) as f32 / 1e6;
        }
        let tt = t.transpose2().transpose2();
        prop_assert_eq!(t.data(), tt.data());
        prop_assert_eq!(t.dims(), tt.dims());
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..100) {
        let fill = |dims: [usize; 2], s: u64| {
            let mut t = Tensor::zeros(dims);
            let mut st = s.wrapping_add(99);
            for v in t.data_mut() {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v = ((st >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
            }
            t
        };
        let a = fill([m, k], seed);
        let b1 = fill([k, n], seed + 1);
        let b2 = fill([k, n], seed + 2);
        let lhs = matmul(&a, &b1.add(&b2).unwrap());
        let rhs = matmul(&a, &b1).add(&matmul(&a, &b2)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn packed_matmul_matches_naive(
        m in dim_near_tiles(),
        k in inner_near_kc(),
        n in dim_near_tiles(),
        seed in 0u64..1000,
    ) {
        let a = lcg_tensor([m, k], seed);
        let b = lcg_tensor([k, n], seed + 1);
        let want = naive_mm(a.data(), b.data(), m, k, n);
        let got = matmul(&a, &b);
        prop_assert_eq!(got.dims(), &[m, n]);
        for (x, y) in got.data().iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn packed_matmul_tn_matches_naive(
        m in dim_near_tiles(),
        k in inner_near_kc(),
        n in dim_near_tiles(),
        seed in 0u64..1000,
    ) {
        // a is stored transposed ([k, m]); compare against naive on aᵀ·b.
        let at = lcg_tensor([k, m], seed);
        let b = lcg_tensor([k, n], seed + 1);
        let want = naive_mm(at.transpose2().data(), b.data(), m, k, n);
        let got = matmul_tn(&at, &b);
        prop_assert_eq!(got.dims(), &[m, n]);
        for (x, y) in got.data().iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn packed_matmul_nt_matches_naive(
        m in dim_near_tiles(),
        k in inner_near_kc(),
        n in dim_near_tiles(),
        seed in 0u64..1000,
    ) {
        // b is stored transposed ([n, k]); compare against naive on a·bᵀ.
        let a = lcg_tensor([m, k], seed);
        let bt = lcg_tensor([n, k], seed + 1);
        let want = naive_mm(a.data(), bt.transpose2().data(), m, k, n);
        let got = matmul_nt(&a, &bt);
        prop_assert_eq!(got.dims(), &[m, n]);
        for (x, y) in got.data().iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(c in 1usize..3, h in 3usize..7, w in 3usize..7, k in 1usize..4, seed in 0u64..100) {
        let k = k.min(h).min(w);
        let g = Conv2dGeometry { in_channels: c, in_h: h, in_w: w, kernel: k, stride: 1, padding: 1 };
        let mut x = Tensor::zeros([1, c, h, w]);
        let mut st = seed.wrapping_add(5);
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for v in x.data_mut() { *v = next(); }
        let cols = im2col(&x, &g);
        let mut y = Tensor::zeros(cols.dims().to_vec());
        for v in y.data_mut() { *v = next(); }
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, &g, 1)).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn reshape_preserves_data(v in prop::collection::vec(-5.0f32..5.0, 12..13)) {
        let t = Tensor::from_slice(&v);
        let r = t.reshape([3, 4]).unwrap().reshape([2, 6]).unwrap().reshape([12]).unwrap();
        prop_assert_eq!(r.data(), t.data());
    }

    #[test]
    fn softmax_rows_are_distributions(b in 1usize..5, c in 2usize..8, seed in 0u64..100) {
        let mut t = Tensor::zeros([b, c]);
        let mut st = seed.wrapping_add(17);
        for v in t.data_mut() {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = ((st >> 33) as f32 / (1u64 << 28) as f32) - 4.0;
        }
        let s = t.softmax_rows();
        for i in 0..b {
            let row = &s.data()[i * c..(i + 1) * c];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
