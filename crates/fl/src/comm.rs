//! Byte-accurate communication accounting (Eq. 13 of the paper).
//!
//! All parameters are f32 (4 bytes). Per round and per participating
//! client the model charges:
//!
//! | algorithm | download | upload |
//! |---|---|---|
//! | FedAvg / FedProx | weights | weights (or top-k / f16 under an [`UploadCodec`]) |
//! | SCAFFOLD | weights + control | weights + control |
//! | FedNova | weights + aggregated momentum | normalised grad + momentum |
//! | SPATL | encoder + control | selected values + channel indices |
//!
//! SPATL's server re-derives each client's control-variate update from the
//! uploaded delta (`Δcᵢ = −c − δᵢ/(K·η)`, a rearrangement of SCAFFOLD's
//! option II), so no control bytes travel upstream; the selection indices
//! are *channel* indices (one u32 per surviving channel), which is the
//! "negligible burden" of §IV-C1.
//!
//! This accounting is *logical*: it charges each upload once, matching
//! Eq. 13's idealised cost. Under an injected [`FaultPlan`] a corrupted
//! upload is retransmitted, and those extra copies are real traffic — they
//! appear in the measured [`WireBytes::upload_framed`] (multiplied by the
//! transmission count), never here. The two views are cross-checked every
//! round before the multiplication is applied.
//!
//! [`FaultPlan`]: crate::FaultPlan
//! [`WireBytes::upload_framed`]: crate::WireBytes
//! [`UploadCodec`]: crate::UploadCodec

use serde::{Deserialize, Serialize};

/// Bytes moved in one round, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundBytes {
    /// Server → client bytes.
    pub download: u64,
    /// Client → server bytes.
    pub upload: u64,
}

impl RoundBytes {
    /// Total bytes both directions.
    pub fn total(&self) -> u64 {
        self.download + self.upload
    }
}

/// Communication cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommModel;

impl CommModel {
    /// FedAvg / FedProx: dense weights both ways.
    pub fn dense(n_params: usize) -> RoundBytes {
        RoundBytes {
            download: 4 * n_params as u64,
            upload: 4 * n_params as u64,
        }
    }

    /// FedAvg / FedProx with a top-k sparse upload codec
    /// ([`UploadCodec::TopK`]): dense download, `8k` upload (one f32
    /// value and one u32 flat index per kept coordinate — the flat-index
    /// analogue of SPATL's per-channel accounting).
    ///
    /// [`UploadCodec::TopK`]: crate::UploadCodec::TopK
    pub fn dense_topk(n_params: usize, k: usize) -> RoundBytes {
        RoundBytes {
            download: 4 * n_params as u64,
            upload: 8 * k as u64,
        }
    }

    /// FedAvg / FedProx with an f16-quantized upload codec
    /// ([`UploadCodec::F16`]): dense download, half-precision upload.
    ///
    /// [`UploadCodec::F16`]: crate::UploadCodec::F16
    pub fn dense_f16(n_params: usize) -> RoundBytes {
        RoundBytes {
            download: 4 * n_params as u64,
            upload: 2 * n_params as u64,
        }
    }

    /// SCAFFOLD: weights + control variate both ways (the paper's "≈2×
    /// FedAvg per round").
    pub fn scaffold(n_params: usize) -> RoundBytes {
        RoundBytes {
            download: 8 * n_params as u64,
            upload: 8 * n_params as u64,
        }
    }

    /// FedNova: the server broadcasts the model plus the aggregated
    /// normalised-momentum buffer, clients upload the normalised gradient
    /// plus local momentum — matching the paper's reported ≈2× FedAvg
    /// per-round cost.
    pub fn fednova(n_params: usize) -> RoundBytes {
        RoundBytes {
            download: 8 * n_params as u64,
            upload: 8 * n_params as u64,
        }
    }

    /// SPATL: the encoder and the server control variate downstream; the
    /// selected parameter values plus per-channel indices upstream.
    pub fn spatl(
        encoder_params: usize,
        selected_params: usize,
        selected_channels: usize,
        gradient_control: bool,
    ) -> RoundBytes {
        let down_ctrl = if gradient_control {
            4 * encoder_params as u64
        } else {
            0
        };
        RoundBytes {
            download: 4 * encoder_params as u64 + down_ctrl,
            upload: 4 * selected_params as u64 + 4 * selected_channels as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaffold_doubles_fedavg() {
        let p = 1000;
        assert_eq!(
            CommModel::scaffold(p).total(),
            2 * CommModel::dense(p).total()
        );
    }

    #[test]
    fn fednova_doubles_fedavg() {
        let p = 500;
        assert_eq!(
            CommModel::fednova(p).total(),
            2 * CommModel::dense(p).total()
        );
    }

    #[test]
    fn codec_uploads_shrink_dense() {
        let p = 1000;
        let dense = CommModel::dense(p);
        let f16 = CommModel::dense_f16(p);
        let topk = CommModel::dense_topk(p, 100);
        assert_eq!(f16.download, dense.download);
        assert_eq!(topk.download, dense.download);
        assert_eq!(f16.upload, dense.upload / 2);
        assert_eq!(topk.upload, 8 * 100);
        // Top-k stops paying below keeping half the coordinates.
        assert!(CommModel::dense_topk(p, p / 2).upload == dense.upload);
    }

    #[test]
    fn spatl_upload_shrinks_with_selection() {
        let full = CommModel::spatl(1000, 1000, 0, true);
        let half = CommModel::spatl(1000, 500, 32, true);
        assert!(half.upload < full.upload);
        assert_eq!(half.download, full.download);
        // Index overhead is per-channel, tiny next to the values.
        assert_eq!(half.upload, 4 * 500 + 4 * 32);
    }

    #[test]
    fn spatl_without_control_downloads_less() {
        let with = CommModel::spatl(1000, 500, 10, true);
        let without = CommModel::spatl(1000, 500, 10, false);
        assert_eq!(without.download, with.download / 2);
    }

    #[test]
    fn spatl_cheaper_than_scaffold_at_same_params() {
        // The headline claim: with selection, SPATL per-round cost is well
        // below SCAFFOLD's at identical model size.
        let p = 10_000;
        let spatl = CommModel::spatl(p, p / 2, 64, true);
        assert!(spatl.total() < CommModel::scaffold(p).total());
    }
}
