//! Server-side global state and aggregation rules.
//!
//! Every algorithm's published rule lives behind
//! [`AggregatorKind::WeightedMean`] (the default), implemented by the
//! streaming [`StreamState`](crate::StreamState) fold — one upload at a
//! time over fixed-size exact accumulators, so the same code path serves
//! the batch callers here and the concurrent networked coordinator
//! (DESIGN.md §12). The robust variants
//! ([`AggregatorKind::NormClippedMean`],
//! [`AggregatorKind::CoordinateMedian`],
//! [`AggregatorKind::CoordinateTrimmedMean`]) re-express each rule around
//! a per-coordinate robust statistic so a Byzantine minority cannot
//! control the aggregate; DESIGN.md §9 discusses the trade-offs.

use crate::accumulate::StreamState;
use crate::screen::{all_finite, median_in_place, update_rms};
use crate::{AggregatorKind, Algorithm, FlConfig, LocalOutcome};
use serde::{Deserialize, Serialize};
use spatl_models::SplitModel;

/// The server's view of the world: the shared parameter vector, the global
/// control variate (SCAFFOLD / SPATL) and averaged batch-norm buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalState {
    /// Shared parameters (encoder, plus predictor for non-transfer
    /// algorithms).
    pub shared: Vec<f32>,
    /// Global control variate `c` (same length as `shared`; empty when the
    /// algorithm doesn't use control).
    pub control: Vec<f32>,
    /// Aggregated momentum buffer broadcast by FedNova (empty otherwise).
    pub momentum: Vec<f32>,
    /// Batch-norm running statistics, averaged across uploads.
    pub buffers: Vec<f32>,
}

impl GlobalState {
    /// Initialise the global state from a freshly built model.
    pub fn from_model(model: &SplitModel, algorithm: &Algorithm) -> Self {
        let include_pred = !algorithm.uses_transfer();
        let shared = crate::client::read_shared(model, include_pred);
        let control = if algorithm.uses_control() {
            vec![0.0; shared.len()]
        } else {
            Vec::new()
        };
        let momentum = if matches!(algorithm, Algorithm::FedNova) {
            vec![0.0; shared.len()]
        } else {
            Vec::new()
        };
        let mut m = model.clone();
        let buffers = m.encoder.buffers_flat();
        GlobalState {
            shared,
            control,
            momentum,
            buffers,
        }
    }

    /// Aggregate one round of client outcomes (Eq. 12 for SPATL; the
    /// respective published rule for each baseline). Diverged uploads are
    /// rejected. `n_clients_total` is N in the control-variate update.
    ///
    /// `outcomes` is whatever cohort *survived* the round — under partial
    /// participation (dropouts, missed deadlines, exhausted retries) every
    /// rule renormalises over the survivors: FedAvg/FedProx reweight by
    /// surviving sample counts, FedNova recomputes τ_eff over survivors,
    /// SCAFFOLD averages deltas over the survivor count while its control
    /// update keeps the 1/N scaling (the published partial-participation
    /// rule), and SPATL's per-index counts simply see fewer votes.
    ///
    /// Returns `true` if an update was applied; `false` means the round
    /// was a no-op (no survivors, all survivors diverged, or zero total
    /// sample weight) and the global state is untouched — never NaN.
    pub fn aggregate(
        &mut self,
        cfg: &FlConfig,
        outcomes: &[LocalOutcome],
        n_clients_total: usize,
    ) -> bool {
        let valid: Vec<&LocalOutcome> = outcomes.iter().filter(|o| !o.diverged).collect();
        if valid.is_empty() {
            return false;
        }
        match cfg.aggregator {
            AggregatorKind::WeightedMean => {
                let mut acc = StreamState::new(cfg, self, n_clients_total);
                for o in &valid {
                    acc.fold(o);
                }
                acc.finalize(self)
            }
            AggregatorKind::NormClippedMean => {
                let clipped = clip_to_median_rms(&valid);
                if clipped.is_empty() {
                    // Every upload carried non-finite values: nothing
                    // aggregatable survived the clip — a no-op round.
                    return false;
                }
                let mut acc = StreamState::new(cfg, self, n_clients_total);
                for o in &clipped {
                    acc.fold(o);
                }
                acc.finalize(self)
            }
            AggregatorKind::CoordinateMedian => {
                self.aggregate_coordinatewise(cfg, &valid, n_clients_total, RobustStat::Median)
            }
            AggregatorKind::CoordinateTrimmedMean { trim_ratio } => self.aggregate_coordinatewise(
                cfg,
                &valid,
                n_clients_total,
                RobustStat::TrimmedMean(trim_ratio),
            ),
        }
    }

    /// Robust per-coordinate aggregation
    /// ([`AggregatorKind::CoordinateMedian`] /
    /// [`AggregatorKind::CoordinateTrimmedMean`]): each algorithm's rule is
    /// re-expressed around `stat` applied coordinate-wise over the cohort.
    /// Sample weights are deliberately ignored — a Byzantine client could
    /// lie about its shard size to buy weight — so the honest-round result
    /// differs (slightly) from the published weighted rules:
    ///
    /// * FedAvg/FedProx: `x ← x + η_g · stat({δᵢ})`.
    /// * FedNova: the per-client *normalised* directions `τ_eff·δᵢ/τᵢ` are
    ///   combined by `stat` (τ_eff keeps its data-weighted definition over
    ///   the survivors); the momentum broadcast is `stat` over the uploaded
    ///   buffers.
    /// * SCAFFOLD: `x ← x + η_g · stat({δᵢ})`;
    ///   `c ← c + (|S|/N) · stat({Δcᵢ})` — the published `(1/N)·Σ` equals
    ///   `(|S|/N)·mean`, with the mean swapped for the robust statistic.
    /// * SPATL (Eq. 12): per index, `stat` runs over the subset of clients
    ///   whose salient selection uploaded that index — the channel-granular
    ///   equivalent of the dense rules; gradient control mirrors SCAFFOLD
    ///   with the per-index participation count in place of `|S|`.
    /// * Batch-norm buffers are combined per coordinate by `stat`.
    fn aggregate_coordinatewise(
        &mut self,
        cfg: &FlConfig,
        valid: &[&LocalOutcome],
        n_clients_total: usize,
        stat: RobustStat,
    ) -> bool {
        let p = self.shared.len();
        let inv_n = 1.0 / n_clients_total as f32;
        let eta_eff = cfg.lr / (1.0 - cfg.momentum).max(1e-3);
        let mut sample: Vec<f32> = Vec::with_capacity(valid.len());

        match cfg.algorithm {
            Algorithm::FedAvg | Algorithm::FedProx { .. } => {
                for j in 0..p {
                    sample.clear();
                    sample.extend(valid.iter().map(|o| o.delta[j]));
                    self.shared[j] += cfg.server_lr * stat.apply(&mut sample);
                }
            }
            Algorithm::FedNova => {
                let total: f32 = valid.iter().map(|o| o.n_samples as f32).sum();
                if total <= 0.0 {
                    return false;
                }
                let tau_eff: f32 = valid
                    .iter()
                    .map(|o| (o.n_samples as f32 / total) * o.tau as f32)
                    .sum();
                for j in 0..p {
                    sample.clear();
                    sample.extend(
                        valid
                            .iter()
                            .map(|o| tau_eff * o.delta[j] / o.tau.max(1) as f32),
                    );
                    self.shared[j] += cfg.server_lr * stat.apply(&mut sample);
                }
                if valid.iter().any(|o| o.velocity.is_some()) {
                    let mut momentum = vec![0.0f32; p];
                    #[allow(clippy::needless_range_loop)] // j indexes every upload
                    for j in 0..p {
                        sample.clear();
                        sample.extend(
                            valid.iter().filter_map(|o| {
                                o.velocity.as_ref().and_then(|v| v.get(j)).copied()
                            }),
                        );
                        if !sample.is_empty() {
                            momentum[j] = stat.apply(&mut sample);
                        }
                    }
                    self.momentum = momentum;
                }
            }
            Algorithm::Scaffold => {
                let s_over_n = valid.len() as f32 * inv_n;
                let mut cd_sample: Vec<f32> = Vec::with_capacity(valid.len());
                for j in 0..p {
                    sample.clear();
                    cd_sample.clear();
                    for o in valid {
                        sample.push(o.delta[j]);
                        let scale = 1.0 / (o.tau.max(1) as f32 * eta_eff);
                        cd_sample.push(match &o.control_delta {
                            Some(cd) => cd[j],
                            None => -self.control[j] - o.delta[j] * scale,
                        });
                    }
                    self.shared[j] += cfg.server_lr * stat.apply(&mut sample);
                    self.control[j] += s_over_n * stat.apply(&mut cd_sample);
                }
            }
            Algorithm::Spatl(opts) => {
                // Gather per index the (value, control scale) contributions
                // of the clients whose selection uploaded that index; the
                // robust statistic then runs over exactly that subset.
                let mut votes: Vec<Vec<(f32, f32)>> = vec![Vec::new(); p];
                for o in valid {
                    let scale = 1.0 / (o.tau.max(1) as f32 * eta_eff);
                    match &o.selected {
                        Some(sel) => {
                            for (k, &i) in sel.indices.iter().enumerate() {
                                votes[i as usize].push((sel.values[k], scale));
                            }
                        }
                        None => {
                            for (j, v) in votes.iter_mut().enumerate() {
                                v.push((o.delta[j], scale));
                            }
                        }
                    }
                }
                let mut cd_sample: Vec<f32> = Vec::with_capacity(valid.len());
                for (j, v) in votes.iter().enumerate() {
                    if v.is_empty() {
                        continue;
                    }
                    sample.clear();
                    sample.extend(v.iter().map(|&(val, _)| val));
                    self.shared[j] += cfg.server_lr * stat.apply(&mut sample);
                    if opts.gradient_control {
                        cd_sample.clear();
                        cd_sample.extend(v.iter().map(|&(val, sc)| -self.control[j] - val * sc));
                        self.control[j] += v.len() as f32 * inv_n * stat.apply(&mut cd_sample);
                    }
                }
            }
        }

        // Batch-norm buffers: the robust statistic per coordinate, over the
        // uploads whose buffer vector matches the session shape.
        if !self.buffers.is_empty() {
            let senders: Vec<&&LocalOutcome> = valid
                .iter()
                .filter(|o| o.buffers.len() == self.buffers.len())
                .collect();
            if !senders.is_empty() {
                let mut acc = vec![0.0f32; self.buffers.len()];
                #[allow(clippy::needless_range_loop)] // j indexes every upload
                for j in 0..self.buffers.len() {
                    sample.clear();
                    sample.extend(senders.iter().map(|o| o.buffers[j]));
                    acc[j] = stat.apply(&mut sample);
                }
                self.buffers = acc;
            }
        }
        true
    }
}

/// Which robust location statistic [`GlobalState::aggregate`] applies per
/// coordinate.
#[derive(Debug, Clone, Copy)]
enum RobustStat {
    /// The coordinate-wise median.
    Median,
    /// The coordinate-wise trimmed mean (fraction trimmed from each tail);
    /// falls back to the median when trimming would consume the sample.
    TrimmedMean(f32),
}

impl RobustStat {
    /// Apply the statistic to a scratch sample (sorted in place).
    fn apply(&self, xs: &mut [f32]) -> f32 {
        match *self {
            RobustStat::Median => median_in_place(xs),
            RobustStat::TrimmedMean(ratio) => {
                let n = xs.len();
                let k = (ratio * n as f32).floor() as usize;
                if n <= 2 * k {
                    return median_in_place(xs);
                }
                xs.sort_unstable_by(f32::total_cmp);
                let kept = &xs[k..n - k];
                kept.iter().sum::<f32>() / kept.len() as f32
            }
        }
    }
}

/// Clip every update to the cohort's median RMS
/// ([`AggregatorKind::NormClippedMean`]): each outcome's aggregated
/// vectors (delta, salient values, control step, momentum) are scaled by
/// `min(1, median_rms / rms)` so no single upload can out-magnitude the
/// cohort, then fed through the ordinary weighted-mean rule.
///
/// Uploads carrying any non-finite value are **dropped** from the clipped
/// cohort — IEEE arithmetic cannot scale a poison away (`NaN × 0 = NaN`,
/// `∞ × 0 = NaN`), so exclusion is the only zeroing that holds. The
/// weighted-mean rule then renormalises over the survivors exactly as it
/// does for dropouts; a cohort with no finite upload comes back empty and
/// the caller turns the round into a no-op — the global state is never
/// touched by a non-finite value.
fn clip_to_median_rms(valid: &[&LocalOutcome]) -> Vec<LocalOutcome> {
    let finite: Vec<&LocalOutcome> = valid.iter().copied().filter(|o| all_finite(o)).collect();
    let norms: Vec<f32> = finite.iter().map(|o| update_rms(o)).collect();
    // An RMS can still overflow to ∞ on finite-but-huge values; such
    // uploads are unboundedly out of scale and get clipped to zero (safe:
    // their entries are finite), and they never vote on the median.
    let mut usable: Vec<f32> = norms.iter().copied().filter(|n| n.is_finite()).collect();
    if usable.is_empty() {
        return finite
            .iter()
            .map(|o| {
                let mut c = (*o).clone();
                scale_update(&mut c, 0.0);
                c
            })
            .collect();
    }
    let median = median_in_place(&mut usable);
    finite
        .iter()
        .zip(&norms)
        .map(|(o, &rms)| {
            let mut c = (*o).clone();
            let factor = if !rms.is_finite() {
                0.0
            } else if rms > median && rms > 0.0 {
                median / rms
            } else {
                1.0
            };
            if factor != 1.0 {
                scale_update(&mut c, factor);
            }
            c
        })
        .collect()
}

/// Scale every aggregated vector of an outcome (batch-norm statistics are
/// running means, not updates — they are left untouched).
fn scale_update(o: &mut LocalOutcome, factor: f32) {
    for x in &mut o.delta {
        *x *= factor;
    }
    if let Some(sel) = &mut o.selected {
        for x in &mut sel.values {
            *x *= factor;
        }
    }
    if let Some(cd) = &mut o.control_delta {
        for x in cd {
            *x *= factor;
        }
    }
    if let Some(v) = &mut o.velocity {
        for x in v {
            *x *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommModel, SpatlOptions};

    fn outcome(id: usize, delta: Vec<f32>, n: usize, tau: usize) -> LocalOutcome {
        LocalOutcome {
            client_id: id,
            n_samples: n,
            tau,
            delta,
            selected: None,
            compressed: None,
            control_delta: None,
            velocity: None,
            buffers: Vec::new(),
            diverged: false,
            bytes: CommModel::dense(0),
            wire: crate::WireBytes::default(),
            frames: Vec::new(),
            keep_ratio: 1.0,
            flops_ratio: 1.0,
        }
    }

    fn base_cfg(algorithm: Algorithm) -> FlConfig {
        FlConfig::new(algorithm)
    }

    #[test]
    fn fedavg_weights_by_samples() {
        let mut g = GlobalState {
            shared: vec![0.0; 2],
            control: Vec::new(),
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let cfg = base_cfg(Algorithm::FedAvg);
        let o1 = outcome(0, vec![1.0, 0.0], 30, 1);
        let o2 = outcome(1, vec![0.0, 2.0], 10, 1);
        g.aggregate(&cfg, &[o1, o2], 2);
        assert!((g.shared[0] - 0.75).abs() < 1e-6);
        assert!((g.shared[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn diverged_updates_rejected() {
        let mut g = GlobalState {
            shared: vec![0.0; 1],
            control: Vec::new(),
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let cfg = base_cfg(Algorithm::FedAvg);
        let mut bad = outcome(0, vec![f32::NAN], 10, 1);
        bad.diverged = true;
        let good = outcome(1, vec![1.0], 10, 1);
        g.aggregate(&cfg, &[bad, good], 2);
        assert!((g.shared[0] - 1.0).abs() < 1e-6);
        assert!(g.shared[0].is_finite());
    }

    #[test]
    fn fednova_normalises_by_tau() {
        // Client A does 10 steps, client B does 1 step of the same
        // per-step progress; FedNova should weight their *directions*
        // equally (with equal sample counts), unlike FedAvg.
        let mut g = GlobalState {
            shared: vec![0.0; 1],
            control: Vec::new(),
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let cfg = base_cfg(Algorithm::FedNova);
        let fast = outcome(0, vec![10.0], 10, 10); // per-step progress 1.0
        let slow = outcome(1, vec![1.0], 10, 1); // per-step progress 1.0
        g.aggregate(&cfg, &[fast, slow], 2);
        // τ_eff = 5.5; update = 5.5 · (0.5·1.0 + 0.5·1.0) = 5.5.
        assert!((g.shared[0] - 5.5).abs() < 1e-4, "{}", g.shared[0]);
    }

    #[test]
    fn scaffold_control_moves_towards_minus_delta() {
        let mut g = GlobalState {
            shared: vec![0.0; 1],
            control: vec![0.0; 1],
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let mut cfg = base_cfg(Algorithm::Scaffold);
        cfg.lr = 0.1;
        cfg.momentum = 0.0;
        let o = outcome(0, vec![-0.5], 10, 5);
        g.aggregate(&cfg, &[o], 10);
        // Δc = −c − δ/(τ·η_eff) = 0.5/(0.5) = 1.0; c += 1/N = 0.1.
        assert!((g.control[0] - 0.1).abs() < 1e-5, "{}", g.control[0]);
        assert!((g.shared[0] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn spatl_only_updates_selected_indices() {
        let mut g = GlobalState {
            shared: vec![0.0; 4],
            control: vec![0.0; 4],
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let cfg = base_cfg(Algorithm::Spatl(SpatlOptions::default()));
        let mut o1 = outcome(0, vec![1.0, 1.0, 1.0, 1.0], 10, 1);
        o1.selected = Some(crate::SelectedUpdate {
            indices: vec![0, 2],
            values: vec![1.0, 3.0],
            channels: 2,
            channel_ids: Vec::new(),
        });
        let mut o2 = outcome(1, vec![2.0, 2.0, 2.0, 2.0], 10, 1);
        o2.selected = Some(crate::SelectedUpdate {
            indices: vec![0],
            values: vec![2.0],
            channels: 1,
            channel_ids: Vec::new(),
        });
        g.aggregate(&cfg, &[o1, o2], 2);
        // Index 0: mean(1, 2) = 1.5. Index 2: 3.0. Indices 1, 3: untouched.
        assert!((g.shared[0] - 1.5).abs() < 1e-6);
        assert_eq!(g.shared[1], 0.0);
        assert!((g.shared[2] - 3.0).abs() < 1e-6);
        assert_eq!(g.shared[3], 0.0);
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let mut g = GlobalState {
            shared: vec![1.0; 2],
            control: Vec::new(),
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let cfg = base_cfg(Algorithm::FedAvg);
        assert!(!g.aggregate(&cfg, &[], 5));
        assert_eq!(g.shared, vec![1.0, 1.0]);
    }

    #[test]
    fn norm_clipped_mean_drops_non_finite_uploads() {
        // Regression (REVIEW): multiplying NaN/∞ by zero keeps the poison
        // (IEEE: NaN×0 = NaN), so "zeroing" a non-finite upload must be
        // an outright drop. Without any ScreenPolicy, NormClippedMean
        // alone has to keep the global model finite.
        let mut g = GlobalState {
            shared: vec![0.0; 2],
            control: Vec::new(),
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let mut cfg = base_cfg(Algorithm::FedAvg);
        cfg.aggregator = AggregatorKind::NormClippedMean;
        let cohort = [
            outcome(0, vec![1.0, 1.0], 10, 1),
            outcome(1, vec![1.0, -1.0], 10, 1),
            outcome(2, vec![f32::NAN, f32::INFINITY], 10, 1),
        ];
        assert!(g.aggregate(&cfg, &cohort, 3));
        assert!(
            g.shared.iter().all(|v| v.is_finite()),
            "a NaN upload must never poison the clipped mean, got {:?}",
            g.shared
        );
        // The poisoned upload is excluded outright: the result is the
        // weighted mean of the two honest uploads alone.
        assert!((g.shared[0] - cfg.server_lr).abs() < 1e-6);
        assert!(g.shared[1].abs() < 1e-6);
    }

    #[test]
    fn norm_clipped_mean_drops_uploads_with_non_finite_auxiliaries() {
        // The finiteness verdict covers every aggregated vector, not just
        // the delta: a poisoned SCAFFOLD control step must not reach the
        // control-variate update.
        let mut g = GlobalState {
            shared: vec![0.0; 1],
            control: vec![0.0; 1],
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let mut cfg = base_cfg(Algorithm::Scaffold);
        cfg.aggregator = AggregatorKind::NormClippedMean;
        let mut bad = outcome(0, vec![1.0], 10, 1);
        bad.control_delta = Some(vec![f32::NAN]);
        let mut good = outcome(1, vec![1.0], 10, 1);
        good.control_delta = Some(vec![0.5]);
        assert!(g.aggregate(&cfg, &[bad, good], 2));
        assert!(g.shared[0].is_finite());
        assert!(g.control[0].is_finite());
    }

    #[test]
    fn norm_clipped_mean_all_non_finite_round_is_a_no_op() {
        let mut g = GlobalState {
            shared: vec![0.5, 0.25],
            control: Vec::new(),
            momentum: Vec::new(),
            buffers: vec![1.0, 2.0],
        };
        let mut cfg = base_cfg(Algorithm::FedAvg);
        cfg.aggregator = AggregatorKind::NormClippedMean;
        let mut bad0 = outcome(0, vec![f32::NAN, 1.0], 10, 1);
        bad0.buffers = vec![1.0, 2.0];
        let mut bad1 = outcome(1, vec![1.0, f32::INFINITY], 10, 1);
        bad1.buffers = vec![1.0, 2.0];
        assert!(!g.aggregate(&cfg, &[bad0, bad1], 2), "no-op round expected");
        assert_eq!(g.shared, vec![0.5, 0.25], "global state untouched");
        assert_eq!(g.buffers, vec![1.0, 2.0], "buffers untouched");
    }

    #[test]
    fn zero_sample_survivors_never_produce_nan() {
        // Regression: when every survivor has an empty shard the
        // sample-weighted rules used to divide by zero. The round must be
        // reported as a no-op with the global state untouched instead.
        for alg in [Algorithm::FedAvg, Algorithm::FedNova] {
            let mut g = GlobalState {
                shared: vec![1.0; 2],
                control: Vec::new(),
                momentum: Vec::new(),
                buffers: Vec::new(),
            };
            let cfg = base_cfg(alg);
            let o = outcome(0, vec![0.5, 0.5], 0, 1);
            assert!(!g.aggregate(&cfg, &[o], 4), "{alg:?}");
            assert_eq!(g.shared, vec![1.0, 1.0], "{alg:?}");
            assert!(g.shared.iter().all(|v| v.is_finite()));
        }
    }
}
