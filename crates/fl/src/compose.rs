//! Hierarchical composition: how a 2-tier (edge → root) topology
//! reproduces — or provably approximates — flat aggregation.
//!
//! The tree topology splits the client population into contiguous edge
//! slices ([`edge_partition`]). Each edge collects its slice of the
//! round's cohort, screens locally, and forwards one combined upload
//! upstream (`spatl_wire::tier::EdgeCombined`). The root then composes
//! the edges' contributions under one of two regimes, chosen per
//! aggregator by [`exact_composition`]:
//!
//! * **Exact** ([`AggregatorKind::WeightedMean`],
//!   [`AggregatorKind::NormClippedMean`]): edges forward the survivors'
//!   original sealed upload frames verbatim; the root decodes them,
//!   merges all edges' survivors in ascending client-id order and runs
//!   the ordinary flat fold ([`fold_exact`]). Since PR 7 that flat fold
//!   is the streaming accumulator (DESIGN.md §12), whose integer
//!   carry-save sums make the fold order-independent outright —
//!   [`fold_exact`]'s ascending-id sort is kept for the ledger and the
//!   f32 bookkeeping, and replaying the flat fold over the original
//!   uploads remains bit-identical to the flat coordinator for every
//!   algorithm, dropouts included
//!   (survivor renormalisation happens once, at the root, over exactly
//!   the survivor set a flat coordinator would have seen). The
//!   median-RMS clip of `NormClippedMean` needs the *global* cohort's
//!   median, which is a second reason these aggregators cannot be
//!   pre-reduced at the edge.
//!
//! * **Reduced** ([`AggregatorKind::CoordinateMedian`],
//!   [`AggregatorKind::CoordinateTrimmedMean`]): each edge pre-reduces
//!   its cohort per coordinate ([`reduce_cohort`]) and the root applies
//!   the same statistic across the edge summaries
//!   ([`aggregate_reduced`]) — a median-of-medians / trimmed-mean-of-
//!   trimmed-means. This is *not* bit-identical to flat, but it is
//!   bounded: both statistics satisfy `stat(S) ∈ [min S, max S]`, so
//!   the composed statistic and the flat statistic both lie inside the
//!   per-coordinate envelope of the clients' contributions, giving
//!   `|composed_j − flat_j| ≤ server_lr · (max_j − min_j)` per round and
//!   coordinate (for FedNova the envelope is widened by evaluating each
//!   client's normalised direction under both the global τ_eff and its
//!   edge's local τ_eff_e). The property tests in `tests/compose.rs`
//!   assert exactly this bound.
//!
//! Screening is delegated to the tier closest to the clients: edges run
//! the configured [`ScreenPolicy`](crate::ScreenPolicy) over their local
//! cohort and the root does not re-screen. With no policy configured
//! (the default) this is vacuously identical to flat; with an active
//! policy the stage-2 median-RMS reference is each edge's local cohort
//! rather than the global one — a documented semantic difference of the
//! tree topology (DESIGN.md §11).

use std::ops::Range;

use spatl_wire::{EdgeEntry, EdgeReduced, EdgeSelection, TierFaultCounters};

use crate::screen::median_in_place;
use crate::{
    AggregatorKind, Algorithm, FaultRecord, FlConfig, GlobalState, LocalOutcome, RoundBytes,
    RoundDriver, WireBytes,
};

/// Split `n_clients` into `n_edges` contiguous, near-equal slices — the
/// canonical client→edge assignment every tier participant (root, edge
/// binaries, experiment roster) derives independently from the shared
/// session flags. The first `n_clients % n_edges` slices are one client
/// larger.
pub fn edge_partition(n_clients: usize, n_edges: usize) -> Vec<Range<usize>> {
    assert!(n_edges > 0, "a tiered topology needs at least one edge");
    assert!(
        n_edges <= n_clients,
        "cannot spread {n_clients} clients over {n_edges} edges"
    );
    let base = n_clients / n_edges;
    let extra = n_clients % n_edges;
    let mut ranges = Vec::with_capacity(n_edges);
    let mut start = 0;
    for e in 0..n_edges {
        let len = base + usize::from(e < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Whether `aggregator` composes exactly across tiers (edges forward the
/// survivors' original frames and the root replays the flat fold) or via
/// a pre-reduced, bounded-ε summary.
pub fn exact_composition(aggregator: &AggregatorKind) -> bool {
    matches!(
        aggregator,
        AggregatorKind::WeightedMean | AggregatorKind::NormClippedMean
    )
}

/// Root-side exact composition: merge the edges' already-screened
/// survivors in ascending client-id order and run the ordinary flat
/// aggregation fold. The counterpart of
/// [`RoundDriver::screen_and_aggregate`] for cohorts the edges screened
/// — the root must *not* re-screen, so the policy runs exactly once per
/// upload. Fills the ledger's `survivors`/`no_op` fields like the
/// screening path does.
pub fn fold_exact(
    driver: &mut RoundDriver,
    mut survivors: Vec<LocalOutcome>,
    faults: &mut FaultRecord,
) -> bool {
    survivors.sort_by_key(|o| o.client_id);
    faults.survivors = survivors.len();
    let applied = driver
        .global
        .aggregate(&driver.cfg, &survivors, driver.cfg.n_clients);
    faults.no_op = !applied;
    applied
}

/// The robust per-coordinate statistic of `cfg.aggregator`, applied to a
/// scratch sample (sorted in place). Mirrors the private statistic the
/// server's robust aggregation uses; `tests/compose.rs` pins the two
/// together by asserting single-edge reduction reproduces flat robust
/// aggregation bit-for-bit.
fn robust_stat(aggregator: &AggregatorKind, xs: &mut [f32]) -> f32 {
    match aggregator {
        AggregatorKind::CoordinateMedian => median_in_place(xs),
        AggregatorKind::CoordinateTrimmedMean { trim_ratio } => {
            let n = xs.len();
            let k = (trim_ratio * n as f32).floor() as usize;
            if n <= 2 * k {
                return median_in_place(xs);
            }
            xs.sort_unstable_by(f32::total_cmp);
            let kept = &xs[k..n - k];
            kept.iter().sum::<f32>() / kept.len() as f32
        }
        other => unreachable!(
            "reduced composition is only defined for robust aggregators, not {}",
            other.name()
        ),
    }
}

/// Edge-side pre-reduction for the robust aggregators: collapse the
/// edge's surviving cohort into the per-coordinate robust statistic the
/// root composes across edges. `broadcast` is the global state the
/// clients trained against this round (the edge's decode of the round's
/// download frames) — it supplies the control variate for the SCAFFOLD /
/// SPATL server-side control-step derivation and the buffer shape.
///
/// Returns `None` when no survivor is aggregatable (everyone diverged,
/// or zero total sample weight under FedNova) — the edge then reports
/// `survivors = 0` and contributes nothing to the round.
///
/// Panics if `cfg.aggregator` composes exactly ([`exact_composition`]);
/// exact aggregators forward frames instead of reducing.
pub fn reduce_cohort(
    cfg: &FlConfig,
    cohort: &[LocalOutcome],
    broadcast: &GlobalState,
) -> Option<EdgeReduced> {
    assert!(
        !exact_composition(&cfg.aggregator),
        "reduce_cohort called for exactly-composable aggregator {}",
        cfg.aggregator.name()
    );
    let valid: Vec<&LocalOutcome> = cohort.iter().filter(|o| !o.diverged).collect();
    if valid.is_empty() {
        return None;
    }
    let p = broadcast.shared.len();
    let eta_eff = cfg.lr / (1.0 - cfg.momentum).max(1e-3);
    let mut red = EdgeReduced {
        survivors: valid.len() as u32,
        n_samples: valid.iter().map(|o| o.n_samples as u64).sum(),
        ..Default::default()
    };
    let mut sample: Vec<f32> = Vec::with_capacity(valid.len());

    match cfg.algorithm {
        Algorithm::FedAvg | Algorithm::FedProx { .. } => {
            red.delta = (0..p)
                .map(|j| {
                    sample.clear();
                    sample.extend(valid.iter().map(|o| o.delta[j]));
                    robust_stat(&cfg.aggregator, &mut sample)
                })
                .collect();
        }
        Algorithm::FedNova => {
            let total: f32 = valid.iter().map(|o| o.n_samples as f32).sum();
            if total <= 0.0 {
                return None;
            }
            let tau_eff: f32 = valid
                .iter()
                .map(|o| (o.n_samples as f32 / total) * o.tau as f32)
                .sum();
            red.tau_eff = tau_eff;
            red.delta = (0..p)
                .map(|j| {
                    sample.clear();
                    sample.extend(
                        valid
                            .iter()
                            .map(|o| tau_eff * o.delta[j] / o.tau.max(1) as f32),
                    );
                    robust_stat(&cfg.aggregator, &mut sample)
                })
                .collect();
            if valid.iter().any(|o| o.velocity.is_some()) {
                red.velocity = (0..p)
                    .map(|j| {
                        sample.clear();
                        sample.extend(
                            valid
                                .iter()
                                .filter_map(|o| o.velocity.as_ref().and_then(|v| v.get(j)))
                                .copied(),
                        );
                        if sample.is_empty() {
                            0.0
                        } else {
                            robust_stat(&cfg.aggregator, &mut sample)
                        }
                    })
                    .collect();
            }
        }
        Algorithm::Scaffold => {
            let mut delta = Vec::with_capacity(p);
            let mut control_delta = Vec::with_capacity(p);
            let mut cd_sample: Vec<f32> = Vec::with_capacity(valid.len());
            for j in 0..p {
                sample.clear();
                cd_sample.clear();
                for o in &valid {
                    sample.push(o.delta[j]);
                    let scale = 1.0 / (o.tau.max(1) as f32 * eta_eff);
                    cd_sample.push(match &o.control_delta {
                        Some(cd) => cd[j],
                        None => -broadcast.control[j] - o.delta[j] * scale,
                    });
                }
                delta.push(robust_stat(&cfg.aggregator, &mut sample));
                control_delta.push(robust_stat(&cfg.aggregator, &mut cd_sample));
            }
            red.delta = delta;
            red.control_delta = control_delta;
        }
        Algorithm::Spatl(opts) => {
            let mut votes: Vec<Vec<(f32, f32)>> = vec![Vec::new(); p];
            for o in &valid {
                let scale = 1.0 / (o.tau.max(1) as f32 * eta_eff);
                match &o.selected {
                    Some(sel) => {
                        for (k, &i) in sel.indices.iter().enumerate() {
                            votes[i as usize].push((sel.values[k], scale));
                        }
                    }
                    None => {
                        for (j, v) in votes.iter_mut().enumerate() {
                            v.push((o.delta[j], scale));
                        }
                    }
                }
            }
            let mut sel = EdgeSelection::default();
            let mut cd_sample: Vec<f32> = Vec::with_capacity(valid.len());
            for (j, v) in votes.iter().enumerate() {
                if v.is_empty() {
                    continue;
                }
                sample.clear();
                sample.extend(v.iter().map(|&(val, _)| val));
                sel.indices.push(j as u32);
                sel.values.push(robust_stat(&cfg.aggregator, &mut sample));
                sel.counts.push(v.len() as u32);
                if opts.gradient_control {
                    cd_sample.clear();
                    cd_sample.extend(v.iter().map(|&(val, sc)| -broadcast.control[j] - val * sc));
                    sel.control_values
                        .push(robust_stat(&cfg.aggregator, &mut cd_sample));
                }
            }
            red.selection = Some(sel);
        }
    }

    if !broadcast.buffers.is_empty() {
        let senders: Vec<&&LocalOutcome> = valid
            .iter()
            .filter(|o| o.buffers.len() == broadcast.buffers.len())
            .collect();
        if !senders.is_empty() {
            red.buffers = (0..broadcast.buffers.len())
                .map(|j| {
                    sample.clear();
                    sample.extend(senders.iter().map(|o| o.buffers[j]));
                    robust_stat(&cfg.aggregator, &mut sample)
                })
                .collect();
        }
    }
    Some(red)
}

/// Root-side reduced composition: apply the robust statistic *across*
/// the edges' [`EdgeReduced`] summaries — median-of-medians /
/// trimmed-mean-of-trimmed-means — and fold the result into the global
/// state under each algorithm's rule. Edges reporting zero survivors
/// (or a shape that does not match the session) contribute nothing.
///
/// Returns `true` when an update was applied; `false` means a no-op
/// round (no edge carried an aggregatable summary) and the global state
/// is untouched.
pub fn aggregate_reduced(
    global: &mut GlobalState,
    cfg: &FlConfig,
    edges: &[EdgeReduced],
    n_clients_total: usize,
) -> bool {
    let p = global.shared.len();
    let inv_n = 1.0 / n_clients_total as f32;
    let mut sample: Vec<f32> = Vec::with_capacity(edges.len());

    match cfg.algorithm {
        Algorithm::FedAvg
        | Algorithm::FedProx { .. }
        | Algorithm::FedNova
        | Algorithm::Scaffold => {
            let active: Vec<&EdgeReduced> = edges
                .iter()
                .filter(|e| e.survivors > 0 && e.delta.len() == p)
                .collect();
            if active.is_empty() {
                return false;
            }
            for j in 0..p {
                sample.clear();
                sample.extend(active.iter().map(|e| e.delta[j]));
                global.shared[j] += cfg.server_lr * robust_stat(&cfg.aggregator, &mut sample);
            }
            if matches!(cfg.algorithm, Algorithm::Scaffold) {
                let total_survivors: u32 = active.iter().map(|e| e.survivors).sum();
                let s_over_n = total_survivors as f32 * inv_n;
                let carriers: Vec<&&EdgeReduced> = active
                    .iter()
                    .filter(|e| e.control_delta.len() == p)
                    .collect();
                if !carriers.is_empty() {
                    for j in 0..p {
                        sample.clear();
                        sample.extend(carriers.iter().map(|e| e.control_delta[j]));
                        global.control[j] += s_over_n * robust_stat(&cfg.aggregator, &mut sample);
                    }
                }
            }
            if matches!(cfg.algorithm, Algorithm::FedNova) {
                let carriers: Vec<&&EdgeReduced> =
                    active.iter().filter(|e| e.velocity.len() == p).collect();
                if !carriers.is_empty() {
                    let mut momentum = vec![0.0f32; p];
                    #[allow(clippy::needless_range_loop)] // j indexes every summary
                    for j in 0..p {
                        sample.clear();
                        sample.extend(carriers.iter().map(|e| e.velocity[j]));
                        momentum[j] = robust_stat(&cfg.aggregator, &mut sample);
                    }
                    global.momentum = momentum;
                }
            }
        }
        Algorithm::Spatl(opts) => {
            // Merge the edges' per-index summaries: for each index any
            // edge selected, the statistic runs over the edge values and
            // the participation count is the sum of the edge counts.
            let mut votes: Vec<Vec<f32>> = vec![Vec::new(); p];
            let mut cd_votes: Vec<Vec<f32>> = vec![Vec::new(); p];
            let mut counts = vec![0u64; p];
            let mut any = false;
            for e in edges.iter().filter(|e| e.survivors > 0) {
                let Some(sel) = &e.selection else { continue };
                for (k, &i) in sel.indices.iter().enumerate() {
                    let j = i as usize;
                    if j >= p {
                        continue;
                    }
                    any = true;
                    votes[j].push(sel.values[k]);
                    counts[j] += sel.counts[k] as u64;
                    if let Some(&cv) = sel.control_values.get(k) {
                        cd_votes[j].push(cv);
                    }
                }
            }
            if !any {
                return false;
            }
            for j in 0..p {
                if votes[j].is_empty() {
                    continue;
                }
                global.shared[j] += cfg.server_lr * robust_stat(&cfg.aggregator, &mut votes[j]);
                if opts.gradient_control && !cd_votes[j].is_empty() {
                    global.control[j] +=
                        counts[j] as f32 * inv_n * robust_stat(&cfg.aggregator, &mut cd_votes[j]);
                }
            }
        }
    }

    if !global.buffers.is_empty() {
        let senders: Vec<&EdgeReduced> = edges
            .iter()
            .filter(|e| e.survivors > 0 && e.buffers.len() == global.buffers.len())
            .collect();
        if !senders.is_empty() {
            let mut acc = vec![0.0f32; global.buffers.len()];
            #[allow(clippy::needless_range_loop)] // j indexes every summary
            for j in 0..global.buffers.len() {
                sample.clear();
                sample.extend(senders.iter().map(|e| e.buffers[j]));
                acc[j] = robust_stat(&cfg.aggregator, &mut sample);
            }
            global.buffers = acc;
        }
    }
    true
}

/// Snapshot the numeric counters of a fault ledger for the wire — the
/// edge→root half of tree-wide ledger composition. Events stay local.
///
/// The `retry_*` counters travel for completeness but only the
/// *simulator's* retry loop ever increments them: networked paths (flat
/// coordinator, edges) have no retry protocol and record a failed
/// decode as `CorruptUpload` alone.
pub fn fault_counters(record: &FaultRecord) -> TierFaultCounters {
    TierFaultCounters {
        sampled: record.sampled as u32,
        dropouts: record.dropouts as u32,
        stragglers: record.stragglers as u32,
        deadline_dropped: record.deadline_dropped as u32,
        corrupted_uploads: record.corrupted_uploads as u32,
        retries: record.retries as u32,
        retry_exhausted: record.retry_exhausted as u32,
        local_divergence: record.local_divergence as u32,
        byzantine: record.byzantine as u32,
        quarantined: record.quarantined as u32,
        duplicates: record.duplicates as u32,
    }
}

/// Fold one edge's counters into the root's round ledger (the root→tree
/// half of ledger composition): with every edge live, the root's
/// counters equal what a flat coordinator would have recorded.
pub fn fold_fault_counters(into: &mut FaultRecord, counters: &TierFaultCounters) {
    into.sampled += counters.sampled as usize;
    into.dropouts += counters.dropouts as usize;
    into.stragglers += counters.stragglers as usize;
    into.deadline_dropped += counters.deadline_dropped as usize;
    into.corrupted_uploads += counters.corrupted_uploads as usize;
    into.retries += counters.retries as usize;
    into.retry_exhausted += counters.retry_exhausted as usize;
    into.local_divergence += counters.local_divergence as usize;
    into.byzantine += counters.byzantine as usize;
    into.quarantined += counters.quarantined as usize;
    into.duplicates += counters.duplicates as usize;
}

/// Build the wire bookkeeping entry for one collected client, from the
/// metadata half of its outcome. `frames` carries the client's sealed
/// upload frames under exact composition, and is empty otherwise.
pub fn outcome_entry(meta: &LocalOutcome, accuracy: f32, frames: Vec<Vec<u8>>) -> EdgeEntry {
    EdgeEntry {
        client_id: meta.client_id as u32,
        n_samples: meta.n_samples as u64,
        tau: meta.tau as u64,
        diverged: meta.diverged,
        keep_ratio: meta.keep_ratio,
        flops_ratio: meta.flops_ratio,
        accuracy,
        bytes_download: meta.bytes.download,
        bytes_upload: meta.bytes.upload,
        upload_payload: meta.wire.upload_payload,
        upload_framed: meta.wire.upload_framed,
        frames,
    }
}

/// Rebuild the bookkeeping half of a [`LocalOutcome`] from a forwarded
/// entry — the tier analogue of reading a client's `RoundDone` header;
/// tensor fields stay empty until the entry's frames are decoded.
pub fn entry_outcome(entry: &EdgeEntry) -> LocalOutcome {
    LocalOutcome {
        client_id: entry.client_id as usize,
        n_samples: entry.n_samples as usize,
        tau: entry.tau as usize,
        delta: Vec::new(),
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: entry.diverged,
        bytes: RoundBytes {
            download: entry.bytes_download,
            upload: entry.bytes_upload,
        },
        wire: WireBytes {
            download_payload: 0,
            download_framed: 0,
            upload_payload: entry.upload_payload,
            upload_framed: entry.upload_framed,
        },
        frames: Vec::new(),
        keep_ratio: entry.keep_ratio,
        flops_ratio: entry.flops_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_contiguously_and_near_equally() {
        for (n, k) in [(4, 2), (5, 2), (7, 3), (3, 3), (10, 4)] {
            let ranges = edge_partition(n, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[k - 1].end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(w[0].len() >= w[1].len(), "larger slices first");
            }
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal: {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn partition_rejects_more_edges_than_clients() {
        edge_partition(2, 3);
    }

    #[test]
    fn exactness_follows_the_aggregator() {
        assert!(exact_composition(&AggregatorKind::WeightedMean));
        assert!(exact_composition(&AggregatorKind::NormClippedMean));
        assert!(!exact_composition(&AggregatorKind::CoordinateMedian));
        assert!(!exact_composition(&AggregatorKind::CoordinateTrimmedMean {
            trim_ratio: 0.25
        }));
    }

    #[test]
    fn entry_round_trips_outcome_bookkeeping() {
        let mut o = LocalOutcome {
            client_id: 3,
            n_samples: 18,
            tau: 4,
            delta: vec![1.0],
            selected: None,
            compressed: None,
            control_delta: None,
            velocity: None,
            buffers: Vec::new(),
            diverged: true,
            bytes: RoundBytes {
                download: 11,
                upload: 7,
            },
            wire: WireBytes {
                download_payload: 0,
                download_framed: 0,
                upload_payload: 5,
                upload_framed: 9,
            },
            frames: Vec::new(),
            keep_ratio: 0.5,
            flops_ratio: 0.25,
        };
        let entry = outcome_entry(&o, 0.0, Vec::new());
        let back = entry_outcome(&entry);
        o.delta.clear(); // tensors do not travel in the entry
        assert_eq!(back.client_id, o.client_id);
        assert_eq!(back.n_samples, o.n_samples);
        assert_eq!(back.tau, o.tau);
        assert_eq!(back.diverged, o.diverged);
        assert_eq!(back.bytes, o.bytes);
        assert_eq!(back.wire, o.wire);
        assert_eq!(back.keep_ratio, o.keep_ratio);
        assert_eq!(back.flops_ratio, o.flops_ratio);
    }

    #[test]
    fn ledger_counters_compose_additively() {
        let mut a = FaultRecord::for_sample(3);
        a.dropouts = 1;
        a.quarantined = 2;
        let mut b = FaultRecord::for_sample(2);
        b.corrupted_uploads = 1;
        b.retry_exhausted = 1;
        b.duplicates = 1;
        let mut root = FaultRecord::default();
        fold_fault_counters(&mut root, &fault_counters(&a));
        fold_fault_counters(&mut root, &fault_counters(&b));
        assert_eq!(root.sampled, 5);
        assert_eq!(root.dropouts, 1);
        assert_eq!(root.quarantined, 2);
        assert_eq!(root.corrupted_uploads, 1);
        assert_eq!(root.retry_exhausted, 1);
        assert_eq!(root.duplicates, 1);
    }
}
