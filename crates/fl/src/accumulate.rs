//! Streaming, order-independent round aggregation.
//!
//! The batch rules in [`GlobalState::aggregate`] used to fold a fully
//! collected `Vec<LocalOutcome>` — O(cohort · model) server memory. This
//! module re-expresses every [`AggregatorKind::WeightedMean`] rule as a
//! **streaming accumulator**: [`StreamState::fold`] absorbs one upload at
//! a time into fixed-size state and [`StreamState::finalize`] applies the
//! round in one pass, so a 10 000-client round needs O(model) memory on
//! the server (DESIGN.md §12).
//!
//! # Order independence
//!
//! A concurrent coordinator cannot promise arrival order, and f32
//! addition is not associative — a naive running f32 (or f64) sum would
//! make the global model depend on which socket drained first. The fold
//! is therefore built on [`ExactSums`]: a per-coordinate *integer*
//! carry-save accumulator over the fixed-point grid `2^-149` (the f32
//! subnormal LSB). Each weighted term `±m·2^e · w` (mantissa `m < 2^24`,
//! integer weight `w < 2^64`) is decomposed exactly into 32-bit chunks
//! added into `i64` limbs; integer addition **is** associative and
//! commutative, so any permutation or interleaving of `fold` calls
//! yields bit-identical limbs, and the deterministic `finalize` ladder
//! yields a bit-identical model. Per-upload f32 pre-terms (FedNova's
//! `δ/τ`, SCAFFOLD's control fallback) depend only on that upload plus
//! the round's broadcast snapshot, never on fold order.
//!
//! Cohort-level scalars (total samples, `τ_eff`, survivor counts) are
//! accumulated as exact `u128` side-sums and applied once at finalize.
//! Non-finite uploads cannot be represented on the grid; they are
//! tracked in commutative per-coordinate bitsets and reproduce the IEEE
//! verdict (`NaN` dominates, opposing infinities collide to `NaN`) at
//! finalize.
//!
//! # The one fold
//!
//! [`GlobalState::aggregate`] routes its `WeightedMean` and (post-clip)
//! `NormClippedMean` paths through [`StreamState`], so the simulator,
//! the flat coordinator, and the tiered composition layer all share this
//! fold — it is *the* fold, not a parallel second implementation. Rules
//! that inherently need the whole cohort (`CoordinateMedian`,
//! `CoordinateTrimmedMean`, median-RMS screening, NormClippedMean's
//! median clip factor) spill: [`RoundAccumulator`] buffers those uploads
//! and deterministically slots them by client id before the batch pass,
//! trading the O(cohort · model) ceiling back in — explicitly, and only
//! where the statistic demands it.
//!
//! [`GlobalState::aggregate`]: crate::GlobalState::aggregate
//! [`AggregatorKind::WeightedMean`]: crate::AggregatorKind::WeightedMean

use crate::{AggregatorKind, Algorithm, FaultRecord, FlConfig, GlobalState, LocalOutcome};

/// Limbs per coordinate: bit positions `0..352` on the `2^-149` grid
/// cover every product `m·2^e · w` (top bit ≤ `7·32 + 119 = 343`) with
/// carry headroom for `2^31` additions per limb.
const NLIMBS: usize = 11;

/// `2^-149` — the grid LSB — as an exactly-represented f64.
const GRID: f64 = f64::from_bits(874u64 << 52);

/// `2^32` as f64, the finalize ladder's radix.
const RADIX: f64 = 4294967296.0;

/// Per-coordinate non-finite markers, allocated only when a poisoned
/// upload actually arrives (the honest-path fold never pays for them).
struct NonFinite {
    nan: Vec<u64>,
    pos: Vec<u64>,
    neg: Vec<u64>,
}

/// Exact weighted f32 sums over `p` coordinates in O(p) memory.
///
/// `add(j, v, w)` accumulates `v·w` into coordinate `j` exactly (no
/// rounding, any order); `value(j)` converts the exact integer sum to
/// the nearest-enough f64 deterministically. See the module docs for the
/// representation and the commutativity argument.
pub(crate) struct ExactSums {
    limbs: Vec<i64>,
    nonfinite: Option<Box<NonFinite>>,
    p: usize,
}

impl ExactSums {
    /// Zeroed sums for `p` coordinates.
    pub(crate) fn new(p: usize) -> Self {
        ExactSums {
            limbs: vec![0; p * NLIMBS],
            nonfinite: None,
            p,
        }
    }

    /// Accumulate `v · w` into coordinate `j`, exactly.
    pub(crate) fn add(&mut self, j: usize, v: f32, w: u64) {
        debug_assert!(j < self.p);
        if w == 0 || v == 0.0 {
            return;
        }
        if !v.is_finite() {
            let words = self.p.div_ceil(64);
            let nf = self.nonfinite.get_or_insert_with(|| {
                Box::new(NonFinite {
                    nan: vec![0; words],
                    pos: vec![0; words],
                    neg: vec![0; words],
                })
            });
            let bit = 1u64 << (j % 64);
            if v.is_nan() {
                nf.nan[j / 64] |= bit;
            } else if v > 0.0 {
                nf.pos[j / 64] |= bit;
            } else {
                nf.neg[j / 64] |= bit;
            }
            return;
        }
        let bits = v.to_bits();
        let negative = bits >> 31 == 1;
        let e = ((bits >> 23) & 0xff) as i32;
        let m = (bits & 0x7f_ffff) as u64;
        // v = ±m′·2^e′ with m′ < 2^24 and e′ ∈ [-149, 104].
        let (mant, exp) = if e == 0 {
            (m, -149)
        } else {
            (m | 0x80_0000, e - 150)
        };
        let prod = (mant as u128) * (w as u128); // < 2^88
        let bitpos = (exp + 149) as usize; // 0..=253 on the grid
        let base = j * NLIMBS + bitpos / 32;
        let mut rest = prod << (bitpos % 32); // < 2^119: ≤ 4 chunks
        let mut k = 0;
        while rest != 0 {
            let chunk = (rest & 0xffff_ffff) as i64;
            self.limbs[base + k] += if negative { -chunk } else { chunk };
            rest >>= 32;
            k += 1;
        }
    }

    /// The accumulated sum of coordinate `j` as f64 (relative error
    /// ≤ 2^-52 from the exact integer value; deterministic). Non-finite
    /// terms override: `NaN` if any NaN (or both infinities) was added,
    /// else the signed infinity.
    pub(crate) fn value(&self, j: usize) -> f64 {
        if let Some(nf) = &self.nonfinite {
            let (word, bit) = (j / 64, j % 64);
            let nan = nf.nan[word] >> bit & 1 == 1;
            let pos = nf.pos[word] >> bit & 1 == 1;
            let neg = nf.neg[word] >> bit & 1 == 1;
            if nan || (pos && neg) {
                return f64::NAN;
            }
            if pos {
                return f64::INFINITY;
            }
            if neg {
                return f64::NEG_INFINITY;
            }
        }
        let limbs = &self.limbs[j * NLIMBS..(j + 1) * NLIMBS];
        let mut digits = [0u32; NLIMBS];
        let mut carry: i128 = 0;
        for (k, &limb) in limbs.iter().enumerate() {
            let t = limb as i128 + carry;
            digits[k] = t as u32;
            carry = t >> 32;
        }
        let mut val = carry as f64;
        for &d in digits.iter().rev() {
            val = val * RADIX + d as f64;
        }
        val * GRID
    }
}

/// Streaming state of one round's `WeightedMean` aggregation: every
/// algorithm's published rule, folded one upload at a time.
///
/// Construct from the pre-round global state (the broadcast snapshot),
/// [`fold`](StreamState::fold) each surviving upload in **any order**,
/// then [`finalize`](StreamState::finalize) once. Memory is O(model),
/// independent of how many uploads are folded.
pub struct StreamState {
    cfg: FlConfig,
    n_clients_total: usize,
    p: usize,
    /// Broadcast control variate — the fallback `Δcᵢ = −c − δᵢ/(τᵢ·η)`
    /// must read the control the *clients trained against*, which a
    /// streaming server must snapshot before the first fold.
    control_bcast: Vec<f32>,
    buf_len: usize,
    valid: usize,
    total_samples: u128,
    tau_weighted: u128,
    delta: ExactSums,
    /// SPATL per-index vote counts (empty for dense algorithms).
    count: Vec<u32>,
    c_delta: Option<ExactSums>,
    velocity: Option<ExactSums>,
    any_velocity: bool,
    buffers: Option<ExactSums>,
}

impl StreamState {
    /// Fixed-size accumulator for one round, snapshotting what the fold
    /// needs from the broadcast `global`.
    pub fn new(cfg: &FlConfig, global: &GlobalState, n_clients_total: usize) -> Self {
        let p = global.shared.len();
        let uses_control = cfg.algorithm.uses_control();
        let buf_len = global.buffers.len();
        StreamState {
            cfg: *cfg,
            n_clients_total,
            p,
            control_bcast: if uses_control {
                global.control.clone()
            } else {
                Vec::new()
            },
            buf_len,
            valid: 0,
            total_samples: 0,
            tau_weighted: 0,
            delta: ExactSums::new(p),
            count: if matches!(cfg.algorithm, Algorithm::Spatl(_)) {
                vec![0; p]
            } else {
                Vec::new()
            },
            c_delta: uses_control.then(|| ExactSums::new(p)),
            velocity: matches!(cfg.algorithm, Algorithm::FedNova).then(|| ExactSums::new(p)),
            any_velocity: false,
            buffers: (buf_len > 0).then(|| ExactSums::new(buf_len)),
        }
    }

    /// How many non-diverged uploads have been folded.
    pub fn folded(&self) -> usize {
        self.valid
    }

    /// Absorb one upload. Diverged uploads are skipped (the batch rule
    /// rejects them); everything else updates only commutative state, so
    /// fold order never changes the finalized model.
    pub fn fold(&mut self, o: &LocalOutcome) {
        if o.diverged {
            return;
        }
        self.valid += 1;
        let p = self.p;
        let eta_eff = self.cfg.lr / (1.0 - self.cfg.momentum).max(1e-3);
        match self.cfg.algorithm {
            Algorithm::FedAvg | Algorithm::FedProx { .. } => {
                let w = o.n_samples as u64;
                self.total_samples += w as u128;
                match &o.compressed {
                    // Top-k sparse upload: scatter-add the k survivors.
                    // Bit-identical to folding the zero-filled dense
                    // vector — `ExactSums::add` skips `v == 0.0`, so the
                    // dropped coordinates contribute nothing either way
                    // (asserted in tests/quantized_fold.rs).
                    Some(crate::CompressedDelta::TopK {
                        indices, values, ..
                    }) => {
                        for (&i, &v) in indices.iter().zip(values) {
                            self.delta.add(i as usize, v, w);
                        }
                    }
                    // f16 upload: decode coordinate-at-a-time straight
                    // off the 2·p-byte wire payload — f16 → f32 is
                    // exact, so this is bit-identical to densifying
                    // first, without the 4·p intermediate.
                    Some(crate::CompressedDelta::F16(bytes)) => {
                        for (j, c) in bytes.chunks_exact(2).enumerate().take(p) {
                            let v =
                                spatl_wire::f16::f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]]));
                            self.delta.add(j, v, w);
                        }
                    }
                    None => {
                        for j in 0..p {
                            self.delta.add(j, o.delta[j], w);
                        }
                    }
                }
            }
            Algorithm::FedNova => {
                let w = o.n_samples as u64;
                self.total_samples += w as u128;
                self.tau_weighted += o.n_samples as u128 * o.tau as u128;
                let tau = o.tau.max(1) as f32;
                for j in 0..p {
                    self.delta.add(j, o.delta[j] / tau, w);
                }
                if let Some(v) = &o.velocity {
                    self.any_velocity = true;
                    let vel = self.velocity.as_mut().expect("FedNova allocates velocity");
                    for (j, &vj) in v.iter().enumerate().take(p) {
                        vel.add(j, vj, w);
                    }
                }
            }
            Algorithm::Scaffold => {
                let scale = 1.0 / (o.tau.max(1) as f32 * eta_eff);
                let cd = self.c_delta.as_mut().expect("SCAFFOLD allocates control");
                for j in 0..p {
                    self.delta.add(j, o.delta[j], 1);
                    // Prefer the client's explicit Δcᵢ (what the wire
                    // carries); fall back to the server-side derivation
                    // for synthetic outcomes that skip the upload path.
                    let term = match &o.control_delta {
                        Some(cdv) => cdv[j],
                        None => -self.control_bcast[j] - o.delta[j] * scale,
                    };
                    cd.add(j, term, 1);
                }
            }
            Algorithm::Spatl(opts) => {
                let scale = 1.0 / (o.tau.max(1) as f32 * eta_eff);
                match &o.selected {
                    Some(sel) => {
                        for (k, &i) in sel.indices.iter().enumerate() {
                            let j = i as usize;
                            self.delta.add(j, sel.values[k], 1);
                            self.count[j] += 1;
                            if opts.gradient_control {
                                let term = -self.control_bcast[j] - sel.values[k] * scale;
                                self.c_delta
                                    .as_mut()
                                    .expect("gradient control allocates")
                                    .add(j, term, 1);
                            }
                        }
                    }
                    None => {
                        // Selection disabled: dense upload votes everywhere.
                        for j in 0..p {
                            self.delta.add(j, o.delta[j], 1);
                            self.count[j] += 1;
                            if opts.gradient_control {
                                let term = -self.control_bcast[j] - o.delta[j] * scale;
                                self.c_delta
                                    .as_mut()
                                    .expect("gradient control allocates")
                                    .add(j, term, 1);
                            }
                        }
                    }
                }
            }
        }
        if self.buf_len > 0 {
            let buf = self.buffers.as_mut().expect("buffers allocated");
            for (j, &b) in o.buffers.iter().enumerate().take(self.buf_len) {
                buf.add(j, b, 1);
            }
        }
    }

    /// Apply the accumulated round to `global`. Returns `true` if an
    /// update was applied; `false` is a no-op round (nothing folded, all
    /// folds diverged, or zero total sample weight) with `global`
    /// untouched — never NaN from an empty cohort.
    pub fn finalize(self, global: &mut GlobalState) -> bool {
        if self.valid == 0 {
            return false;
        }
        let p = self.p;
        let slr = self.cfg.server_lr as f64;
        match self.cfg.algorithm {
            Algorithm::FedAvg | Algorithm::FedProx { .. } => {
                if self.total_samples == 0 {
                    // Every survivor has an empty shard: dividing by the
                    // total would poison the model with NaN — skip.
                    return false;
                }
                let inv_total = 1.0 / self.total_samples as f64;
                for j in 0..p {
                    global.shared[j] += (slr * self.delta.value(j) * inv_total) as f32;
                }
            }
            Algorithm::FedNova => {
                if self.total_samples == 0 {
                    return false;
                }
                let total = self.total_samples as f64;
                let tau_eff = self.tau_weighted as f64 / total;
                for j in 0..p {
                    global.shared[j] += (slr * tau_eff * self.delta.value(j) / total) as f32;
                }
                if self.any_velocity {
                    let vel = self.velocity.as_ref().expect("FedNova allocates velocity");
                    global.momentum = (0..p).map(|j| (vel.value(j) / total) as f32).collect();
                }
            }
            Algorithm::Scaffold => {
                let inv_s = 1.0 / self.valid as f64;
                let inv_n = 1.0 / self.n_clients_total as f64;
                let cd = self.c_delta.as_ref().expect("SCAFFOLD allocates control");
                for j in 0..p {
                    global.shared[j] += (slr * self.delta.value(j) * inv_s) as f32;
                    global.control[j] += (inv_n * cd.value(j)) as f32;
                }
            }
            Algorithm::Spatl(opts) => {
                for j in 0..p {
                    if self.count[j] > 0 {
                        global.shared[j] +=
                            (slr * self.delta.value(j) / self.count[j] as f64) as f32;
                    }
                }
                if opts.gradient_control {
                    let inv_n = 1.0 / self.n_clients_total as f64;
                    let cd = self.c_delta.as_ref().expect("gradient control allocates");
                    for j in 0..p {
                        global.control[j] += (inv_n * cd.value(j)) as f32;
                    }
                }
            }
        }
        // Batch-norm buffers: mean across folded uploads (zip-prefix
        // semantics — an upload shorter than the session shape only
        // contributes its prefix, exactly as the batch rule's zip did).
        if self.buf_len > 0 {
            let inv = 1.0 / self.valid as f64;
            let buf = self.buffers.as_ref().expect("buffers allocated");
            global.buffers = (0..self.buf_len)
                .map(|j| (buf.value(j) * inv) as f32)
                .collect();
        }
        true
    }
}

/// Why a round's uploads had to be buffered instead of streamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillReason {
    /// The aggregation rule needs the whole cohort per coordinate
    /// (median / trimmed mean) or a cohort statistic before any upload
    /// can be weighed (NormClippedMean's median RMS).
    RobustAggregator,
    /// A [`ScreenPolicy`](crate::ScreenPolicy) is configured: stage-2
    /// median-RMS screening is a cohort statistic.
    Screening,
}

enum Mode {
    /// O(model): uploads fold into [`StreamState`] the moment they
    /// arrive and their tensors are dropped.
    Stream(Box<StreamState>),
    /// O(cohort · model) ceiling: uploads buffer until the round closes,
    /// then are deterministically slotted by client id and batch-folded.
    Spill {
        reason: SpillReason,
        outcomes: Vec<LocalOutcome>,
    },
}

/// One round's aggregation front-end: feed uploads in **any order** as
/// they arrive, close once.
///
/// Built by [`RoundDriver::begin_accumulation`] and closed by
/// [`RoundDriver::finish_accumulation`]; both the simulator's
/// `screen_and_aggregate` and the networked coordinator's concurrent
/// collect loop go through it, so there is exactly one fold. The mode is
/// decided by the run configuration:
///
/// * **Stream** — `WeightedMean` with no screen: O(model) memory.
/// * **Spill** — robust aggregators or a configured screen: uploads are
///   buffered (documented O(cohort · model) ceiling), sorted by client
///   id at close (so arrival order still cannot change the result), and
///   batch-folded.
///
/// [`RoundDriver::begin_accumulation`]: crate::RoundDriver::begin_accumulation
/// [`RoundDriver::finish_accumulation`]: crate::RoundDriver::finish_accumulation
pub struct RoundAccumulator {
    mode: Mode,
    folded: usize,
}

impl RoundAccumulator {
    /// Decide the mode from the run configuration and snapshot what the
    /// stream fold needs from the broadcast global state.
    pub(crate) fn new(cfg: &FlConfig, global: &GlobalState, n_clients_total: usize) -> Self {
        let spill = if cfg.screen.is_some() {
            Some(SpillReason::Screening)
        } else if !matches!(cfg.aggregator, AggregatorKind::WeightedMean) {
            Some(SpillReason::RobustAggregator)
        } else {
            None
        };
        let mode = match spill {
            Some(reason) => Mode::Spill {
                reason,
                outcomes: Vec::new(),
            },
            None => Mode::Stream(Box::new(StreamState::new(cfg, global, n_clients_total))),
        };
        RoundAccumulator { mode, folded: 0 }
    }

    /// `None` when streaming (O(model)); the spill reason otherwise.
    pub fn spill_reason(&self) -> Option<SpillReason> {
        match &self.mode {
            Mode::Stream(_) => None,
            Mode::Spill { reason, .. } => Some(*reason),
        }
    }

    /// Uploads absorbed so far (diverged riders included — they count as
    /// survivors exactly as they did in the batch path).
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Absorb one decoded upload. In stream mode its tensors are
    /// consumed immediately; in spill mode it is buffered until
    /// [`RoundDriver::finish_accumulation`].
    ///
    /// [`RoundDriver::finish_accumulation`]: crate::RoundDriver::finish_accumulation
    pub fn fold(&mut self, mut outcome: LocalOutcome) {
        self.folded += 1;
        match &mut self.mode {
            Mode::Stream(state) => state.fold(&outcome),
            Mode::Spill { outcomes, .. } => {
                // The batch rules and the screen read dense deltas; a
                // compressed upload is expanded here — the documented
                // point where spilling trades the O(model) fold for
                // cohort statistics (DESIGN.md §13).
                outcome.densify();
                outcomes.push(outcome)
            }
        }
    }

    /// Close the round against `global`: finalize the stream, or sort
    /// the spill by client id, screen it, and batch-fold. Returns
    /// `(survivors, applied)` for the fault ledger.
    pub(crate) fn finish(
        self,
        cfg: &FlConfig,
        global: &mut GlobalState,
        n_clients_total: usize,
        faults: &mut FaultRecord,
    ) -> (usize, bool) {
        match self.mode {
            Mode::Stream(state) => {
                let survivors = self.folded;
                let applied = state.finalize(global);
                (survivors, applied)
            }
            Mode::Spill { mut outcomes, .. } => {
                // Deterministic slotting: whatever order the transport
                // delivered, the batch fold always sees ascending ids.
                outcomes.sort_by_key(|o| o.client_id);
                let outcomes = match &cfg.screen {
                    Some(policy) => crate::screen_updates(policy, outcomes, faults),
                    None => outcomes,
                };
                let survivors = outcomes.len();
                let applied = global.aggregate(cfg, &outcomes, n_clients_total);
                (survivors, applied)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sums_match_rational_arithmetic() {
        let mut s = ExactSums::new(2);
        s.add(0, 0.5, 3); // 1.5
        s.add(0, -0.25, 2); // -0.5 → 1.0
        s.add(1, 1.5e-45, 1); // one grid LSB ≈ 2^-149
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(1), GRID);
    }

    #[test]
    fn exact_sums_are_permutation_invariant_where_f32_is_not() {
        // A classic cancellation case: (big + tiny) - big loses the tiny
        // term in f32/f64 running sums depending on order; the integer
        // grid keeps it bit-exactly in every order.
        let terms: [(f32, u64); 4] = [(3e7, 1), (0.125, 7), (-3e7, 1), (1e-30, 9)];
        let mut fwd = ExactSums::new(1);
        let mut rev = ExactSums::new(1);
        for &(v, w) in &terms {
            fwd.add(0, v, w);
        }
        for &(v, w) in terms.iter().rev() {
            rev.add(0, v, w);
        }
        assert_eq!(fwd.value(0).to_bits(), rev.value(0).to_bits());
        let expect = 0.125f64 * 7.0 + 1e-30 * 9.0;
        assert!((fwd.value(0) - expect).abs() <= expect * 1e-15);
    }

    #[test]
    fn exact_sums_extreme_magnitudes_coexist() {
        let mut s = ExactSums::new(1);
        s.add(0, f32::MAX, u64::MAX);
        s.add(0, f32::MIN_POSITIVE * f32::EPSILON, 1); // subnormal region
        s.add(0, -f32::MAX, u64::MAX);
        let tiny = (f32::MIN_POSITIVE * f32::EPSILON) as f64;
        assert_eq!(s.value(0), tiny, "the huge terms cancel exactly");
    }

    #[test]
    fn non_finite_verdicts_are_commutative() {
        for flip in [false, true] {
            let mut s = ExactSums::new(3);
            let adds: [(usize, f32); 4] = [
                (0, f32::NAN),
                (1, f32::INFINITY),
                (2, f32::INFINITY),
                (2, f32::NEG_INFINITY),
            ];
            let iter: Box<dyn Iterator<Item = &(usize, f32)>> = if flip {
                Box::new(adds.iter().rev())
            } else {
                Box::new(adds.iter())
            };
            for &(j, v) in iter {
                s.add(j, v, 1);
            }
            assert!(s.value(0).is_nan());
            assert_eq!(s.value(1), f64::INFINITY);
            assert!(s.value(2).is_nan(), "±∞ collide to NaN");
        }
    }

    #[test]
    fn zero_weight_and_zero_value_are_inert() {
        let mut s = ExactSums::new(1);
        s.add(0, 123.0, 0);
        s.add(0, 0.0, 99);
        s.add(0, -0.0, 99);
        assert_eq!(s.value(0), 0.0);
    }
}
