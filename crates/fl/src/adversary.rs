//! Byzantine adversaries: semantically poisoned but CRC-valid uploads.
//!
//! The transport fault layer ([`FaultPlan`](crate::FaultPlan)) damages
//! *frames*; the envelope CRC catches every injected bit flip and the
//! server retransmits. This module models the complementary threat the CRC
//! cannot see: a client that participates in the protocol flawlessly —
//! trains, seals frames, passes every checksum — but uploads a *wrong*
//! update. Three classic behaviours from the Byzantine-FL literature are
//! implemented:
//!
//! * **NaN/Inf injection** — a handful of update entries are replaced with
//!   non-finite values; one such upload averaged into the global model
//!   poisons every parameter it touches within a round.
//! * **Delta scaling** — the update is multiplied by λ ≫ 1, letting a
//!   single attacker dominate a weighted mean (model-replacement-style
//!   boosting).
//! * **Sign flip** — the update is negated, steering the global model away
//!   from descent without changing the update's norm (invisible to
//!   norm-based screening; only robust aggregation resists it).
//!
//! Like the [`FaultInjector`](crate::FaultInjector), every decision is a
//! pure function of the plan seed: which clients are Byzantine is drawn
//! once from `(seed, n_clients)`, and the entries a NaN attack damages are
//! drawn from `(seed, round, client)` — so an adversarial run replays
//! bit-for-bit and toggling the plan never perturbs training randomness.
//!
//! Tampering happens *before* sealing: the adversary rewrites the client's
//! in-memory outcome and re-encodes the frames through the ordinary
//! [`wire`](crate::wire) path, so the upload the server decodes is
//! perfectly well-formed. Defenses live server-side, in
//! [`ScreenPolicy`](crate::ScreenPolicy) and the robust
//! [`AggregatorKind`](crate::AggregatorKind)s.

use crate::faults::splitmix;
use crate::{FlConfig, LocalOutcome};
use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;

/// Which Byzantine behaviour an [`AdversaryPlan`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Replace a deterministic handful of update entries with alternating
    /// `NaN` / `+∞` values.
    NanInjection,
    /// Multiply the update by [`AdversaryPlan::lambda`].
    ScaleAttack,
    /// Negate the update (norm-preserving — defeats norm screening, caught
    /// only by robust aggregation).
    SignFlip,
}

impl AttackKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::NanInjection => "nan-inject",
            AttackKind::ScaleAttack => "scale",
            AttackKind::SignFlip => "sign-flip",
        }
    }
}

/// A seeded description of the Byzantine cohort a run simulates. Part of
/// [`FlConfig`](crate::FlConfig); `None` there means every client is
/// honest.
///
/// The Byzantine set is *static*: `round(fraction · n_clients)` clients are
/// chosen once per run from the plan seed (the standard threat model in
/// Byzantine-FL evaluations), and each of them tampers with every upload it
/// sends. All randomness derives from [`AdversaryPlan::seed`], never from
/// the training seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Fraction of the client population that is Byzantine, in `[0, 1]`.
    /// The attacker count is `round(fraction · n_clients)`.
    pub fraction: f64,
    /// The behaviour every Byzantine client applies.
    pub attack: AttackKind,
    /// Scaling factor λ for [`AttackKind::ScaleAttack`] (ignored by the
    /// other attacks). Must be finite and non-zero.
    pub lambda: f32,
    /// Seed of the adversary RNG streams, independent of the training seed
    /// and of any [`FaultPlan`](crate::FaultPlan) seed.
    pub seed: u64,
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        AdversaryPlan {
            fraction: 0.0,
            attack: AttackKind::ScaleAttack,
            lambda: 100.0,
            seed: 0xBAD5EED,
        }
    }
}

impl AdversaryPlan {
    /// A plan in which `fraction` of clients applies `attack` with the
    /// default λ = 100 scaling.
    pub fn with_attack(fraction: f64, attack: AttackKind) -> Self {
        AdversaryPlan {
            fraction,
            attack,
            ..Default::default()
        }
    }

    /// Panics if the fraction is not a probability or λ is unusable;
    /// called once when a simulation is built.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "adversary fraction must be in [0, 1]"
        );
        assert!(
            self.lambda.is_finite() && self.lambda != 0.0,
            "scale attack lambda must be finite and non-zero"
        );
    }
}

const SALT_MEMBERSHIP: u64 = 0xB12;
const SALT_NAN: u64 = 0x7A11;

/// How many entries a NaN-injection attack overwrites (clamped to the
/// update length). A handful is all it takes: one non-finite coordinate
/// reaching a naive mean poisons that coordinate globally.
const NAN_ENTRIES: usize = 8;

/// Executes an [`AdversaryPlan`]: decides who is Byzantine and rewrites
/// their outcomes before the frames are sealed.
///
/// Stateless apart from the plan, like
/// [`FaultInjector`](crate::FaultInjector): membership derives from
/// `(seed, n_clients)` and per-round damage from `(seed, round, client)`,
/// so decisions are independent of evaluation order and replay exactly.
#[derive(Debug, Clone, Copy)]
pub struct Adversary {
    plan: AdversaryPlan,
}

impl Adversary {
    /// Build an adversary for a validated plan.
    pub fn new(plan: AdversaryPlan) -> Self {
        plan.validate();
        Adversary { plan }
    }

    /// The plan this adversary executes.
    pub fn plan(&self) -> &AdversaryPlan {
        &self.plan
    }

    /// The Byzantine membership mask over a population of `n_clients`:
    /// exactly `round(fraction · n_clients)` clients, chosen from the plan
    /// seed alone.
    pub fn byzantine_mask(&self, n_clients: usize) -> Vec<bool> {
        let k = ((self.plan.fraction * n_clients as f64).round() as usize).min(n_clients);
        let mut mask = vec![false; n_clients];
        if k == 0 {
            return mask;
        }
        let mut rng = TensorRng::seed_from(splitmix(self.plan.seed ^ splitmix(SALT_MEMBERSHIP)));
        for i in rng.choose_k(n_clients, k) {
            mask[i] = true;
        }
        mask
    }

    /// Rewrite one Byzantine client's outcome in place and re-seal its
    /// frames, so the upload that reaches the server is CRC-valid but
    /// semantically poisoned. The attack touches every vector the server
    /// aggregates — the delta (or salient values), the SCAFFOLD control
    /// step and the FedNova momentum — a consistent attacker, not one that
    /// betrays itself through mismatched auxiliaries.
    pub fn tamper(&self, cfg: &FlConfig, outcome: &mut LocalOutcome, round: usize) {
        match self.plan.attack {
            AttackKind::ScaleAttack => scale_outcome(outcome, self.plan.lambda),
            AttackKind::SignFlip => scale_outcome(outcome, -1.0),
            AttackKind::NanInjection => {
                let mut rng = TensorRng::seed_from(splitmix(
                    self.plan.seed
                        ^ splitmix(
                            (round as u64) ^ splitmix((outcome.client_id as u64) ^ SALT_NAN),
                        ),
                ));
                let poison = |xs: &mut [f32], rng: &mut TensorRng| {
                    if xs.is_empty() {
                        return;
                    }
                    for n in 0..NAN_ENTRIES.min(xs.len()) {
                        let j = rng.below(xs.len());
                        xs[j] = if n % 2 == 0 { f32::NAN } else { f32::INFINITY };
                    }
                };
                poison(&mut outcome.delta, &mut rng);
                if let Some(sel) = &mut outcome.selected {
                    poison(&mut sel.values, &mut rng);
                }
                if let Some(cd) = &mut outcome.control_delta {
                    poison(cd, &mut rng);
                }
                if let Some(v) = &mut outcome.velocity {
                    poison(v, &mut rng);
                }
            }
        }
        reseal(cfg, outcome);
    }
}

/// Multiply every aggregated vector of the outcome by `factor`.
fn scale_outcome(outcome: &mut LocalOutcome, factor: f32) {
    for x in &mut outcome.delta {
        *x *= factor;
    }
    if let Some(sel) = &mut outcome.selected {
        for x in &mut sel.values {
            *x *= factor;
        }
    }
    if let Some(cd) = &mut outcome.control_delta {
        for x in cd {
            *x *= factor;
        }
    }
    if let Some(v) = &mut outcome.velocity {
        for x in v {
            *x *= factor;
        }
    }
}

/// Re-encode the tampered outcome through the ordinary wire path. The
/// resulting frames carry fresh, *valid* CRCs — exactly what a Byzantine
/// participant that follows the protocol would transmit — and the payload
/// accounting is unchanged (the attack alters values, never shapes).
fn reseal(cfg: &FlConfig, outcome: &mut LocalOutcome) {
    let encoded = crate::wire::encode_upload(cfg, outcome);
    debug_assert_eq!(
        encoded.payload, outcome.wire.upload_payload,
        "tampering must not change the payload size"
    );
    outcome.wire.upload_payload = encoded.payload;
    outcome.wire.upload_framed = encoded.framed();
    outcome.frames = encoded.frames;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, CommModel};
    use spatl_wire::open;

    fn outcome(id: usize, delta: Vec<f32>) -> LocalOutcome {
        let cfg = FlConfig::new(Algorithm::FedAvg);
        let mut o = LocalOutcome {
            client_id: id,
            n_samples: 10,
            tau: 1,
            delta,
            selected: None,
            compressed: None,
            control_delta: None,
            velocity: None,
            buffers: Vec::new(),
            diverged: false,
            bytes: CommModel::dense(0),
            wire: crate::WireBytes::default(),
            frames: Vec::new(),
            keep_ratio: 1.0,
            flops_ratio: 1.0,
        };
        let enc = crate::wire::encode_upload(&cfg, &o);
        o.wire.upload_payload = enc.payload;
        o.wire.upload_framed = enc.framed();
        o.frames = enc.frames;
        o
    }

    #[test]
    fn membership_is_deterministic_and_sized() {
        let plan = AdversaryPlan {
            fraction: 0.3,
            ..Default::default()
        };
        let a = Adversary::new(plan).byzantine_mask(10);
        let b = Adversary::new(plan).byzantine_mask(10);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&m| m).count(), 3);
        let other = Adversary::new(AdversaryPlan { seed: 1, ..plan }).byzantine_mask(10);
        assert_eq!(other.iter().filter(|&&m| m).count(), 3);
        assert_ne!(a, other, "different seeds should pick different sets");
    }

    #[test]
    fn zero_fraction_names_no_one() {
        let adv = Adversary::new(AdversaryPlan::default());
        assert!(adv.byzantine_mask(32).iter().all(|&m| !m));
    }

    #[test]
    fn scale_attack_scales_and_reseals() {
        let cfg = FlConfig::new(Algorithm::FedAvg);
        let mut o = outcome(0, vec![1.0, -2.0, 3.0]);
        let before = o.frames.clone();
        let adv = Adversary::new(AdversaryPlan {
            fraction: 1.0,
            attack: AttackKind::ScaleAttack,
            lambda: 10.0,
            seed: 3,
        });
        adv.tamper(&cfg, &mut o, 0);
        assert_eq!(o.delta, vec![10.0, -20.0, 30.0]);
        assert_ne!(o.frames, before, "tampered frames must differ");
        // The tampered frame still opens: the CRC is valid.
        assert!(open(&o.frames[0]).is_ok());
    }

    #[test]
    fn sign_flip_preserves_norm() {
        let cfg = FlConfig::new(Algorithm::FedAvg);
        let mut o = outcome(1, vec![1.0, -2.0]);
        Adversary::new(AdversaryPlan::with_attack(1.0, AttackKind::SignFlip))
            .tamper(&cfg, &mut o, 0);
        assert_eq!(o.delta, vec![-1.0, 2.0]);
    }

    #[test]
    fn nan_injection_is_deterministic_and_crc_valid() {
        let cfg = FlConfig::new(Algorithm::FedAvg);
        let adv = Adversary::new(AdversaryPlan::with_attack(1.0, AttackKind::NanInjection));
        let mut a = outcome(2, vec![1.0; 64]);
        let mut b = outcome(2, vec![1.0; 64]);
        adv.tamper(&cfg, &mut a, 5);
        adv.tamper(&cfg, &mut b, 5);
        assert_eq!(
            a.frames, b.frames,
            "same (seed, round, client) → same damage"
        );
        assert!(a.delta.iter().any(|v| v.is_nan()));
        assert!(a.delta.iter().any(|v| v.is_infinite()));
        assert!(
            open(&a.frames[0]).is_ok(),
            "poisoned frame must stay CRC-valid"
        );
        // A different round damages different entries.
        let mut c = outcome(2, vec![1.0; 64]);
        adv.tamper(&cfg, &mut c, 6);
        assert_ne!(
            a.delta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c.delta.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "adversary fraction must be in [0, 1]")]
    fn validate_rejects_bad_fraction() {
        AdversaryPlan {
            fraction: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
