//! The round-orchestration core shared by the in-process simulator and
//! the networked coordinator.
//!
//! Both runtimes drive the same round skeleton: draw the round's cohort
//! from the seeded sampling stream, broadcast the sealed global state,
//! decode whatever uploads come back, screen and aggregate the surviving
//! cohort, then record the round. What differs is *transport* — the
//! simulator moves frames between structs (with injected faults), the
//! coordinator moves them over TCP (with real ones). [`RoundDriver`] owns
//! everything transport-independent so the two cannot drift apart: a
//! networked round that feeds the driver the same uploads in the same
//! order produces a bit-identical global model.
//!
//! Determinism contract: one [`RoundDriver::sample_round`] draw per round
//! (no-op rounds included). Uploads may be folded into the round's
//! [`RoundAccumulator`] in **any arrival order** — the streaming fold is
//! order-independent by construction (exact integer accumulation) and
//! the spill path deterministically slots by client id before the batch
//! fold (DESIGN.md §12) — so a concurrent networked collection and the
//! simulator's ascending-id sweep produce bit-identical global models.

use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;
use spatl_wire::{SelectionLayout, SimNet, WireError};

use crate::{
    wire, Encoded, FaultRecord, FlConfig, GlobalState, LocalOutcome, RoundAccumulator, RoundBytes,
    WireBytes,
};

/// Metrics recorded after each communication round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Mean top-1 validation accuracy across all clients.
    pub mean_acc: f32,
    /// Per-client accuracy.
    pub per_client_acc: Vec<f32>,
    /// Analytic bytes moved this round, Eq. 13 (sum over participants).
    pub bytes: RoundBytes,
    /// Measured wire traffic this round (sum over participants); the
    /// payload components cross-check `bytes` exactly.
    pub wire: WireBytes,
    /// Simulated transfer wall-clock of the round (slowest participant's
    /// download + upload over the configured [`NetProfile`]).
    ///
    /// [`NetProfile`]: crate::NetProfile
    pub transfer_wall_s: f64,
    /// Sum of every participant's transfer seconds (device-time cost).
    pub transfer_device_s: f64,
    /// *Measured* wall-clock of the round's transfer + collection phase,
    /// in seconds. Zero for simulated rounds (nothing real was timed);
    /// the networked coordinator fills it from a monotonic clock, making
    /// it directly comparable to the Eq. 13-driven `transfer_wall_s`
    /// prediction.
    pub measured_wall_s: f64,
    /// Running total of bytes since round 0.
    pub cumulative_bytes: u64,
    /// Clients whose updates were rejected as non-finite.
    pub diverged_clients: usize,
    /// Mean fraction of the shared vector uploaded (1.0 for dense
    /// algorithms).
    pub mean_keep_ratio: f32,
    /// Mean FLOPs ratio of participants' (masked) models.
    pub mean_flops_ratio: f32,
    /// What the configured [`FaultPlan`] did to this round (all-zero when
    /// no faults are configured).
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    pub faults: FaultRecord,
}

/// What the transport layer measured while moving one round's frames —
/// the inputs [`RoundDriver::finish_round`] cannot compute itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportStats {
    /// Measured wire traffic, summed over participants.
    pub wire: WireBytes,
    /// Modelled round wall-clock (slowest participant) in seconds.
    pub transfer_wall_s: f64,
    /// Modelled per-participant transfer seconds, summed.
    pub transfer_device_s: f64,
    /// Real measured wall-clock of the transfer + collection phase, in
    /// seconds; zero when nothing real was timed (simulated rounds).
    pub measured_wall_s: f64,
}

/// Transport-independent round engine: configuration, server state,
/// sampling stream, aggregation pipeline and history.
///
/// The simulator ([`Simulation`](crate::Simulation)) embeds one and adds
/// in-process clients; the networked coordinator (`spatl-net`) embeds one
/// and adds sockets. Neither reimplements sampling, screening,
/// aggregation or round accounting.
pub struct RoundDriver {
    /// Run configuration.
    pub cfg: FlConfig,
    /// Server state.
    pub global: GlobalState,
    /// Per-round records so far (this process; resumed rounds excluded).
    pub history: Vec<RoundRecord>,
    /// Channel-id ↔ flat-index map of the session (SPATL with selection
    /// only); the server expands uploaded channel ids through this.
    pub layout: Option<SelectionLayout>,
    /// Transport model frames travel over (predicts Eq. 13 times; the
    /// networked runtime records measured times next to the prediction).
    pub net: SimNet,
    rng: TensorRng,
    cumulative_bytes: u64,
    round_offset: usize,
    /// Cohorts drawn so far (the sampling-stream position): equals the
    /// absolute round index of the *next* [`RoundDriver::sample_round`]
    /// call. Distinct from `round_offset + history.len()` because some
    /// participants (edge aggregators) replay the sampling stream without
    /// recording rounds.
    sampled_rounds: usize,
}

impl RoundDriver {
    /// Build a driver around an initial server state. Validates every
    /// configured plan/policy up front so misconfiguration fails at
    /// construction, not mid-round.
    pub fn new(cfg: FlConfig, global: GlobalState, layout: Option<SelectionLayout>) -> Self {
        if let Some(plan) = &cfg.faults {
            plan.validate();
        }
        if let Some(plan) = &cfg.adversary {
            plan.validate();
        }
        if let Some(policy) = &cfg.screen {
            policy.validate();
        }
        cfg.aggregator.validate();
        cfg.upload_codec.validate(&cfg.algorithm);
        if let Some(plan) = &cfg.chaos {
            plan.validate();
        }
        if let Some(plan) = &cfg.churn {
            plan.validate();
        }
        RoundDriver {
            rng: TensorRng::seed_from(cfg.seed ^ 0x51A1),
            net: cfg.net.simnet(),
            cfg,
            global,
            history: Vec::new(),
            layout,
            cumulative_bytes: 0,
            round_offset: 0,
            sampled_rounds: 0,
        }
    }

    /// Index of the round currently being (or about to be) run:
    /// rounds completed before a resume plus rounds recorded here.
    pub fn round_index(&self) -> usize {
        self.round_offset + self.history.len()
    }

    /// Total bytes moved since round 0 of this process.
    pub fn cumulative_bytes(&self) -> u64 {
        self.cumulative_bytes
    }

    /// Draw this round's cohort from the seeded sampling stream — exactly
    /// one draw per round, no-op rounds included, so simulator and
    /// coordinator stay on the same stream position round for round.
    ///
    /// With [`FlConfig::churn`] configured the cohort comes from the
    /// churn model's availability-aware sampler instead (a pure function
    /// of the churn seed and the stream position, so every participant
    /// still derives the identical cohort independently); it may be
    /// smaller than `clients_per_round`, or empty, when availability is
    /// scarce.
    pub fn sample_round(&mut self) -> Vec<usize> {
        let round = self.sampled_rounds;
        self.sampled_rounds += 1;
        match self.cfg.churn {
            Some(plan) => crate::ChurnModel::new(plan).sample_cohort(
                round,
                self.cfg.clients_per_round(),
                self.cfg.n_clients,
            ),
            None => self
                .rng
                .choose_k(self.cfg.n_clients, self.cfg.clients_per_round()),
        }
    }

    /// Resume support: burn the sampling draws of `rounds` already-
    /// completed rounds (restored from a checkpoint) and offset the round
    /// index accordingly, so round `rounds` here samples the same cohort
    /// it would have in the original run.
    pub fn advance_sampling(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.sample_round();
        }
        self.round_offset += rounds;
        self.history.clear();
    }

    /// Seal the current global state into broadcast frames.
    pub fn broadcast(&self) -> Encoded {
        wire::encode_download(&self.cfg, &self.global)
    }

    /// Decode one client's upload frames against this session's layout
    /// and parameter count. `meta` carries the client's self-reported
    /// bookkeeping (id, sample count, τ, ratios); every tensor in the
    /// result comes from `frames`.
    pub fn decode_client_upload(
        &self,
        meta: &LocalOutcome,
        frames: &[Vec<u8>],
    ) -> Result<LocalOutcome, WireError> {
        wire::decode_upload(
            &self.cfg,
            meta,
            frames,
            self.layout.as_ref(),
            self.global.shared.len(),
        )
    }

    /// Open this round's aggregation front-end (DESIGN.md §12): an
    /// accumulator that absorbs decoded uploads in **any arrival order**
    /// — streaming them into fixed-size exact state when the
    /// configuration allows (`WeightedMean`, no screen), buffering and
    /// deterministically slotting by client id otherwise. Close it with
    /// [`RoundDriver::finish_accumulation`].
    pub fn begin_accumulation(&self) -> RoundAccumulator {
        RoundAccumulator::new(&self.cfg, &self.global, self.cfg.n_clients)
    }

    /// Close a round's accumulator: screen the spill (if any), fold into
    /// the global state, and fill the ledger's `survivors`/`no_op`
    /// fields. Returns whether anything was applied.
    pub fn finish_accumulation(&mut self, acc: RoundAccumulator, faults: &mut FaultRecord) -> bool {
        let (survivors, applied) =
            acc.finish(&self.cfg, &mut self.global, self.cfg.n_clients, faults);
        faults.survivors = survivors;
        faults.no_op = !applied;
        applied
    }

    /// Screening + aggregation stage (DESIGN.md §8/§9) for callers that
    /// already hold the whole cohort (the in-process simulator, the
    /// tiered composition layer): feeds every upload through the same
    /// [`RoundAccumulator`] the concurrent coordinator streams into —
    /// one fold, two transports. Arrival order no longer matters; the
    /// accumulator is order-independent by construction. Returns whether
    /// anything was applied; the ledger's `survivors`/`no_op` fields are
    /// filled either way.
    pub fn screen_and_aggregate(
        &mut self,
        survivors: Vec<LocalOutcome>,
        faults: &mut FaultRecord,
    ) -> bool {
        let mut acc = self.begin_accumulation();
        for o in survivors {
            acc.fold(o);
        }
        self.finish_accumulation(acc, faults)
    }

    /// Close the round: fold the participants' byte accounting, attach
    /// the transport measurements and the post-aggregation evaluation,
    /// push the record onto the history and return it.
    pub fn finish_round(
        &mut self,
        outcomes: &[LocalOutcome],
        stats: TransportStats,
        per_client_acc: Vec<f32>,
        faults: FaultRecord,
    ) -> RoundRecord {
        let round = self.round_index();
        let bytes = outcomes
            .iter()
            .fold(RoundBytes::default(), |acc, o| RoundBytes {
                download: acc.download + o.bytes.download,
                upload: acc.upload + o.bytes.upload,
            });
        self.cumulative_bytes += bytes.total();
        let diverged = outcomes.iter().filter(|o| o.diverged).count();
        let mean_keep =
            outcomes.iter().map(|o| o.keep_ratio).sum::<f32>() / outcomes.len().max(1) as f32;
        let mean_flops =
            outcomes.iter().map(|o| o.flops_ratio).sum::<f32>() / outcomes.len().max(1) as f32;
        let mean_acc = per_client_acc.iter().sum::<f32>() / per_client_acc.len().max(1) as f32;
        let record = RoundRecord {
            round,
            mean_acc,
            per_client_acc,
            bytes,
            wire: stats.wire,
            transfer_wall_s: stats.transfer_wall_s,
            transfer_device_s: stats.transfer_device_s,
            measured_wall_s: stats.measured_wall_s,
            cumulative_bytes: self.cumulative_bytes,
            diverged_clients: diverged,
            mean_keep_ratio: mean_keep,
            mean_flops_ratio: mean_flops,
            faults,
        };
        self.history.push(record.clone());
        record
    }

    /// Record a round in which no client participated (every sampled
    /// client dropped out): nothing moved on the wire, the global model
    /// is untouched, and the fault ledger says why the round was empty.
    pub fn noop_round(&mut self, per_client_acc: Vec<f32>, faults: FaultRecord) -> RoundRecord {
        let round = self.round_index();
        let mean_acc = per_client_acc.iter().sum::<f32>() / per_client_acc.len().max(1) as f32;
        let record = RoundRecord {
            round,
            mean_acc,
            per_client_acc,
            bytes: RoundBytes::default(),
            wire: WireBytes::default(),
            transfer_wall_s: 0.0,
            transfer_device_s: 0.0,
            measured_wall_s: 0.0,
            cumulative_bytes: self.cumulative_bytes,
            diverged_clients: 0,
            mean_keep_ratio: 0.0,
            mean_flops_ratio: 0.0,
            faults,
        };
        self.history.push(record.clone());
        record
    }
}
