//! Transport chaos injection for the networked runtime.
//!
//! [`FaultPlan`](crate::FaultPlan) injures *payloads* (dropouts,
//! stragglers, flipped bits inside sealed frames); a [`ChaosPlan`]
//! injures the *transport* underneath them: connections reset mid-frame
//! (so the coordinator's incremental `FrameReader::poll` sees torn
//! frames), sockets stall before replying, upload replies are sent twice
//! (forcing the coordinator's gather path to deduplicate per round and
//! client), and a whole edge aggregator process dies mid-round.
//!
//! Like every fault family in this codebase, chaos is deterministic by
//! construction: each decision is a pure function of `(plan seed, round,
//! actor, salt)` through its own splitmix-derived ChaCha stream, so the
//! same seed replays the same torn frames, the same stalls, the same
//! duplicates and the same edge kill — and two runs under the same plan
//! finish with bit-identical global models and identical fault ledgers.
//!
//! Chaos is *applied* on the sending side (client nodes tear, stall and
//! duplicate their own uploads; an edge kills itself) and *observed* on
//! the receiving side (the coordinator sees disconnects, duplicate
//! replies and a dead partition). The in-process simulator has no
//! transport, so it ignores a configured plan entirely — the taxonomy in
//! DESIGN.md §14 spells out which layer may observe what.

use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;

use crate::faults::splitmix;

const SALT_RESET: u64 = 0xE5;
const SALT_CUT: u64 = 0xC7;
const SALT_STALL: u64 = 0x5A;
const SALT_DUP: u64 = 0xD2;

/// A seeded description of the transport chaos a networked run injects.
/// Part of [`FlConfig`](crate::FlConfig); `None` there means a pristine
/// transport. Because the plan lives in the session configuration it is
/// mixed into the control-plane fingerprint: every endpoint of a chaotic
/// session agrees on the schedule, and a client started without the plan
/// is rejected at the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Probability that a client's *first* transmission of its round
    /// upload is torn: a strict prefix of one sealed frame is written and
    /// the connection is reset. The node then reconnects and retries, so
    /// a torn upload is a delay, not a loss — unless the retry misses the
    /// round deadline. In `[0, 1]`.
    pub reset: f64,
    /// Probability that a client stalls (sleeps) before sending its
    /// upload, emulating a slow socket. In `[0, 1]`.
    pub stall: f64,
    /// How long a stalled client sleeps, in milliseconds.
    pub stall_ms: u64,
    /// Probability that a client transmits its complete upload reply
    /// twice back-to-back on the same connection. The coordinator must
    /// fold the first copy and ledger the second as
    /// [`FaultKind::DuplicateUpload`](crate::FaultKind::DuplicateUpload).
    /// In `[0, 1]`.
    pub duplicate: f64,
    /// Scheduled edge-process kill: `(round, edge_id)`. When the round
    /// arrives, that edge drops every connection without a goodbye — its
    /// clients observe a vanished coordinator and the root observes a
    /// dead partition. `None` kills nothing.
    pub kill_edge: Option<(u32, u32)>,
    /// Seed of the chaos RNG streams, independent of the training seed
    /// and of the [`FaultPlan`](crate::FaultPlan) seed.
    pub seed: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            reset: 0.0,
            stall: 0.0,
            stall_ms: 50,
            duplicate: 0.0,
            kill_edge: None,
            seed: 0xCA05,
        }
    }
}

impl ChaosPlan {
    /// Panics if any probability is outside `[0, 1]`; called once when a
    /// driver is built.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.reset),
            "reset must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.stall),
            "stall must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate),
            "duplicate must be a probability"
        );
    }

    /// Whether any chaos can actually fire under this plan.
    pub fn is_active(&self) -> bool {
        self.reset > 0.0 || self.stall > 0.0 || self.duplicate > 0.0 || self.kill_edge.is_some()
    }
}

/// Draws every transport-chaos decision of a run from per-decision RNG
/// streams, the same way [`FaultInjector`](crate::FaultInjector) draws
/// payload faults: stateless apart from the plan, so decisions are
/// independent of evaluation order and a given `(plan, round, actor)`
/// always misbehaves the same way.
#[derive(Debug, Clone, Copy)]
pub struct ChaosInjector {
    plan: ChaosPlan,
}

impl ChaosInjector {
    /// Build an injector for a validated plan.
    pub fn new(plan: ChaosPlan) -> Self {
        plan.validate();
        ChaosInjector { plan }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    fn rng(&self, round: usize, actor: usize, salt: u64) -> TensorRng {
        let s = splitmix(
            self.plan.seed ^ splitmix((round as u64) ^ splitmix((actor as u64) ^ splitmix(salt))),
        );
        TensorRng::seed_from(s)
    }

    /// Is `client`'s first upload transmission of `round` torn mid-frame
    /// (prefix written, connection reset)? Only the first attempt is ever
    /// torn: the retry after reconnecting goes through clean, so chaos
    /// delays rounds without deadlocking them.
    pub fn resets_upload(&self, round: usize, client: usize) -> bool {
        self.plan.reset > 0.0 && self.rng(round, client, SALT_RESET).flip(self.plan.reset)
    }

    /// Where to cut a torn transmission: a byte offset in `[1, len)`, so
    /// the receiver always sees a strict, non-empty prefix of the frame.
    pub fn torn_cut(&self, round: usize, client: usize, len: usize) -> usize {
        assert!(len > 1, "cannot tear a frame of {len} bytes");
        1 + self.rng(round, client, SALT_CUT).below(len - 1)
    }

    /// How long `client` stalls before uploading in `round`, if at all.
    pub fn stalls(&self, round: usize, client: usize) -> Option<std::time::Duration> {
        if self.plan.stall > 0.0 && self.rng(round, client, SALT_STALL).flip(self.plan.stall) {
            Some(std::time::Duration::from_millis(self.plan.stall_ms))
        } else {
            None
        }
    }

    /// Does `client` transmit its complete upload reply twice in `round`?
    pub fn duplicates_upload(&self, round: usize, client: usize) -> bool {
        self.plan.duplicate > 0.0 && self.rng(round, client, SALT_DUP).flip(self.plan.duplicate)
    }

    /// Does edge `edge` die when assigned `round`? A killed edge stays
    /// dead for the rest of the run.
    pub fn kills_edge(&self, round: usize, edge: usize) -> bool {
        match self.plan.kill_edge {
            Some((r, e)) => (round as u32) >= r && edge as u32 == e,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChaosPlan {
        ChaosPlan {
            reset: 0.4,
            stall: 0.3,
            stall_ms: 5,
            duplicate: 0.5,
            kill_edge: Some((2, 1)),
            seed: 99,
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = ChaosInjector::new(plan());
        let b = ChaosInjector::new(plan());
        for round in 0..5 {
            for client in 0..8 {
                assert_eq!(
                    a.resets_upload(round, client),
                    b.resets_upload(round, client)
                );
                assert_eq!(a.stalls(round, client), b.stalls(round, client));
                assert_eq!(
                    a.duplicates_upload(round, client),
                    b.duplicates_upload(round, client)
                );
                assert_eq!(
                    a.torn_cut(round, client, 1000),
                    b.torn_cut(round, client, 1000)
                );
            }
        }
    }

    #[test]
    fn rates_match_probabilities() {
        let inj = ChaosInjector::new(plan());
        let n = 4000;
        let resets = (0..n).filter(|&c| inj.resets_upload(0, c)).count();
        let dups = (0..n).filter(|&c| inj.duplicates_upload(0, c)).count();
        assert!((resets as f64 / n as f64 - 0.4).abs() < 0.03);
        assert!((dups as f64 / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn torn_cut_is_a_strict_nonempty_prefix() {
        let inj = ChaosInjector::new(plan());
        for len in [2usize, 3, 10, 4096] {
            for c in 0..32 {
                let cut = inj.torn_cut(0, c, len);
                assert!(cut >= 1 && cut < len, "cut {cut} of {len}");
            }
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let inj = ChaosInjector::new(ChaosPlan::default());
        assert!(!ChaosPlan::default().is_active());
        for c in 0..32 {
            assert!(!inj.resets_upload(0, c));
            assert!(inj.stalls(0, c).is_none());
            assert!(!inj.duplicates_upload(0, c));
            assert!(!inj.kills_edge(0, c));
        }
    }

    #[test]
    fn scheduled_kill_fires_from_its_round_on() {
        let inj = ChaosInjector::new(plan());
        assert!(!inj.kills_edge(1, 1), "before the scheduled round");
        assert!(inj.kills_edge(2, 1), "at the scheduled round");
        assert!(inj.kills_edge(3, 1), "a killed edge stays dead");
        assert!(!inj.kills_edge(2, 0), "other edges live");
    }

    #[test]
    #[should_panic(expected = "reset must be a probability")]
    fn validate_rejects_bad_probability() {
        ChaosPlan {
            reset: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
