//! The federated-learning simulator: in-process clients around the shared
//! [`RoundDriver`] orchestration core.
//!
//! Aggregation flows through [`RoundDriver::screen_and_aggregate`] — the
//! same [`RoundAccumulator`](crate::RoundAccumulator) front-end the
//! concurrent networked coordinator streams into (DESIGN.md §12). The
//! simulator feeds it in ascending client-id order because that is the
//! order its collection loop produces, but nothing depends on it: the
//! accumulator is order-independent, which is exactly why a TCP round
//! whose uploads complete in scrambled order stays bit-identical to the
//! simulated one.

use crate::{
    client::write_shared, wire, Adversary, Algorithm, ClientState, FaultInjector, FaultKind,
    FaultRecord, FlConfig, GlobalState, RoundDriver, RoundRecord, TransportStats, WireBytes,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spatl_agent::{pretrain_agent, ActorCritic, AgentConfig, PruningEnv};
use spatl_data::Dataset;
use spatl_models::{ModelConfig, SplitModel};
use spatl_tensor::TensorRng;

/// Result of a full run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Model name.
    pub model: String,
    /// Number of clients.
    pub n_clients: usize,
    /// Sample ratio.
    pub sample_ratio: f32,
    /// Per-round records.
    pub history: Vec<RoundRecord>,
    /// Bytes per round per participating client (average).
    pub bytes_per_round_per_client: u64,
}

impl RunResult {
    /// Accuracy after the final round.
    pub fn final_acc(&self) -> f32 {
        self.history.last().map(|r| r.mean_acc).unwrap_or(0.0)
    }

    /// Best accuracy over the run.
    pub fn best_acc(&self) -> f32 {
        self.history.iter().map(|r| r.mean_acc).fold(0.0, f32::max)
    }

    /// First round whose accuracy reaches `target` (1-based count of
    /// communication rounds), if any.
    pub fn rounds_to_target(&self, target: f32) -> Option<usize> {
        self.history
            .iter()
            .position(|r| r.mean_acc >= target)
            .map(|i| i + 1)
    }

    /// Total bytes moved over the run.
    pub fn total_bytes(&self) -> u64 {
        self.history.last().map(|r| r.cumulative_bytes).unwrap_or(0)
    }

    /// Bytes accumulated up to (and including) the round that reaches
    /// `target` accuracy.
    pub fn bytes_to_target(&self, target: f32) -> Option<u64> {
        self.rounds_to_target(target)
            .map(|r| self.history[r - 1].cumulative_bytes)
    }

    /// Total simulated transfer wall-clock over the run, in seconds.
    pub fn total_transfer_s(&self) -> f64 {
        self.history.iter().map(|r| r.transfer_wall_s).sum()
    }

    /// Total *measured* transfer wall-clock over the run, in seconds
    /// (zero unless the run crossed real sockets).
    pub fn total_measured_s(&self) -> f64 {
        self.history.iter().map(|r| r.measured_wall_s).sum()
    }

    /// Total measured bytes on the wire over the run, framing included.
    pub fn total_framed_bytes(&self) -> u64 {
        self.history.iter().map(|r| r.wire.total_framed()).sum()
    }
}

/// A complete federated simulation: the shared [`RoundDriver`] engine plus
/// every client's in-process state. Derefs to the driver, so `sim.cfg`,
/// `sim.global`, `sim.history`, `sim.layout` and `sim.net` read as before
/// the engine was factored out.
pub struct Simulation {
    /// The transport-independent orchestration core (configuration, server
    /// state, sampling stream, aggregation pipeline, history).
    pub driver: RoundDriver,
    /// All clients.
    pub clients: Vec<ClientState>,
}

impl std::ops::Deref for Simulation {
    type Target = RoundDriver;

    fn deref(&self) -> &RoundDriver {
        &self.driver
    }
}

impl std::ops::DerefMut for Simulation {
    fn deref_mut(&mut self) -> &mut RoundDriver {
        &mut self.driver
    }
}

impl Simulation {
    /// Build a simulation: one `(train, val)` shard per client. All clients
    /// start from the same global model initialisation given by
    /// `model_cfg`.
    pub fn new(cfg: FlConfig, model_cfg: ModelConfig, shards: Vec<(Dataset, Dataset)>) -> Self {
        assert_eq!(shards.len(), cfg.n_clients, "one shard per client required");
        let model = model_cfg.with_seed(cfg.seed).build();
        let global = GlobalState::from_model(&model, &cfg.algorithm);

        // SPATL: pre-train one agent on the pruning task and distribute a
        // copy to every client (paper: pre-trained on ResNet-56, shipped to
        // clients, then fine-tuned locally).
        let agent = match cfg.algorithm {
            Algorithm::Spatl(opts) if opts.selection => {
                Some(Self::pretrained_agent(&model, &shards, cfg.seed))
            }
            _ => None,
        };

        let clients: Vec<ClientState> = shards
            .into_iter()
            .enumerate()
            .map(|(id, (train, val))| {
                let mut c = ClientState::new(id, train, val, model.clone());
                c.agent = agent.clone();
                c
            })
            .collect();

        let layout = match cfg.algorithm {
            Algorithm::Spatl(opts) if opts.selection => Some(wire::build_selection_layout(
                &model,
                !cfg.algorithm.uses_transfer(),
            )),
            _ => None,
        };

        Simulation {
            driver: RoundDriver::new(cfg, global, layout),
            clients,
        }
    }

    fn pretrained_agent(
        model: &SplitModel,
        shards: &[(Dataset, Dataset)],
        seed: u64,
    ) -> ActorCritic {
        let mut agent = ActorCritic::new(AgentConfig::default(), seed ^ 0xA9E27);
        // A small pruning pre-training pass on the initial model and the
        // first shard's validation data: enough to give the policy sensible
        // structure before per-client fine-tuning takes over.
        if let Some((_, val)) = shards.first() {
            if !val.is_empty() {
                let env = PruningEnv::new(model.clone(), val.clone(), 0.7);
                let mut rng = TensorRng::seed_from(seed ^ 0x77);
                pretrain_agent(&mut agent, &env, 3, 3, 3, &mut rng);
            }
        }
        agent
    }

    /// Replace every client's agent (e.g. with one pre-trained on
    /// ResNet-56 by `spatl-agent`).
    pub fn set_agent(&mut self, agent: ActorCritic) {
        for c in &mut self.clients {
            c.agent = Some(agent.clone());
        }
    }

    /// Assign per-client FLOPs budgets (one per client) for
    /// resource-heterogeneous deployments; overrides the run-wide
    /// `SpatlOptions::target_flops_ratio` during salient selection.
    pub fn set_client_budgets(&mut self, budgets: &[f32]) {
        assert_eq!(budgets.len(), self.clients.len(), "one budget per client");
        for (c, &b) in self.clients.iter_mut().zip(budgets) {
            assert!((0.0..=1.0).contains(&b), "budget must be a FLOPs fraction");
            c.flops_budget = Some(b);
        }
    }

    /// Run one communication round; returns its record.
    ///
    /// With a [`FaultPlan`](crate::FaultPlan) configured, the round runs
    /// the full degradation pipeline (DESIGN.md §8): sampled clients may
    /// drop out before training, uploads may arrive corrupted and are
    /// retransmitted with exponential backoff up to the plan's retry
    /// budget, stragglers are slowed, and anyone finishing after the
    /// collection deadline is excluded. Aggregation renormalises over the
    /// survivors; a round that loses everyone is a recorded no-op, never a
    /// panic or a NaN.
    pub fn run_round(&mut self) -> RoundRecord {
        let round = self.driver.round_index();
        let sampled = self.driver.sample_round();
        let injector = self.driver.cfg.faults.map(FaultInjector::new);
        let mut faults = FaultRecord::for_sample(sampled.len());

        // Fault stage 1: dropout. A dropped client never trains, never
        // transmits, and costs the round nothing but its absence.
        let selected: Vec<usize> = sampled
            .into_iter()
            .filter(|&i| {
                let drops = injector.as_ref().is_some_and(|inj| inj.drops_out(round, i));
                if drops {
                    faults.push(i, FaultKind::Dropout);
                }
                !drops
            })
            .collect();

        // Churn: a sampled client whose availability window ends this
        // round abandons the round in progress. Every transport filters
        // the cohort through the same pure function and ledgers the
        // departure as a dropout, so the effective cohort is identical
        // in the simulator, the flat coordinator and every edge.
        let departures = crate::churn_departures(&self.driver.cfg, round, &selected);
        let selected: Vec<usize> = selected
            .into_iter()
            .filter(|i| {
                let leaves = departures.contains(i);
                if leaves {
                    faults.push(*i, FaultKind::Dropout);
                }
                !leaves
            })
            .collect();

        if selected.is_empty() {
            // Every sampled client dropped: a recorded no-op round. The
            // global model must survive untouched (regression-tested; the
            // sample-weighted aggregation rules would otherwise divide by
            // an empty cohort).
            faults.no_op = true;
            let per_client_acc = self.evaluate_all();
            return self.driver.noop_round(per_client_acc, faults);
        }

        let in_round: Vec<bool> = {
            let mut v = vec![false; self.driver.cfg.n_clients];
            for &i in &selected {
                v[i] = true;
            }
            v
        };

        // Broadcast: seal the server state once; every participant trains
        // against the *decoded* copy, so the round's tensors really crossed
        // the wire in both directions.
        let p = self.driver.global.shared.len();
        let down = self.driver.broadcast();
        let wire_global = wire::decode_download(&self.driver.cfg, &down.frames, p)
            .expect("server broadcast must decode");

        // Parallel local updates on the sampled clients.
        let cfg = self.driver.cfg;
        let global_ref = &wire_global;
        let mut outcomes: Vec<crate::LocalOutcome> = self
            .clients
            .par_iter_mut()
            .enumerate()
            .filter(|(i, _)| in_round[*i])
            .map(|(_, c)| c.local_update(&cfg, global_ref, round))
            .collect();

        // A client whose local training diverged (non-finite delta)
        // self-reports; its upload is excluded from aggregation and the
        // ledger records why. Distinct from `Quarantined`: this is the
        // client's own verdict, not the server's.
        for o in &outcomes {
            if o.diverged {
                faults.push(o.client_id, FaultKind::LocalDivergence);
            }
        }

        // Byzantine stage: the plan's static malicious cohort rewrites its
        // outcomes and re-seals the frames *before* transmission, so the
        // wire layer (and its CRC) sees perfectly well-formed uploads. The
        // ledger records ground truth; whether the server *catches* the
        // poison is the screen's and the aggregator's business.
        if let Some(adv) = cfg.adversary.map(Adversary::new) {
            let mask = adv.byzantine_mask(cfg.n_clients);
            for o in &mut outcomes {
                if mask[o.client_id] {
                    adv.tamper(&cfg, o, round);
                    faults.push(
                        o.client_id,
                        FaultKind::ByzantineUpload {
                            attack: adv.plan().attack,
                        },
                    );
                }
            }
        }

        // Uplink: the server aggregates what it decodes from each client's
        // frames, never the in-memory tensors. Fault stage 2 corrupts
        // transmission attempts (caught by the envelope CRC and rejected
        // with a typed `WireError`, then retransmitted with exponential
        // backoff up to `max_retries`); fault stage 3 slows stragglers and
        // enforces the server's collection deadline. Wire accounting
        // charges every retransmission.
        let max_retries = injector
            .as_ref()
            .map(|inj| inj.plan().max_retries)
            .unwrap_or(0);
        let deadline = injector.as_ref().and_then(|inj| inj.plan().deadline_s);
        let mut wire_total = WireBytes::default();
        let mut survivors: Vec<crate::LocalOutcome> = Vec::new();
        let mut wall_clock_s = 0f64;
        let mut device_seconds = 0f64;
        for o in &mut outcomes {
            o.wire.download_payload = down.payload;
            o.wire.download_framed = down.framed();
            // Cross-check: the measured tensor payload must equal the
            // analytic Eq. 13 accounting, byte for byte.
            debug_assert_eq!(
                o.wire.download_payload, o.bytes.download,
                "download payload"
            );
            debug_assert_eq!(o.wire.upload_payload, o.bytes.upload, "upload payload");

            // Bounded retransmit loop: `transmissions` counts attempts
            // actually sent (so at most `1 + max_retries`).
            let mut transmissions = 1u32;
            let decoded = loop {
                let corrupt = injector
                    .as_ref()
                    .filter(|inj| inj.corrupts_attempt(round, o.client_id, transmissions));
                let result = match corrupt {
                    Some(inj) => {
                        let mut damaged = o.frames.clone();
                        inj.corrupt_frames(&mut damaged, round, o.client_id, transmissions);
                        self.driver.decode_client_upload(o, &damaged)
                    }
                    None => self.driver.decode_client_upload(o, &o.frames),
                };
                match result {
                    Ok(d) => break Some(d),
                    Err(e) => {
                        // Without injected faults a decode failure is a
                        // protocol bug, not a simulated condition.
                        assert!(cfg.faults.is_some(), "client upload must decode: {e}");
                        let retryable = e.is_transport_corruption();
                        faults.push(
                            o.client_id,
                            FaultKind::CorruptUpload {
                                error: e.to_string(),
                            },
                        );
                        if retryable && transmissions <= max_retries {
                            faults.retries += 1;
                            transmissions += 1;
                        } else {
                            faults.push(o.client_id, FaultKind::RetriesExhausted);
                            break None;
                        }
                    }
                }
            };

            // Retransmissions are real bytes on the wire (the payload
            // accounting stays logical — Eq. 13 charges one upload).
            o.wire.upload_framed *= u64::from(transmissions);
            wire_total.accumulate(&o.wire);

            // Per-client transfer time: straggler slowdown multiplies the
            // link time; retry backoff adds dead air on top.
            let factor = injector
                .as_ref()
                .map(|inj| inj.straggler_factor(round, o.client_id))
                .unwrap_or(1.0);
            if factor > 1.0 {
                faults.push(o.client_id, FaultKind::Straggler);
            }
            let backoff = injector
                .as_ref()
                .map(|inj| inj.backoff_s(transmissions - 1))
                .unwrap_or(0.0);
            let t = self.driver.net.client_time(
                o.wire.download_framed as usize,
                o.wire.upload_framed as usize,
            ) * factor
                + backoff;
            device_seconds += t;
            // The server stops listening at the deadline, so the round
            // never waits longer than `deadline` for any one client.
            wall_clock_s = wall_clock_s.max(deadline.map_or(t, |d| t.min(d)));

            if let Some(d) = decoded {
                if deadline.is_some_and(|dl| t > dl) {
                    faults.push(o.client_id, FaultKind::DeadlineMissed);
                } else {
                    survivors.push(d);
                }
            }
        }

        // Screening + partial-participation aggregation over whatever
        // survived (shared with the networked coordinator); a
        // survivor-less round leaves the global state untouched.
        self.driver.screen_and_aggregate(survivors, &mut faults);

        // Evaluate all clients against the *new* global model.
        let per_client_acc = self.evaluate_all();
        self.driver.finish_round(
            &outcomes,
            TransportStats {
                wire: wire_total,
                transfer_wall_s: wall_clock_s,
                transfer_device_s: device_seconds,
                measured_wall_s: 0.0,
            },
            per_client_acc,
            faults,
        )
    }

    /// Sync every client with the current global weights and compute its
    /// validation accuracy (private predictors and local masks retained).
    pub fn evaluate_all(&mut self) -> Vec<f32> {
        let include_pred = !self.driver.cfg.algorithm.uses_transfer();
        let global = &self.driver.global;
        self.clients
            .par_iter_mut()
            .map(|c| {
                write_shared(&mut c.model, &global.shared, include_pred);
                if !global.buffers.is_empty() {
                    c.model.encoder.set_buffers_flat(&global.buffers);
                }
                c.evaluate()
            })
            .collect()
    }

    /// Deployment finalisation (Eq. 4): every client that never
    /// participated downloads the final encoder and adapts **its predictor
    /// only** on local data before the deployment evaluation — the paper's
    /// protocol for clients outside the sampling set. Only meaningful for
    /// transfer-mode SPATL; a no-op otherwise. Returns post-adaptation
    /// per-client accuracy.
    pub fn finalize(&mut self, adapt_epochs: usize) -> Vec<f32> {
        if self.driver.cfg.algorithm.uses_transfer() {
            let global = &self.driver.global;
            let lr = self.driver.cfg.lr;
            let seed = self.driver.cfg.seed;
            self.clients.par_iter_mut().for_each(|c| {
                if c.participations == 0 {
                    write_shared(&mut c.model, &global.shared, false);
                    if !global.buffers.is_empty() {
                        c.model.encoder.set_buffers_flat(&global.buffers);
                    }
                    crate::adapt_predictor(
                        &mut c.model,
                        &c.train,
                        adapt_epochs,
                        lr,
                        seed ^ 0xF1A1 ^ c.id as u64,
                    );
                }
            });
        }
        self.evaluate_all()
    }

    /// Run all configured rounds and summarise.
    pub fn run(&mut self) -> RunResult {
        for _ in 0..self.driver.cfg.rounds {
            self.run_round();
        }
        self.result()
    }

    /// Summarise the rounds run so far.
    pub fn result(&self) -> RunResult {
        let participants_per_round = self.driver.cfg.clients_per_round() as u64;
        let rounds = self.driver.history.len().max(1) as u64;
        RunResult {
            algorithm: self.driver.cfg.algorithm.name().to_string(),
            model: self
                .clients
                .first()
                .map(|c| c.model.config.kind.name().to_string())
                .unwrap_or_default(),
            n_clients: self.driver.cfg.n_clients,
            sample_ratio: self.driver.cfg.sample_ratio,
            history: self.driver.history.clone(),
            bytes_per_round_per_client: self.driver.cumulative_bytes()
                / (rounds * participants_per_round),
        }
    }
}
