//! Federated-learning run configuration.

use serde::{Deserialize, Serialize};
use spatl_wire::{LinkSpec, SimNet};

/// Network profile of the simulated deployment, mapped to a
/// [`SimNet`] transport model. Kept as a small serializable enum so run
/// configurations stay self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetProfile {
    /// Symmetric broadband (100 Mbit/s, 20 ms, lossless).
    Broadband,
    /// Constrained mobile uplink and downlink (10 Mbit/s, 60 ms, 1% loss).
    Mobile,
    /// Explicit asymmetric link parameters.
    Custom {
        /// Downlink bandwidth, bits per second.
        down_bps: f64,
        /// Uplink bandwidth, bits per second.
        up_bps: f64,
        /// One-way latency, seconds (both directions).
        latency_s: f64,
        /// Independent per-packet loss probability in `[0, 1)`.
        loss: f64,
    },
}

impl NetProfile {
    /// The transport model this profile describes.
    pub fn simnet(&self) -> SimNet {
        match *self {
            NetProfile::Broadband => SimNet::symmetric(LinkSpec::broadband()),
            NetProfile::Mobile => SimNet::symmetric(LinkSpec::mobile()),
            NetProfile::Custom {
                down_bps,
                up_bps,
                latency_s,
                loss,
            } => SimNet {
                downlink: LinkSpec {
                    bandwidth_bps: down_bps,
                    latency_s,
                    loss,
                },
                uplink: LinkSpec {
                    bandwidth_bps: up_bps,
                    latency_s,
                    loss,
                },
            },
        }
    }
}

/// Options specific to SPATL; each switch corresponds to one of the paper's
/// ablations (§V-F).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatlOptions {
    /// Salient parameter selection (§V-F1 ablation when false: upload the
    /// full encoder).
    pub selection: bool,
    /// Heterogeneous transfer learning — private predictors (§V-F2
    /// ablation when false: the predictor is shared and aggregated too).
    pub transfer: bool,
    /// Encoder gradient control (§V-F3 ablation when false).
    pub gradient_control: bool,
    /// FLOPs budget the selection agent must meet (fraction of dense).
    pub target_flops_ratio: f32,
    /// Fine-tune the selection agent during a client's first N
    /// participations (paper: first 10 communication rounds).
    pub finetune_rounds: usize,
    /// PPO epochs per fine-tuning update (paper: 20).
    pub agent_epochs: usize,
    /// Environment samples per fine-tuning update.
    pub agent_steps: usize,
}

impl Default for SpatlOptions {
    fn default() -> Self {
        SpatlOptions {
            selection: true,
            transfer: true,
            gradient_control: true,
            target_flops_ratio: 0.7,
            finetune_rounds: 3,
            agent_epochs: 4,
            agent_steps: 3,
        }
    }
}

/// Which federated-learning algorithm a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// FedAvg (McMahan et al. 2017).
    FedAvg,
    /// FedProx with proximal coefficient μ.
    FedProx {
        /// Proximal term weight.
        mu: f32,
    },
    /// SCAFFOLD stochastic controlled averaging.
    Scaffold,
    /// FedNova normalised averaging.
    FedNova,
    /// SPATL (this paper).
    Spatl(SpatlOptions),
}

impl Algorithm {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::FedAvg => "FedAvg",
            Algorithm::FedProx { .. } => "FedProx",
            Algorithm::Scaffold => "SCAFFOLD",
            Algorithm::FedNova => "FedNova",
            Algorithm::Spatl(_) => "SPATL",
        }
    }

    /// Whether clients keep private predictors (encoder-only sharing).
    pub fn uses_transfer(&self) -> bool {
        matches!(self, Algorithm::Spatl(o) if o.transfer)
    }

    /// Whether the algorithm maintains control variates.
    pub fn uses_control(&self) -> bool {
        matches!(self, Algorithm::Scaffold)
            || matches!(self, Algorithm::Spatl(o) if o.gradient_control)
    }
}

/// How a FedAvg / FedProx client compresses its uploaded delta.
///
/// The codec shapes the *upload* only — downloads stay dense f32 —
/// and the server folds the compressed form directly (DESIGN.md §13):
/// top-k uploads scatter-add into the streaming accumulator without
/// densifying (bit-identical to folding the zero-filled dense vector,
/// because the exact fold skips zero terms), and f16 uploads are
/// decoded coordinate-at-a-time straight off the wire payload.
///
/// SPATL has its own channel-indexed sparse upload; SCAFFOLD and
/// FedNova carry algorithm state pairs that this codec does not cover.
/// Configuring a non-[`Dense`](UploadCodec::Dense) codec with those
/// algorithms is rejected at driver construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum UploadCodec {
    /// Dense f32, 4 bytes per parameter (default; bit-exact).
    #[default]
    Dense,
    /// Keep only the largest-magnitude fraction of delta entries
    /// (CFL-SparseMed-style top-k). Upload cost `8·k` bytes (value +
    /// flat index per survivor); dropped coordinates aggregate as zero.
    TopK {
        /// Fraction of coordinates kept, in `(0, 1]`. The effective
        /// `k = ceil(keep_ratio · n)` is clamped to `[1, n]`.
        keep_ratio: f32,
    },
    /// Quantize every delta entry to IEEE half precision, 2 bytes per
    /// parameter. Round-to-nearest-even: relative error ≤ 2⁻¹¹ for
    /// values in the f16 normal range (documented envelope, asserted
    /// in tests); values beyond ±65504 saturate to ±∞ and poison the
    /// affected coordinate exactly as a non-finite dense upload would.
    F16,
}

impl UploadCodec {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            UploadCodec::Dense => "dense",
            UploadCodec::TopK { .. } => "top-k",
            UploadCodec::F16 => "f16",
        }
    }

    /// The number of entries a top-k upload keeps out of `n`; `n` for
    /// the other codecs (they carry every coordinate).
    pub fn kept(&self, n: usize) -> usize {
        match self {
            UploadCodec::TopK { keep_ratio } => {
                (((n as f32) * keep_ratio).ceil() as usize).clamp(1, n.max(1))
            }
            _ => n,
        }
    }

    /// Panics if the codec is misconfigured or combined with an
    /// algorithm whose upload it cannot encode; called once when a
    /// driver is built.
    pub fn validate(&self, algorithm: &Algorithm) {
        if let UploadCodec::TopK { keep_ratio } = self {
            assert!(
                *keep_ratio > 0.0 && *keep_ratio <= 1.0,
                "keep_ratio must be in (0, 1]"
            );
        }
        if !matches!(self, UploadCodec::Dense) {
            assert!(
                matches!(algorithm, Algorithm::FedAvg | Algorithm::FedProx { .. }),
                "upload codec {} is only defined for FedAvg/FedProx uploads, not {}",
                self.name(),
                algorithm.name()
            );
        }
    }
}

/// Which aggregation rule the server applies to a round's surviving
/// cohort. [`AggregatorKind::WeightedMean`] is each algorithm's published
/// rule (the default, bit-identical to the pre-defense behaviour); the
/// other three are robust variants from the Byzantine-FL literature,
/// implemented for all five algorithms — control variates, momentum
/// buffers, batch-norm statistics and SPATL's channel-indexed sparse
/// uploads included (robust statistics computed per coordinate over the
/// subset of clients that uploaded that coordinate). DESIGN.md §9 covers
/// the trade-offs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// The algorithm's published sample-weighted rule (default). Fast and
    /// statistically efficient, but a single Byzantine upload controls the
    /// result.
    #[default]
    WeightedMean,
    /// Weighted mean after clipping every update to the cohort's median
    /// RMS: an attacker can still bias the direction, but no longer the
    /// magnitude. Non-finite updates are zeroed outright.
    NormClippedMean,
    /// Per-coordinate median over the cohort: tolerates just under half
    /// the cohort being Byzantine, at the cost of ignoring sample weights
    /// and some statistical efficiency on honest rounds.
    CoordinateMedian,
    /// Per-coordinate trimmed mean: drops the `trim_ratio` fraction from
    /// each tail before averaging — a middle ground between mean and
    /// median.
    CoordinateTrimmedMean {
        /// Fraction trimmed from *each* tail, in `[0, 0.5)`. When trimming
        /// would consume the whole sample the statistic falls back to the
        /// median.
        trim_ratio: f32,
    },
}

impl AggregatorKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AggregatorKind::WeightedMean => "weighted-mean",
            AggregatorKind::NormClippedMean => "norm-clipped",
            AggregatorKind::CoordinateMedian => "coord-median",
            AggregatorKind::CoordinateTrimmedMean { .. } => "trimmed-mean",
        }
    }

    /// Panics if a parameter is outside its documented range; called once
    /// when a simulation is built.
    pub fn validate(&self) {
        if let AggregatorKind::CoordinateTrimmedMean { trim_ratio } = self {
            assert!(
                (0.0..0.5).contains(trim_ratio),
                "trim_ratio must be in [0, 0.5)"
            );
        }
    }
}

/// Full configuration of a federated run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of clients.
    pub n_clients: usize,
    /// Fraction of clients sampled per round (paper: 0.4-1.0).
    pub sample_ratio: f32,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs per round (paper: 10).
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local SGD momentum.
    pub momentum: f32,
    /// Local weight decay.
    pub weight_decay: f32,
    /// Server-side aggregation step size (1.0 = plain averaging).
    pub server_lr: f32,
    /// Master seed for sampling, batching and initialisation.
    pub seed: u64,
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// Simulated transport the round's frames travel over.
    pub net: NetProfile,
    /// Faults injected into every round ([`FaultPlan`]); `None` runs
    /// pristine rounds.
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    pub faults: Option<crate::FaultPlan>,
    /// Byzantine clients simulated by an [`AdversaryPlan`]; `None` means
    /// every client is honest.
    ///
    /// [`AdversaryPlan`]: crate::AdversaryPlan
    pub adversary: Option<crate::AdversaryPlan>,
    /// Server-side update screening ([`ScreenPolicy`]) applied between
    /// decode and aggregation; `None` trusts every decoded upload.
    ///
    /// [`ScreenPolicy`]: crate::ScreenPolicy
    pub screen: Option<crate::ScreenPolicy>,
    /// The aggregation rule the server applies
    /// ([`AggregatorKind::WeightedMean`] reproduces each algorithm's
    /// published behaviour exactly).
    pub aggregator: AggregatorKind,
    /// How FedAvg / FedProx clients compress their uploaded deltas
    /// ([`UploadCodec::Dense`] reproduces the pre-codec wire format and
    /// byte accounting exactly).
    pub upload_codec: UploadCodec,
    /// Transport chaos injected into the networked runtime
    /// ([`ChaosPlan`]); `None` runs a pristine transport. The in-process
    /// simulator has no transport and ignores a configured plan.
    ///
    /// [`ChaosPlan`]: crate::ChaosPlan
    pub chaos: Option<crate::ChaosPlan>,
    /// Client churn ([`ChurnPlan`]): availability-driven cohort sampling
    /// plus mid-round departures; `None` keeps the fixed-roster seeded
    /// `choose_k` sampling.
    ///
    /// [`ChurnPlan`]: crate::ChurnPlan
    pub churn: Option<crate::ChurnPlan>,
}

impl FlConfig {
    /// Reasonable defaults for the harness scale (small rounds; override
    /// per experiment).
    pub fn new(algorithm: Algorithm) -> Self {
        FlConfig {
            n_clients: 10,
            sample_ratio: 1.0,
            rounds: 10,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            server_lr: 1.0,
            seed: 0,
            algorithm,
            net: NetProfile::Broadband,
            faults: None,
            adversary: None,
            screen: None,
            aggregator: AggregatorKind::WeightedMean,
            upload_codec: UploadCodec::Dense,
            chaos: None,
            churn: None,
        }
    }

    /// Number of clients sampled each round (at least one).
    pub fn clients_per_round(&self) -> usize {
        ((self.n_clients as f32 * self.sample_ratio).round() as usize).clamp(1, self.n_clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clients_per_round_clamps() {
        let mut cfg = FlConfig::new(Algorithm::FedAvg);
        cfg.n_clients = 10;
        cfg.sample_ratio = 0.4;
        assert_eq!(cfg.clients_per_round(), 4);
        cfg.sample_ratio = 0.0;
        assert_eq!(cfg.clients_per_round(), 1);
        cfg.sample_ratio = 5.0;
        assert_eq!(cfg.clients_per_round(), 10);
    }

    #[test]
    fn upload_codec_kept_counts() {
        assert_eq!(UploadCodec::Dense.kept(100), 100);
        assert_eq!(UploadCodec::F16.kept(100), 100);
        assert_eq!(UploadCodec::TopK { keep_ratio: 0.1 }.kept(100), 10);
        // ceil + clamp: never zero, never above n.
        assert_eq!(UploadCodec::TopK { keep_ratio: 0.001 }.kept(100), 1);
        assert_eq!(UploadCodec::TopK { keep_ratio: 1.0 }.kept(7), 7);
    }

    #[test]
    #[should_panic(expected = "only defined for FedAvg/FedProx")]
    fn upload_codec_rejects_scaffold() {
        UploadCodec::F16.validate(&Algorithm::Scaffold);
    }

    #[test]
    #[should_panic(expected = "keep_ratio must be in (0, 1]")]
    fn upload_codec_rejects_bad_ratio() {
        UploadCodec::TopK { keep_ratio: 0.0 }.validate(&Algorithm::FedAvg);
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(Algorithm::FedAvg.name(), "FedAvg");
        assert!(!Algorithm::FedAvg.uses_control());
        assert!(Algorithm::Scaffold.uses_control());
        let spatl = Algorithm::Spatl(SpatlOptions::default());
        assert!(spatl.uses_control() && spatl.uses_transfer());
        let no_gc = Algorithm::Spatl(SpatlOptions {
            gradient_control: false,
            ..Default::default()
        });
        assert!(!no_gc.uses_control());
    }
}
