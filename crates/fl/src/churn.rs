//! Churn-realistic cohorts: trace-driven client arrival, periodic
//! availability and mid-round departure over a large virtual-client
//! population (ROADMAP item 4b).
//!
//! Real federated populations are not a fixed roster: cross-device
//! clients come and go with diurnal waves, join the deployment mid-run
//! and vanish mid-round; cross-silo clients are mostly-always-on. A
//! [`ChurnPlan`] models this with three seeded ingredients, all O(1) per
//! query so a 100k+ virtual population costs nothing to hold:
//!
//! * **Arrival** — each client joins the deployment at a round drawn
//!   uniformly from `[0, arrival_span]` (0 = everyone present at round
//!   0, the cross-silo profile).
//! * **Periodic availability** — the population shares a cycle of
//!   `period` rounds; each client is up for the first `ceil(duty ·
//!   period)` rounds of the cycle at its own random phase, producing a
//!   staggered diurnal wave. An independent per-`(round, client)`
//!   `flake` coin models sporadic unavailability on top.
//! * **Mid-round departure** — a client whose availability window ends
//!   this round abandons the round in progress with probability
//!   `abrupt`; every aggregation tier ledgers it as a
//!   [`Dropout`](crate::FaultKind::Dropout).
//!
//! Cohorts are drawn per round by seeded rejection sampling over the
//! available population — O(cohort) memory regardless of population
//! size, and a pure function of `(plan seed, round)` so the simulator,
//! the flat coordinator and every edge aggregator derive the identical
//! cohort independently (the same property the seeded `choose_k` stream
//! gives churn-free sessions).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;

use crate::faults::splitmix;

const SALT_ARRIVE: u64 = 0xA1;
const SALT_PHASE: u64 = 0xF4;
const SALT_FLAKE: u64 = 0xFE;
const SALT_EXIT: u64 = 0xE1;
const SALT_COHORT: u64 = 0xC1;

/// A seeded description of client churn. Part of
/// [`FlConfig`](crate::FlConfig); `None` there keeps the fixed-roster
/// `choose_k` sampling. When set, round cohorts are drawn from the
/// currently *available* population instead, and may be smaller than
/// `clients_per_round` (even empty — such a round is a recorded no-op).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Availability cycle length in rounds (≥ 1). Every client repeats
    /// its up/down pattern with this period, at its own phase.
    pub period: u32,
    /// Fraction of the cycle a client is up, in `(0, 1]`.
    pub duty: f64,
    /// Clients arrive (first become samplable) at a round drawn
    /// uniformly from `[0, arrival_span]`; 0 means the whole population
    /// exists from round 0.
    pub arrival_span: u32,
    /// Probability that an otherwise-available client is sporadically
    /// unavailable in a given round. In `[0, 1]`.
    pub flake: f64,
    /// Probability that a client whose availability window ends this
    /// round abandons the round *in progress* (trained but never
    /// uploads). In `[0, 1]`.
    pub abrupt: f64,
    /// Seed of the churn RNG streams, independent of the training seed.
    pub seed: u64,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan {
            period: 24,
            duty: 1.0,
            arrival_span: 0,
            flake: 0.0,
            abrupt: 0.0,
            seed: 0xC4E2,
        }
    }
}

impl ChurnPlan {
    /// Cross-silo availability profile: the whole population is enrolled
    /// from round 0 and almost always reachable.
    pub fn cross_silo() -> Self {
        ChurnPlan {
            period: 24,
            duty: 0.95,
            arrival_span: 0,
            flake: 0.01,
            abrupt: 0.05,
            ..Default::default()
        }
    }

    /// Cross-device availability profile: staggered enrolment, a diurnal
    /// wave with clients up less than half the time, frequent sporadic
    /// flakes and common mid-round abandonment.
    pub fn cross_device() -> Self {
        ChurnPlan {
            period: 24,
            duty: 0.4,
            arrival_span: 8,
            flake: 0.1,
            abrupt: 0.25,
            ..Default::default()
        }
    }

    /// Panics if a field is out of range; called once when a driver is
    /// built.
    pub fn validate(&self) {
        assert!(self.period >= 1, "period must be at least one round");
        assert!(
            self.duty > 0.0 && self.duty <= 1.0,
            "duty must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.flake),
            "flake must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.abrupt),
            "abrupt must be a probability"
        );
    }
}

/// Answers availability and cohort queries for a [`ChurnPlan`], the way
/// [`FaultInjector`](crate::FaultInjector) answers payload-fault queries:
/// stateless apart from the plan, every answer a pure function of the
/// seed, so any participant can evaluate any client at any round in O(1)
/// without materialising the population.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    plan: ChurnPlan,
}

impl ChurnModel {
    /// Build a model for a validated plan.
    pub fn new(plan: ChurnPlan) -> Self {
        plan.validate();
        ChurnModel { plan }
    }

    /// The plan this model evaluates.
    pub fn plan(&self) -> &ChurnPlan {
        &self.plan
    }

    fn rng(&self, round: usize, client: usize, salt: u64) -> TensorRng {
        let s = splitmix(
            self.plan.seed ^ splitmix((round as u64) ^ splitmix((client as u64) ^ splitmix(salt))),
        );
        TensorRng::seed_from(s)
    }

    /// The round `client` first becomes part of the population.
    pub fn arrival(&self, client: usize) -> usize {
        self.rng(0, client, SALT_ARRIVE)
            .below(self.plan.arrival_span as usize + 1)
    }

    /// Rounds of each cycle this client is up (≥ 1).
    fn window(&self) -> usize {
        ((self.plan.duty * self.plan.period as f64).ceil() as usize).max(1)
    }

    /// Whether the periodic schedule (arrival + duty window, flakes
    /// excluded) has `client` up in `round`.
    fn scheduled_up(&self, round: usize, client: usize) -> bool {
        if round < self.arrival(client) {
            return false;
        }
        let period = self.plan.period as usize;
        let phase = self.rng(0, client, SALT_PHASE).below(period);
        (round + phase) % period < self.window()
    }

    /// Is `client` available (samplable) in `round`?
    pub fn available(&self, round: usize, client: usize) -> bool {
        self.scheduled_up(round, client)
            && !(self.plan.flake > 0.0 && self.rng(round, client, SALT_FLAKE).flip(self.plan.flake))
    }

    /// Does `client`, sampled in `round`, abandon the round in progress?
    /// Fires only when its availability window ends at this round.
    pub fn departs_mid_round(&self, round: usize, client: usize) -> bool {
        self.plan.abrupt > 0.0
            && self.scheduled_up(round, client)
            && !self.scheduled_up(round + 1, client)
            && self.rng(round, client, SALT_EXIT).flip(self.plan.abrupt)
    }

    /// Draw round `round`'s cohort: up to `k` distinct available clients
    /// from a population of `population`, by seeded rejection sampling —
    /// O(k) memory however large the population. Returns ascending
    /// client ids; fewer than `k` (possibly zero) when availability is
    /// scarce. A pure function of `(plan.seed, round)`.
    pub fn sample_cohort(&self, round: usize, k: usize, population: usize) -> Vec<usize> {
        assert!(population > 0, "cannot sample an empty population");
        let mut rng = self.rng(round, 0, SALT_COHORT);
        let mut chosen: BTreeSet<usize> = BTreeSet::new();
        // Rejection sampling needs a draw budget: with sparse
        // availability (or k close to the available count) the tail
        // draws mostly collide or land on offline clients. The budget is
        // generous enough that under any plan with a non-degenerate duty
        // cycle the shortfall is availability, not bad luck.
        let mut budget = k.saturating_mul(64) + 256;
        while chosen.len() < k && budget > 0 {
            budget -= 1;
            let c = rng.below(population);
            if !chosen.contains(&c) && self.available(round, c) {
                chosen.insert(c);
            }
        }
        chosen.into_iter().collect()
    }

    /// Fraction of `population` available in `round` (exact scan; used
    /// by tests and the `exp_churn` report, not by the hot path).
    pub fn availability_rate(&self, round: usize, population: usize) -> f64 {
        let up = (0..population)
            .filter(|&c| self.available(round, c))
            .count();
        up as f64 / population as f64
    }
}

/// The subset of `cohort` that abandons round `round` in progress under
/// the session's churn plan (empty when no plan is configured). Every
/// aggregation tier — simulator, flat coordinator, edge — filters its
/// cohort through this before training/broadcast and ledgers each
/// departure as a [`Dropout`](crate::FaultKind::Dropout), so all
/// transports see the identical effective cohort.
pub fn churn_departures(cfg: &crate::FlConfig, round: usize, cohort: &[usize]) -> Vec<usize> {
    match cfg.churn {
        Some(plan) => {
            let model = ChurnModel::new(plan);
            cohort
                .iter()
                .copied()
                .filter(|&c| model.departs_mid_round(round, c))
                .collect()
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChurnPlan {
        ChurnPlan {
            period: 8,
            duty: 0.5,
            arrival_span: 4,
            flake: 0.05,
            abrupt: 0.3,
            seed: 77,
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let a = ChurnModel::new(plan());
        let b = ChurnModel::new(plan());
        for round in 0..20 {
            for client in 0..64 {
                assert_eq!(a.available(round, client), b.available(round, client));
                assert_eq!(
                    a.departs_mid_round(round, client),
                    b.departs_mid_round(round, client)
                );
            }
            assert_eq!(
                a.sample_cohort(round, 8, 1000),
                b.sample_cohort(round, 8, 1000)
            );
        }
    }

    #[test]
    fn cohorts_are_sorted_distinct_and_available() {
        let m = ChurnModel::new(plan());
        for round in 0..10 {
            let cohort = m.sample_cohort(round, 16, 10_000);
            assert!(cohort.len() <= 16);
            for w in cohort.windows(2) {
                assert!(w[0] < w[1], "ascending and distinct");
            }
            for &c in &cohort {
                assert!(m.available(round, c), "client {c} must be available");
            }
        }
    }

    #[test]
    fn large_population_sampling_is_cohort_sized() {
        // 1M virtual clients: only the cohort is ever materialised.
        let m = ChurnModel::new(ChurnPlan {
            arrival_span: 0,
            ..plan()
        });
        let cohort = m.sample_cohort(3, 32, 1_000_000);
        assert_eq!(cohort.len(), 32, "a 1M population always fills a 32-cohort");
        assert!(cohort.iter().all(|&c| c < 1_000_000));
    }

    #[test]
    fn availability_tracks_the_duty_cycle() {
        // No arrivals / flakes: the population-wide availability each
        // round must be close to `duty` (phases are uniform).
        let m = ChurnModel::new(ChurnPlan {
            period: 10,
            duty: 0.5,
            arrival_span: 0,
            flake: 0.0,
            abrupt: 0.0,
            seed: 3,
        });
        for round in 0..10 {
            let rate = m.availability_rate(round, 4000);
            assert!((rate - 0.5).abs() < 0.05, "round {round}: rate {rate}");
        }
    }

    #[test]
    fn arrivals_ramp_the_population_up() {
        let m = ChurnModel::new(ChurnPlan {
            period: 4,
            duty: 1.0,
            arrival_span: 10,
            flake: 0.0,
            abrupt: 0.0,
            seed: 5,
        });
        let early = m.availability_rate(0, 4000);
        let late = m.availability_rate(10, 4000);
        assert!(early < 0.2, "round 0 sees ~1/11 of the population: {early}");
        assert!(late > 0.99, "by round 10 everyone has arrived: {late}");
    }

    #[test]
    fn departures_only_at_window_boundaries() {
        let m = ChurnModel::new(plan());
        for round in 0..20 {
            for client in 0..200 {
                if m.departs_mid_round(round, client) {
                    assert!(
                        m.scheduled_up(round, client) && !m.scheduled_up(round + 1, client),
                        "departure must sit on a window boundary"
                    );
                }
            }
        }
    }

    #[test]
    fn profiles_differ_as_advertised() {
        let silo = ChurnModel::new(ChurnPlan::cross_silo());
        let device = ChurnModel::new(ChurnPlan::cross_device());
        let silo_rate = silo.availability_rate(5, 2000);
        let device_rate = device.availability_rate(5, 2000);
        assert!(
            silo_rate > 0.9,
            "cross-silo is almost always on: {silo_rate}"
        );
        assert!(
            device_rate < silo_rate,
            "cross-device churns harder: {device_rate} vs {silo_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "duty must be in (0, 1]")]
    fn validate_rejects_zero_duty() {
        ChurnPlan {
            duty: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
