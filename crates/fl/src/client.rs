//! Client-side state and local update rules.

use crate::{Algorithm, CommModel, FlConfig, GlobalState, RoundBytes};
use spatl_agent::{finetune_agent, ActorCritic, PruningEnv};
use spatl_data::Dataset;
use spatl_models::SplitModel;
use spatl_nn::{CrossEntropyLoss, Optimizer, Sgd};
use spatl_pruning::{apply_sparsities, salient_param_indices, Criterion};
use spatl_tensor::TensorRng;

/// A SPATL salient upload: values of the selected encoder entries plus the
/// (channel-granular) selection metadata.
#[derive(Debug, Clone)]
pub struct SelectedUpdate {
    /// Flat indices into the shared vector that were uploaded.
    pub indices: Vec<u32>,
    /// Delta values at those indices.
    pub values: Vec<f32>,
    /// Number of surviving channels (what the index upload actually costs).
    pub channels: usize,
    /// Surviving channel ids in the session's [`SelectionLayout`] — what
    /// the wire actually carries; `indices` is their expansion.
    ///
    /// [`SelectionLayout`]: spatl_wire::SelectionLayout
    pub channel_ids: Vec<u32>,
}

/// A FedAvg / FedProx upload that arrived compressed
/// ([`UploadCodec`](crate::UploadCodec)) and has not been densified:
/// the streaming fold consumes this form directly, so the server never
/// materialises the `4·p`-byte dense delta for it (DESIGN.md §13).
#[derive(Debug, Clone)]
pub enum CompressedDelta {
    /// Top-k sparse: strictly increasing flat indices and their values
    /// over a dense vector of `dense_len` coordinates; every index not
    /// listed aggregates as exactly zero.
    TopK {
        /// Length of the dense delta this sparsifies.
        dense_len: usize,
        /// Flat indices of the kept coordinates, strictly increasing.
        indices: Vec<u32>,
        /// Delta values at those indices.
        values: Vec<f32>,
    },
    /// Raw little-endian IEEE half-precision payload, 2 bytes per
    /// coordinate; decoded coordinate-at-a-time during the fold
    /// (f16 → f32 is exact, so the fold is bit-identical to folding the
    /// decoded dense vector).
    F16(Vec<u8>),
}

impl CompressedDelta {
    /// Expand to the dense f32 delta this upload represents.
    pub fn to_dense(&self) -> Vec<f32> {
        match self {
            CompressedDelta::TopK {
                dense_len,
                indices,
                values,
            } => {
                let mut out = vec![0.0f32; *dense_len];
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
                out
            }
            CompressedDelta::F16(bytes) => bytes
                .chunks_exact(2)
                .map(|c| spatl_wire::f16::f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
                .collect(),
        }
    }
}

/// Everything a client sends back (plus bookkeeping the simulator keeps).
#[derive(Debug, Clone)]
pub struct LocalOutcome {
    /// Client id.
    pub client_id: usize,
    /// Local training-set size (aggregation weight).
    pub n_samples: usize,
    /// Local optimisation steps taken (FedNova normalisation, SCAFFOLD
    /// control update).
    pub tau: usize,
    /// Dense shared-vector delta `y − x`.
    pub delta: Vec<f32>,
    /// SPATL-only: the sparse upload. When present the server must ignore
    /// `delta` outside `selected.indices`.
    pub selected: Option<SelectedUpdate>,
    /// FedAvg / FedProx only: set by [`decode_upload`] when the upload
    /// travelled under a non-dense [`UploadCodec`] — `delta` is then
    /// empty and the fold consumes this form directly. Consumers that
    /// need the dense vector (cohort statistics) call
    /// [`LocalOutcome::densify`] explicitly.
    ///
    /// [`decode_upload`]: crate::wire::decode_upload
    /// [`UploadCodec`]: crate::UploadCodec
    pub compressed: Option<CompressedDelta>,
    /// SCAFFOLD: the client's control-variate step `Δcᵢ = cᵢ⁺ − cᵢ`,
    /// uploaded next to the delta.
    pub control_delta: Option<Vec<f32>>,
    /// FedNova: the local momentum buffer, uploaded next to the delta.
    pub velocity: Option<Vec<f32>>,
    /// Batch-norm running statistics after local training.
    pub buffers: Vec<f32>,
    /// True if the update contained non-finite values (rejected server-side).
    pub diverged: bool,
    /// Analytic bytes this client's round cost (Eq. 13).
    pub bytes: RoundBytes,
    /// Measured wire traffic (upload side filled by the client; download
    /// side filled by the simulator, which knows the broadcast frames).
    pub wire: crate::WireBytes,
    /// The sealed upload frames this outcome travels as; the server decodes
    /// these, never the fields above, when aggregating a wire round. Under
    /// an injected [`FaultPlan`](crate::FaultPlan) a transmission attempt
    /// is a *bit-flipped copy* of these frames — this pristine sealed form
    /// is what every retransmission restarts from.
    pub frames: Vec<Vec<u8>>,
    /// Fraction of shared parameters uploaded (1.0 = dense).
    pub keep_ratio: f32,
    /// FLOPs of the client's (masked) model relative to dense.
    pub flops_ratio: f32,
}

impl LocalOutcome {
    /// Expand a compressed upload into the dense `delta`, in place.
    ///
    /// The streaming fold never needs this; spill-mode aggregation,
    /// screening and edge-side reduction do (their cohort statistics
    /// read dense vectors), and each calls it at the point where the
    /// O(model) densification cost is actually incurred. No-op for
    /// dense uploads.
    pub fn densify(&mut self) {
        if let Some(c) = self.compressed.take() {
            self.delta = c.to_dense();
        }
    }
}

/// One federated client: private data, private predictor, optional control
/// variate and selection agent.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Client id (stable across rounds).
    pub id: usize,
    /// Local training shard.
    pub train: Dataset,
    /// Local validation shard (accuracy reporting + selection reward).
    pub val: Dataset,
    /// The client's model. The encoder is overwritten from the server at
    /// each participation; the predictor is private under SPATL transfer.
    pub model: SplitModel,
    /// SCAFFOLD/SPATL control variate `cᵢ` over the shared vector (empty
    /// until first used).
    pub control: Vec<f32>,
    /// SPATL selection agent (local copy, fine-tuned online).
    pub agent: Option<ActorCritic>,
    /// How many rounds this client has participated in.
    pub participations: usize,
    /// Device-specific FLOPs budget overriding the run-wide
    /// `SpatlOptions::target_flops_ratio` (resource-heterogeneous edge
    /// deployments: weaker devices declare tighter budgets).
    pub flops_budget: Option<f32>,
}

/// Read the shared vector out of a model.
pub(crate) fn read_shared(model: &SplitModel, include_predictor: bool) -> Vec<f32> {
    let mut v = model.encoder.to_flat();
    if include_predictor {
        v.extend(model.predictor.to_flat());
    }
    v
}

/// Write the shared vector into a model.
pub(crate) fn write_shared(model: &mut SplitModel, shared: &[f32], include_predictor: bool) {
    let enc_len = model.encoder.num_params();
    model.encoder.from_flat(&shared[..enc_len]);
    if include_predictor {
        model.predictor.from_flat(&shared[enc_len..]);
    } else {
        assert_eq!(shared.len(), enc_len, "shared vector length mismatch");
    }
}

impl ClientState {
    /// Create a client. The model should be the same global initialisation
    /// for every client.
    pub fn new(id: usize, train: Dataset, val: Dataset, model: SplitModel) -> Self {
        ClientState {
            id,
            train,
            val,
            model,
            control: Vec::new(),
            agent: None,
            participations: 0,
            flops_budget: None,
        }
    }

    /// Run one local update per the configured algorithm; returns the
    /// upload.
    pub fn local_update(
        &mut self,
        cfg: &FlConfig,
        global: &GlobalState,
        round: usize,
    ) -> LocalOutcome {
        let include_pred = !cfg.algorithm.uses_transfer();
        let uses_control = cfg.algorithm.uses_control();

        // 1. Download: sync shared weights (and BN buffers) from server.
        write_shared(&mut self.model, &global.shared, include_pred);
        if !global.buffers.is_empty() {
            self.model.encoder.set_buffers_flat(&global.buffers);
        }
        self.model.clear_masks(); // always *train* dense

        if uses_control && self.control.len() != global.shared.len() {
            self.control = vec![0.0; global.shared.len()];
        }
        // Gradient correction c − cᵢ (Eq. 9).
        let correction: Option<Vec<f32>> = uses_control.then(|| {
            global
                .control
                .iter()
                .zip(&self.control)
                .map(|(c, ci)| c - ci)
                .collect()
        });

        // 2. Local epochs.
        let mut rng = TensorRng::seed_from(
            cfg.seed ^ (round as u64).wrapping_mul(0x9E37_79B9) ^ (self.id as u64) << 32,
        );
        let mut opt_enc = Sgd::with_momentum(cfg.lr, cfg.momentum, cfg.weight_decay);
        let mut opt_pred = Sgd::with_momentum(cfg.lr, cfg.momentum, cfg.weight_decay);
        let mut loss = CrossEntropyLoss::new();
        let mut tau = 0usize;
        let enc_len = self.model.encoder.num_params();

        // Transfer mode: the freshly downloaded encoder has moved while the
        // private head stayed put; re-align the head first (one head-only
        // epoch — Eq. 4 applied at the start of each participation) so the
        // joint update doesn't spend its first steps undoing stale-head
        // gradients in the encoder.
        if !include_pred {
            for batch in self.train.batches(cfg.batch_size, &mut rng) {
                self.model.zero_grad();
                let emb = self.model.encoder.forward(&batch.images, true);
                let logits = self.model.predictor.forward(&emb, true);
                self.model.encoder.recycle(emb);
                loss.forward(&logits, &batch.labels);
                self.model.predictor.recycle(logits);
                let g = loss.backward();
                let gemb = self.model.predictor.backward(&g);
                self.model.predictor.recycle(g);
                self.model.predictor.recycle(gemb);
                opt_pred.step(&mut self.model.predictor);
            }
            self.model.encoder.clear_caches();
        }

        for _epoch in 0..cfg.local_epochs {
            for batch in self.train.batches(cfg.batch_size, &mut rng) {
                self.model.zero_grad();
                let logits = self.model.forward(&batch.images, true);
                loss.forward(&logits, &batch.labels);
                self.model.recycle(logits);
                let g = loss.backward();
                let gx = self.model.backward(&g);
                self.model.recycle(g);
                self.model.recycle(gx);

                // FedProx: + μ(w − w_global) on the shared part.
                if let Algorithm::FedProx { mu } = cfg.algorithm {
                    let cur = read_shared(&self.model, include_pred);
                    let prox: Vec<f32> = cur
                        .iter()
                        .zip(&global.shared)
                        .map(|(w, wg)| mu * (w - wg))
                        .collect();
                    self.model.encoder.add_to_grads(&prox[..enc_len]);
                    if include_pred {
                        self.model.predictor.add_to_grads(&prox[enc_len..]);
                    }
                }
                // SCAFFOLD / SPATL gradient control: + (c − cᵢ).
                if let Some(corr) = &correction {
                    self.model.encoder.add_to_grads(&corr[..enc_len]);
                    if include_pred && corr.len() > enc_len {
                        self.model.predictor.add_to_grads(&corr[enc_len..]);
                    }
                }

                opt_enc.step(&mut self.model.encoder);
                opt_pred.step(&mut self.model.predictor);
                tau += 1;
            }
        }

        // 3. Delta and divergence check. A client that detects a
        //    non-finite delta self-reports (`diverged`): aggregation skips
        //    the upload and the round's ledger records it as
        //    `FaultKind::LocalDivergence` — the honest counterpart of the
        //    server-side `Quarantined` verdict, which exists for uploads
        //    that *claim* to be healthy (see `crate::screen`).
        let new_shared = read_shared(&self.model, include_pred);
        let delta: Vec<f32> = new_shared
            .iter()
            .zip(&global.shared)
            .map(|(y, x)| y - x)
            .collect();
        let diverged = delta.iter().any(|v| !v.is_finite());

        // 4. Control-variate update (SCAFFOLD option II, Eq. 10):
        //    cᵢ⁺ = cᵢ − c + (x − y)/(K·η_eff) = cᵢ − c − δ/(τ·η_eff).
        //    With momentum-m SGD the cumulative step per unit gradient is
        //    ≈ η/(1−m), so the effective learning rate replaces η in the
        //    gradient estimate (x − y)/(K·η).
        let mut control_delta = None;
        if uses_control && !diverged && tau > 0 {
            let eta_eff = cfg.lr / (1.0 - cfg.momentum).max(1e-3);
            let scale = 1.0 / (tau as f32 * eta_eff);
            let mut step = Vec::with_capacity(self.control.len());
            for ((ci, &c), &d) in self.control.iter_mut().zip(&global.control).zip(&delta) {
                let d_ci = -c - d * scale;
                *ci += d_ci;
                step.push(d_ci);
            }
            control_delta = Some(step);
        }

        // FedNova uploads the local momentum buffer next to the delta.
        let velocity = matches!(cfg.algorithm, Algorithm::FedNova).then(|| {
            let mut v = opt_enc.velocity_flat(enc_len);
            if include_pred {
                v.extend(opt_pred.velocity_flat(delta.len() - enc_len));
            }
            v
        });

        // 5. SPATL: salient selection.
        let mut selected = None;
        let mut keep_ratio = 1.0f32;
        let mut flops_ratio = 1.0f32;
        let bytes;
        match cfg.algorithm {
            Algorithm::Spatl(opts) if opts.selection && !diverged => {
                let (idx, channel_ids) = self.run_selection(cfg, &opts, round);
                flops_ratio = self.model.flops() as f32 / self.model.flops_dense() as f32;
                // Under transfer the shared vector *is* the encoder; without
                // transfer the predictor part is always fully selected.
                let mut indices = idx;
                if include_pred {
                    indices.extend((enc_len..delta.len()).map(|i| i as u32));
                }
                keep_ratio = indices.len() as f32 / delta.len() as f32;
                let values: Vec<f32> = indices.iter().map(|&i| delta[i as usize]).collect();
                bytes = CommModel::spatl(
                    global.shared.len(),
                    indices.len(),
                    channel_ids.len(),
                    opts.gradient_control,
                );
                selected = Some(SelectedUpdate {
                    indices,
                    values,
                    channels: channel_ids.len(),
                    channel_ids,
                });
            }
            Algorithm::Spatl(opts) => {
                // Selection disabled (ablation): dense upload, but still
                // encoder-only + control accounting.
                bytes = CommModel::spatl(
                    global.shared.len(),
                    global.shared.len(),
                    0,
                    opts.gradient_control,
                );
            }
            Algorithm::Scaffold => bytes = CommModel::scaffold(global.shared.len()),
            Algorithm::FedNova => bytes = CommModel::fednova(global.shared.len()),
            Algorithm::FedAvg | Algorithm::FedProx { .. } => {
                let p = global.shared.len();
                bytes = match cfg.upload_codec {
                    crate::UploadCodec::Dense => CommModel::dense(p),
                    crate::UploadCodec::TopK { .. } => {
                        let k = cfg.upload_codec.kept(p);
                        keep_ratio = k as f32 / p.max(1) as f32;
                        CommModel::dense_topk(p, k)
                    }
                    crate::UploadCodec::F16 => CommModel::dense_f16(p),
                };
            }
        }

        self.participations += 1;
        let mut outcome = LocalOutcome {
            client_id: self.id,
            n_samples: self.train.len(),
            tau,
            delta,
            selected,
            compressed: None,
            control_delta,
            velocity,
            buffers: self.model.encoder.buffers_flat(),
            diverged,
            bytes,
            wire: crate::WireBytes::default(),
            frames: Vec::new(),
            keep_ratio,
            flops_ratio,
        };
        // Seal the upload: these frames, not the fields above, are what the
        // server decodes when the simulator runs a wire round.
        let encoded = crate::wire::encode_upload(cfg, &outcome);
        outcome.wire.upload_payload = encoded.payload;
        outcome.wire.upload_framed = encoded.framed();
        outcome.frames = encoded.frames;
        outcome
    }

    /// Run (and possibly fine-tune) the selection agent; applies the chosen
    /// masks to `self.model` and returns the salient flat indices of the
    /// *encoder* plus the surviving channel ids (numbered in prune-point
    /// order, then channel order — the session [`SelectionLayout`] scheme).
    ///
    /// [`SelectionLayout`]: spatl_wire::SelectionLayout
    fn run_selection(
        &mut self,
        cfg: &FlConfig,
        opts: &crate::SpatlOptions,
        round: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let budget = self.flops_budget.unwrap_or(opts.target_flops_ratio);
        let mut rng =
            TensorRng::seed_from(cfg.seed ^ 0xA6E47 ^ (self.id as u64) << 17 ^ round as u64);
        let mut env_model = self.model.clone();
        env_model.clear_caches();
        let env = PruningEnv::new(env_model, self.val.clone(), budget);

        let action = match &mut self.agent {
            Some(agent) => {
                if self.participations < opts.finetune_rounds {
                    finetune_agent(
                        agent,
                        &env,
                        1,
                        opts.agent_steps,
                        opts.agent_epochs,
                        &mut rng,
                    );
                }
                let graph = env.graph();
                agent.evaluate(&graph).mu
            }
            None => {
                // No agent (degenerate config): keep everything.
                vec![0.0; self.model.prune_points.len()]
            }
        };
        let applied = spatl_agent::project_to_budget(&self.model, &action, budget, Criterion::L2);
        apply_sparsities(&mut self.model, &applied, Criterion::L2);
        let indices = salient_param_indices(&self.model);
        let mut channel_ids = Vec::new();
        let mut base = 0u32;
        for p in &self.model.prune_points {
            let conv = self.model.conv_at(p.layer);
            for (c, &m) in conv.channel_mask.iter().enumerate() {
                if m != 0.0 {
                    channel_ids.push(base + c as u32);
                }
            }
            base += conv.out_channels as u32;
        }
        (indices, channel_ids)
    }

    /// Re-run salient selection against the client's *current* weights —
    /// used at deployment time, after the final aggregation has overwritten
    /// the encoder the last in-round selection was computed for.
    pub fn select_for_deployment(&mut self, target_flops_ratio: f32) {
        self.model.clear_masks();
        let action = match &self.agent {
            Some(agent) => {
                let mut env_model = self.model.clone();
                env_model.clear_caches();
                let env = PruningEnv::new(env_model, self.val.clone(), target_flops_ratio);
                agent.evaluate(&env.graph()).mu
            }
            None => vec![0.0; self.model.prune_points.len()],
        };
        let applied =
            spatl_agent::project_to_budget(&self.model, &action, target_flops_ratio, Criterion::L2);
        apply_sparsities(&mut self.model, &applied, Criterion::L2);
    }

    /// Sync the shared portion of this client's model (and BN buffers)
    /// from a server broadcast, then report validation accuracy — the
    /// per-round evaluation a networked client node performs on request.
    /// Identical to the simulator's post-aggregation evaluation pass.
    pub fn sync_and_evaluate(&mut self, cfg: &FlConfig, global: &GlobalState) -> f32 {
        write_shared(
            &mut self.model,
            &global.shared,
            !cfg.algorithm.uses_transfer(),
        );
        if !global.buffers.is_empty() {
            self.model.encoder.set_buffers_flat(&global.buffers);
        }
        self.evaluate()
    }

    /// Mean validation accuracy of the *dense* model — what the paper's
    /// learning curves report (selection masks serve the upload; pruned
    /// inference is measured separately at deployment).
    pub fn evaluate(&mut self) -> f32 {
        let masks: Vec<Vec<f32>> = self
            .model
            .prune_points
            .iter()
            .map(|p| self.model.conv_at(p.layer).channel_mask.clone())
            .collect();
        self.model.clear_masks();
        let batch = self.val.as_batch();
        let acc = self.model.evaluate(&batch.images, &batch.labels);
        for (i, m) in masks.into_iter().enumerate() {
            self.model.set_mask(i, m);
        }
        acc
    }

    /// Validation accuracy of the deployed (masked) model — the paper's
    /// inference-acceleration accuracy (§V-D).
    pub fn evaluate_deployed(&mut self) -> f32 {
        let batch = self.val.as_batch();
        self.model.evaluate(&batch.images, &batch.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatlOptions;
    use spatl_data::{synth_cifar10, SynthConfig};
    use spatl_models::{ModelConfig, ModelKind};

    fn client(seed: u64) -> ClientState {
        let cfg = SynthConfig::cifar10_like();
        let train = synth_cifar10(&cfg, 40, seed);
        let val = synth_cifar10(&cfg, 20, seed + 1000);
        let model = ModelConfig::cifar(ModelKind::ResNet20).build();
        ClientState::new(0, train, val, model)
    }

    fn fl_cfg(algorithm: Algorithm) -> FlConfig {
        let mut c = FlConfig::new(algorithm);
        c.local_epochs = 1;
        c.batch_size = 20;
        c
    }

    #[test]
    fn fedavg_update_produces_dense_delta() {
        let mut cl = client(1);
        let cfg = fl_cfg(Algorithm::FedAvg);
        let global = GlobalState::from_model(&cl.model, &cfg.algorithm);
        let out = cl.local_update(&cfg, &global, 0);
        assert_eq!(out.delta.len(), global.shared.len());
        assert!(out.delta.iter().any(|&d| d != 0.0), "no learning happened");
        assert!(out.selected.is_none());
        assert!(!out.diverged);
        assert_eq!(out.tau, 2); // 40 samples / 20 batch × 1 epoch
        assert_eq!(out.bytes, CommModel::dense(global.shared.len()));
    }

    #[test]
    fn scaffold_updates_control_variate() {
        let mut cl = client(2);
        let cfg = fl_cfg(Algorithm::Scaffold);
        let global = GlobalState::from_model(&cl.model, &cfg.algorithm);
        assert!(cl.control.is_empty());
        let out = cl.local_update(&cfg, &global, 0);
        assert_eq!(cl.control.len(), global.shared.len());
        // cᵢ⁺ = −δ/(τ·η_eff) when c = cᵢ = 0 initially.
        let eta_eff = cfg.lr / (1.0 - cfg.momentum);
        let scale = 1.0 / (out.tau as f32 * eta_eff);
        for j in (0..cl.control.len()).step_by(997) {
            let expect = -out.delta[j] * scale;
            assert!((cl.control[j] - expect).abs() < 1e-4, "j={j}");
        }
    }

    #[test]
    fn spatl_transfer_shares_encoder_only() {
        let mut cl = client(3);
        let cfg = fl_cfg(Algorithm::Spatl(SpatlOptions::default()));
        let global = GlobalState::from_model(&cl.model, &cfg.algorithm);
        assert_eq!(global.shared.len(), cl.model.encoder.num_params());
        cl.agent = Some(spatl_agent::ActorCritic::new(Default::default(), 1));
        let out = cl.local_update(&cfg, &global, 0);
        let sel = out.selected.expect("SPATL must select");
        assert!(sel.indices.len() < global.shared.len());
        assert_eq!(sel.indices.len(), sel.values.len());
        assert!(out.keep_ratio < 1.0);
        assert!(out.flops_ratio <= cfg_target() + 0.05);
        // Selected values match the dense delta at those indices.
        for (k, &i) in sel.indices.iter().enumerate().step_by(1009) {
            assert_eq!(sel.values[k], out.delta[i as usize]);
        }
    }

    fn cfg_target() -> f32 {
        SpatlOptions::default().target_flops_ratio
    }

    #[test]
    fn spatl_without_selection_uploads_dense() {
        let mut cl = client(4);
        let opts = SpatlOptions {
            selection: false,
            ..Default::default()
        };
        let cfg = fl_cfg(Algorithm::Spatl(opts));
        let global = GlobalState::from_model(&cl.model, &cfg.algorithm);
        let out = cl.local_update(&cfg, &global, 0);
        assert!(out.selected.is_none());
        assert_eq!(out.keep_ratio, 1.0);
    }

    #[test]
    fn fedprox_stays_closer_to_global_than_fedavg() {
        let mut a = client(5);
        let mut b = a.clone();
        let cfg_avg = fl_cfg(Algorithm::FedAvg);
        let cfg_prox = fl_cfg(Algorithm::FedProx { mu: 10.0 });
        let global = GlobalState::from_model(&a.model, &cfg_avg.algorithm);
        let out_avg = a.local_update(&cfg_avg, &global, 0);
        let out_prox = b.local_update(&cfg_prox, &global, 0);
        let norm = |d: &[f32]| d.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            norm(&out_prox.delta) < norm(&out_avg.delta),
            "prox {} !< avg {}",
            norm(&out_prox.delta),
            norm(&out_avg.delta)
        );
    }

    #[test]
    fn predictor_stays_private_under_transfer() {
        let mut cl = client(6);
        let cfg = fl_cfg(Algorithm::Spatl(SpatlOptions::default()));
        let global = GlobalState::from_model(&cl.model, &cfg.algorithm);
        let pred_before = cl.model.predictor.to_flat();
        cl.local_update(&cfg, &global, 0);
        let pred_after = cl.model.predictor.to_flat();
        // Predictor trained (changed) but is NOT in the shared vector.
        assert_ne!(pred_before, pred_after);
        assert_eq!(global.shared.len(), cl.model.encoder.num_params());
    }
}
