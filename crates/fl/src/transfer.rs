//! Knowledge transfer to new clients and datasets (Eq. 4, Table III).

use spatl_data::Dataset;
use spatl_models::SplitModel;
use spatl_nn::{CrossEntropyLoss, Optimizer, Sgd};
use spatl_tensor::TensorRng;

/// Adapt a model to a new client by training **only the predictor head**
/// on the client's local data, with the downloaded encoder frozen (Eq. 4).
///
/// This is how a client that never participated in federated training
/// deploys the shared encoder. Returns the final training loss.
pub fn adapt_predictor(
    model: &mut SplitModel,
    train: &Dataset,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> f32 {
    let mut opt = Sgd::with_momentum(lr, 0.9, 1e-4);
    let mut loss_fn = CrossEntropyLoss::new();
    let mut rng = TensorRng::seed_from(seed);
    let mut last = 0.0f32;
    // Calibrate batch-norm running statistics on the client's data first
    // (AdaBN): the encoder weights stay frozen but its normalisation must
    // reflect the local input distribution, or eval-mode features are badly
    // scaled for the new head. A temporarily high EMA momentum makes the
    // running statistics converge to the local ones within a few batches.
    let saved_momentum = {
        let mut m = 0.1f32;
        model.encoder.for_each_batchnorm_mut(&mut |bn| {
            m = bn.momentum;
            bn.momentum = 0.5;
        });
        m
    };
    for _ in 0..2 {
        for batch in train.batches(64, &mut rng).into_iter().take(6) {
            let emb = model.encoder.forward(&batch.images, true);
            model.encoder.recycle(emb);
        }
    }
    model
        .encoder
        .for_each_batchnorm_mut(&mut |bn| bn.momentum = saved_momentum);
    model.encoder.clear_caches();
    model.encoder.zero_grad();
    for _ in 0..epochs {
        for batch in train.batches(32, &mut rng) {
            model.zero_grad();
            // Encoder runs in eval mode: it is frozen, so batch statistics
            // must not drift either.
            let emb = model.encoder.forward(&batch.images, false);
            let logits = model.predictor.forward(&emb, true);
            model.encoder.recycle(emb);
            last = loss_fn.forward(&logits, &batch.labels);
            model.predictor.recycle(logits);
            let g = loss_fn.backward();
            let gemb = model.predictor.backward(&g);
            model.predictor.recycle(g);
            model.predictor.recycle(gemb);
            opt.step(&mut model.predictor);
        }
    }
    last
}

/// Transferability evaluation (§V-E): fit a fresh predictor on a *new*
/// dataset on top of a trained encoder and report validation accuracy.
pub fn transfer_evaluate(
    mut model: SplitModel,
    encoder_flat: &[f32],
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> f32 {
    model.encoder.from_flat(encoder_flat);
    model.clear_masks();
    adapt_predictor(&mut model, train, epochs, lr, seed);
    let batch = val.as_batch();
    model.evaluate(&batch.images, &batch.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_data::{synth_cifar10, SynthConfig};
    use spatl_models::{ModelConfig, ModelKind};

    #[test]
    fn adaptation_only_touches_predictor() {
        let mut model = ModelConfig::cifar(ModelKind::ResNet20).build();
        let cfg = SynthConfig::cifar10_like();
        let train = synth_cifar10(&cfg, 40, 1);
        let enc_before = model.encoder.to_flat();
        let pred_before = model.predictor.to_flat();
        adapt_predictor(&mut model, &train, 2, 0.05, 7);
        assert_eq!(
            model.encoder.to_flat(),
            enc_before,
            "encoder must stay frozen"
        );
        assert_ne!(
            model.predictor.to_flat(),
            pred_before,
            "predictor must train"
        );
    }

    #[test]
    fn adaptation_improves_over_random_head() {
        let cfg = SynthConfig {
            noise_std: 0.35,
            ..SynthConfig::cifar10_like()
        };
        let train = synth_cifar10(&cfg, 160, 2);
        let val = synth_cifar10(&cfg, 80, 3);
        let mut model = ModelConfig::cifar(ModelKind::ResNet20).build();
        let batch = val.as_batch();
        let before = model.evaluate(&batch.images, &batch.labels);
        adapt_predictor(&mut model, &train, 10, 0.05, 8);
        let after = model.evaluate(&batch.images, &batch.labels);
        assert!(
            after > before + 0.04,
            "adaptation did not help: {before} -> {after}"
        );
    }

    #[test]
    fn transfer_evaluate_round_trips_encoder() {
        let model = ModelConfig::cifar(ModelKind::ResNet20).build();
        let flat = model.encoder.to_flat();
        let cfg = SynthConfig::cifar10_like();
        let train = synth_cifar10(&cfg, 40, 4);
        let val = synth_cifar10(&cfg, 20, 5);
        let acc = transfer_evaluate(model, &flat, &train, &val, 1, 0.05, 9);
        assert!((0.0..=1.0).contains(&acc));
    }
}
