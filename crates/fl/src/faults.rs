//! Fault injection and graceful degradation for federated rounds.
//!
//! Real federated deployments never see the pristine rounds the rest of
//! this simulator models: clients drop out before training, stragglers
//! miss the server's collection deadline, and uploads arrive with flipped
//! bits. This module injects exactly those three fault classes —
//! **dropout**, **straggler**, **corruption** — under a seeded
//! [`FaultPlan`], and records what happened to each round in a
//! [`FaultRecord`] stored on the round's history entry.
//!
//! Design rules (DESIGN.md §8 is the narrative version):
//!
//! * **Determinism.** Every fault decision is a pure function of
//!   `(plan seed, round, client id, attempt)` via its own splitmix-derived
//!   RNG stream, so a faulty run replays bit-for-bit and fault streams
//!   never perturb training randomness — the fault-free path is byte
//!   identical to a run with no plan configured.
//! * **Corruption is caught, never trusted.** Injected bit flips damage
//!   the *sealed frames*; the server's decode path rejects them with a
//!   typed [`WireError`](spatl_wire::WireError), and
//!   [`WireError::is_transport_corruption`](spatl_wire::WireError::is_transport_corruption)
//!   gates a bounded retransmit-with-backoff loop. Nothing panics.
//! * **Degradation, not failure.** Aggregation runs over whatever cohort
//!   survives; a round that loses everyone becomes a recorded no-op.

use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;
use spatl_wire::flip_bit;

/// A seeded description of the faults a run injects. Part of
/// [`FlConfig`](crate::FlConfig); `None` there means pristine rounds.
///
/// All probabilities are evaluated independently per round, per client
/// (and for corruption, per transmission attempt), from RNG streams
/// derived only from [`FaultPlan::seed`] — never from the training seed —
/// so the same plan replays identically and toggling it does not shift
/// any training randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a sampled client drops out of the round before
    /// training (crash, battery, user closed the app). In `[0, 1]`.
    pub dropout: f64,
    /// Probability that a participant is a straggler this round. In `[0, 1]`.
    pub straggler_ratio: f64,
    /// Multiplier (> 1) applied to a straggler's simulated transfer time.
    pub straggler_slowdown: f64,
    /// Server-side collection deadline in simulated seconds. A participant
    /// whose transfer time (slowdown and retry backoff included) exceeds
    /// it is excluded from aggregation; `None` waits forever.
    pub deadline_s: Option<f64>,
    /// Probability that one transmission attempt of a client's upload
    /// arrives with a single flipped bit. In `[0, 1]`.
    pub corruption: f64,
    /// Retransmissions the server requests for a corrupted upload before
    /// dropping the client from the round (so a client transmits at most
    /// `1 + max_retries` times).
    pub max_retries: u32,
    /// Base backoff in simulated seconds; retry `n` (1-based) waits
    /// `retry_backoff_s · 2^(n−1)` before retransmitting.
    pub retry_backoff_s: f64,
    /// Seed of the fault RNG streams, independent of the training seed.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            dropout: 0.0,
            straggler_ratio: 0.0,
            straggler_slowdown: 4.0,
            deadline_s: None,
            corruption: 0.0,
            max_retries: 2,
            retry_backoff_s: 0.5,
            seed: 0x5EED,
        }
    }
}

impl FaultPlan {
    /// A plan that only drops clients out with probability `p`.
    pub fn dropout_only(p: f64) -> Self {
        FaultPlan {
            dropout: p,
            ..Default::default()
        }
    }

    /// Panics if any probability is outside `[0, 1]` or a factor is
    /// non-positive; called once when a simulation is built.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.dropout),
            "dropout must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.straggler_ratio),
            "straggler_ratio must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.corruption),
            "corruption must be a probability"
        );
        assert!(
            self.straggler_slowdown >= 1.0,
            "straggler_slowdown must be ≥ 1"
        );
        assert!(self.retry_backoff_s >= 0.0, "backoff must be non-negative");
        if let Some(d) = self.deadline_s {
            assert!(d > 0.0, "deadline must be positive");
        }
    }
}

/// What kind of fault an event records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The client was sampled but never trained (dropped out up front).
    Dropout,
    /// The client's transfer was slowed by [`FaultPlan::straggler_slowdown`].
    Straggler,
    /// One transmission attempt arrived corrupted and was rejected by the
    /// decode path; the string is the typed
    /// [`WireError`](spatl_wire::WireError) rendered for the record.
    CorruptUpload {
        /// Display form of the rejection the decoder returned.
        error: String,
    },
    /// The client's upload never decoded within the retry budget; it was
    /// dropped from the round's aggregation.
    RetriesExhausted,
    /// The client finished after [`FaultPlan::deadline_s`]; its upload was
    /// discarded unread.
    DeadlineMissed,
    /// A complete upload arrived for a `(round, client)` the coordinator
    /// had already folded — a retransmission after a reconnect, or a
    /// [`ChaosPlan`](crate::ChaosPlan)-duplicated reply. The copy was
    /// discarded; folding it twice would double-count the client.
    DuplicateUpload,
    /// The client self-reported a non-finite local delta and uploaded a
    /// fallback instead of a salient selection; aggregation rejects the
    /// update, and this event distinguishes *self-reported* divergence from
    /// updates the server screened out
    /// ([`FaultKind::Quarantined`]).
    LocalDivergence,
    /// Ground truth of the configured
    /// [`AdversaryPlan`](crate::AdversaryPlan): this client's upload was
    /// tampered with this round (the frames remained CRC-valid — only
    /// semantic screening can catch it).
    ByzantineUpload {
        /// Which attack the plan applied.
        attack: crate::AttackKind,
    },
    /// The server's update screen rejected this upload before aggregation
    /// ([`ScreenPolicy`](crate::ScreenPolicy)); the reason says which check
    /// fired.
    Quarantined {
        /// Which screening check rejected the update.
        reason: crate::ScreenReason,
    },
}

/// One fault that hit one client in one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The affected client.
    pub client_id: usize,
    /// What happened.
    pub kind: FaultKind,
}

/// Per-round fault ledger, stored on
/// [`RoundRecord::faults`](crate::RoundRecord::faults).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Clients the sampler selected this round.
    pub sampled: usize,
    /// Clients whose updates reached aggregation.
    pub survivors: usize,
    /// Clients that dropped out before training.
    pub dropouts: usize,
    /// Participants slowed by the straggler factor.
    pub stragglers: usize,
    /// Participants excluded because they finished after the deadline.
    pub deadline_dropped: usize,
    /// Complete uploads discarded because their `(round, client)` was
    /// already folded ([`FaultKind::DuplicateUpload`]).
    pub duplicates: usize,
    /// Transmission attempts that arrived corrupted (retries included).
    pub corrupted_uploads: usize,
    /// Retransmissions the server requested.
    pub retries: usize,
    /// Participants dropped after exhausting the retry budget.
    pub retry_exhausted: usize,
    /// Clients that self-reported a non-finite local delta
    /// ([`FaultKind::LocalDivergence`]).
    pub local_divergence: usize,
    /// Ground truth: uploads the configured
    /// [`AdversaryPlan`](crate::AdversaryPlan) tampered with this round.
    pub byzantine: usize,
    /// Decoded uploads the server's
    /// [`ScreenPolicy`](crate::ScreenPolicy) rejected before aggregation;
    /// the matching [`FaultKind::Quarantined`] events say why.
    pub quarantined: usize,
    /// True when aggregation applied no update this round (every sampled
    /// client was lost, or every survivor was rejected).
    pub no_op: bool,
    /// The individual faults, in the order they were observed.
    pub events: Vec<FaultEvent>,
}

impl FaultRecord {
    /// Start a ledger for a round that sampled `sampled` clients.
    pub fn for_sample(sampled: usize) -> Self {
        FaultRecord {
            sampled,
            ..Default::default()
        }
    }

    /// Record one fault event, updating the matching counter.
    pub fn push(&mut self, client_id: usize, kind: FaultKind) {
        match kind {
            FaultKind::Dropout => self.dropouts += 1,
            FaultKind::Straggler => self.stragglers += 1,
            FaultKind::CorruptUpload { .. } => self.corrupted_uploads += 1,
            FaultKind::RetriesExhausted => self.retry_exhausted += 1,
            FaultKind::DeadlineMissed => self.deadline_dropped += 1,
            FaultKind::DuplicateUpload => self.duplicates += 1,
            FaultKind::LocalDivergence => self.local_divergence += 1,
            FaultKind::ByzantineUpload { .. } => self.byzantine += 1,
            FaultKind::Quarantined { .. } => self.quarantined += 1,
        }
        self.events.push(FaultEvent { client_id, kind });
    }

    /// Total faults observed this round.
    pub fn total(&self) -> usize {
        self.events.len()
    }
}

const SALT_DROPOUT: u64 = 0xD0;
const SALT_STRAGGLER: u64 = 0x57;
const SALT_CORRUPT: u64 = 0xC0;

/// splitmix64 finaliser — decorrelates the structured `(seed, round,
/// client, salt)` tuples before they become ChaCha seeds. Shared with the
/// [`Adversary`](crate::Adversary) streams so both fault families derive
/// decisions the same way.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draws every fault decision of a run from per-decision RNG streams.
///
/// Stateless apart from the plan: each decision derives a fresh generator
/// from `(plan.seed, round, client, salt)`, so decisions are independent
/// of evaluation order (in particular of rayon's scheduling) and a given
/// `(plan, round, client)` always faults the same way.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Build an injector for a validated plan.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultInjector { plan }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn rng(&self, round: usize, client: usize, salt: u64) -> TensorRng {
        let s = splitmix(
            self.plan.seed ^ splitmix((round as u64) ^ splitmix((client as u64) ^ splitmix(salt))),
        );
        TensorRng::seed_from(s)
    }

    /// Does `client` drop out of `round` before training?
    pub fn drops_out(&self, round: usize, client: usize) -> bool {
        self.plan.dropout > 0.0
            && self
                .rng(round, client, SALT_DROPOUT)
                .flip(self.plan.dropout)
    }

    /// Transfer-time multiplier for `client` in `round`: the plan's
    /// slowdown when the straggler coin lands, `1.0` otherwise.
    pub fn straggler_factor(&self, round: usize, client: usize) -> f64 {
        if self.plan.straggler_ratio > 0.0
            && self
                .rng(round, client, SALT_STRAGGLER)
                .flip(self.plan.straggler_ratio)
        {
            self.plan.straggler_slowdown
        } else {
            1.0
        }
    }

    /// Does transmission `attempt` (1-based) of `client`'s upload in
    /// `round` arrive corrupted? Each attempt flips its own coin, so a
    /// retransmission can be damaged again.
    pub fn corrupts_attempt(&self, round: usize, client: usize, attempt: u32) -> bool {
        self.plan.corruption > 0.0
            && self
                .rng(round, client, SALT_CORRUPT ^ ((attempt as u64) << 8))
                .flip(self.plan.corruption)
    }

    /// Damage one transmission: flip a single deterministic-random bit in
    /// one of the frames (frame and bit chosen by the same per-attempt
    /// stream as [`Self::corrupts_attempt`]).
    pub fn corrupt_frames(
        &self,
        frames: &mut [Vec<u8>],
        round: usize,
        client: usize,
        attempt: u32,
    ) {
        assert!(!frames.is_empty(), "cannot corrupt an empty transmission");
        let mut rng = self.rng(round, client, SALT_CORRUPT ^ ((attempt as u64) << 8));
        rng.flip(1.0); // discard the corruption coin so the bit draw is fresh
        let f = rng.below(frames.len());
        let bit = rng.below(frames[f].len() * 8);
        flip_bit(&mut frames[f], bit);
    }

    /// Simulated seconds of backoff a client has waited after `retries`
    /// retransmissions: `Σ_{n=1..retries} backoff · 2^(n−1)`.
    pub fn backoff_s(&self, retries: u32) -> f64 {
        if retries == 0 {
            return 0.0;
        }
        self.plan.retry_backoff_s * ((1u64 << retries) - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            dropout: 0.3,
            straggler_ratio: 0.4,
            straggler_slowdown: 3.0,
            deadline_s: Some(10.0),
            corruption: 0.5,
            max_retries: 2,
            retry_backoff_s: 0.25,
            seed: 42,
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        for round in 0..5 {
            for client in 0..8 {
                assert_eq!(a.drops_out(round, client), b.drops_out(round, client));
                assert_eq!(
                    a.straggler_factor(round, client),
                    b.straggler_factor(round, client)
                );
                for attempt in 1..4 {
                    assert_eq!(
                        a.corrupts_attempt(round, client, attempt),
                        b.corrupts_attempt(round, client, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn decisions_vary_across_rounds_clients_and_seeds() {
        let inj = FaultInjector::new(plan());
        let drops: Vec<bool> = (0..64).map(|c| inj.drops_out(0, c)).collect();
        assert!(drops.iter().any(|&d| d) && drops.iter().any(|&d| !d));
        let other = FaultInjector::new(FaultPlan { seed: 43, ..plan() });
        let drops2: Vec<bool> = (0..64).map(|c| other.drops_out(0, c)).collect();
        assert_ne!(drops, drops2);
    }

    #[test]
    fn dropout_rate_matches_probability() {
        let inj = FaultInjector::new(FaultPlan::dropout_only(0.3));
        let n = 4000;
        let dropped = (0..n).filter(|&c| inj.drops_out(0, c)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed dropout rate {rate}");
    }

    #[test]
    fn zero_probabilities_never_fault() {
        let inj = FaultInjector::new(FaultPlan::default());
        for c in 0..32 {
            assert!(!inj.drops_out(0, c));
            assert_eq!(inj.straggler_factor(0, c), 1.0);
            assert!(!inj.corrupts_attempt(0, c, 1));
        }
    }

    #[test]
    fn corrupt_frames_breaks_exactly_one_bit() {
        use spatl_wire::{open, seal, MsgType};
        let inj = FaultInjector::new(plan());
        let frames = vec![seal(MsgType::DenseUpdate, &[1, 2, 3, 4, 5, 6, 7, 8])];
        let mut damaged = frames.clone();
        inj.corrupt_frames(&mut damaged, 0, 0, 1);
        let diff: u32 = frames[0]
            .iter()
            .zip(&damaged[0])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit must differ");
        let err = open(&damaged[0]).expect_err("damaged frame must not open");
        assert!(err.is_transport_corruption());
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let inj = FaultInjector::new(plan());
        assert_eq!(inj.backoff_s(0), 0.0);
        assert!((inj.backoff_s(1) - 0.25).abs() < 1e-12);
        assert!((inj.backoff_s(2) - 0.75).abs() < 1e-12); // 0.25 + 0.5
        assert!((inj.backoff_s(3) - 1.75).abs() < 1e-12); // + 1.0
    }

    #[test]
    fn record_counters_track_events() {
        let mut rec = FaultRecord::for_sample(4);
        rec.push(0, FaultKind::Dropout);
        rec.push(1, FaultKind::Straggler);
        rec.push(
            2,
            FaultKind::CorruptUpload {
                error: "crc".into(),
            },
        );
        rec.push(2, FaultKind::RetriesExhausted);
        rec.push(3, FaultKind::DeadlineMissed);
        rec.push(3, FaultKind::DuplicateUpload);
        rec.push(0, FaultKind::LocalDivergence);
        rec.push(
            1,
            FaultKind::ByzantineUpload {
                attack: crate::AttackKind::SignFlip,
            },
        );
        rec.push(
            1,
            FaultKind::Quarantined {
                reason: crate::ScreenReason::NonFinite,
            },
        );
        assert_eq!(rec.dropouts, 1);
        assert_eq!(rec.stragglers, 1);
        assert_eq!(rec.corrupted_uploads, 1);
        assert_eq!(rec.retry_exhausted, 1);
        assert_eq!(rec.deadline_dropped, 1);
        assert_eq!(rec.duplicates, 1);
        assert_eq!(rec.local_divergence, 1);
        assert_eq!(rec.byzantine, 1);
        assert_eq!(rec.quarantined, 1);
        assert_eq!(rec.total(), 9);
    }

    #[test]
    #[should_panic(expected = "dropout must be a probability")]
    fn validate_rejects_bad_probability() {
        FaultPlan {
            dropout: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
