//! The wire exchange: every federated round's traffic serialized through
//! `spatl-wire` frames.
//!
//! The simulator used to hand `Vec<f32>` updates straight from client to
//! server; this module replaces that hand-off with the real protocol. The
//! server [`encode_download`]s its state once per round, every participant
//! decodes it before training, and each upload travels back as sealed
//! frames the server must [`decode_upload`] before aggregating. Measured
//! frame sizes are recorded next to the analytic [`CommModel`] numbers so
//! the two accountings cross-check each other (`tensor payload == Eq. 13`
//! exactly; framing overhead is documented separately).
//!
//! Frame layout per transmission: `frames[0]` is the algorithm's main
//! message; an optional `frames[1]` with tag [`MsgType::BnStats`] carries
//! the batch-norm running statistics as an auxiliary dense frame. Batch
//! norm statistics and envelope headers are *overhead* bytes — they are
//! not part of the paper's Eq. 13 accounting, which counts parameter
//! payloads only.
//!
//! [`CommModel`]: crate::CommModel

use serde::{Deserialize, Serialize};
use spatl_models::SplitModel;
use spatl_pruning::prune_point_param_names;
use spatl_wire::{
    decode_dense, decode_pair, decode_spatl_encoder, decode_spatl_update, decode_topk,
    encode_dense, encode_f16_dense, encode_pair, encode_spatl_encoder, encode_spatl_update,
    encode_topk, open, seal, IndexRange, MsgType, SelectionLayout, SparseTopK, WireError,
    SPATL_UPDATE_METADATA,
};

use crate::client::{CompressedDelta, LocalOutcome, SelectedUpdate};
use crate::config::{Algorithm, FlConfig, UploadCodec};
use crate::server::GlobalState;

/// Measured wire traffic for one client and round, split into the tensor
/// payload (directly comparable to [`crate::CommModel`]) and the full
/// framed size (payload + envelope headers + codec metadata + auxiliary
/// batch-norm frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBytes {
    /// Server→client tensor payload bytes.
    pub download_payload: u64,
    /// Server→client bytes on the wire, framing included.
    pub download_framed: u64,
    /// Client→server tensor payload bytes.
    pub upload_payload: u64,
    /// Client→server bytes on the wire, framing included.
    pub upload_framed: u64,
}

impl WireBytes {
    /// Bytes spent on framing rather than tensor payload.
    pub fn overhead(&self) -> u64 {
        (self.download_framed - self.download_payload) + (self.upload_framed - self.upload_payload)
    }

    /// Total framed bytes both directions.
    pub fn total_framed(&self) -> u64 {
        self.download_framed + self.upload_framed
    }

    /// Add another client's traffic into this accumulator.
    pub fn accumulate(&mut self, other: &WireBytes) {
        self.download_payload += other.download_payload;
        self.download_framed += other.download_framed;
        self.upload_payload += other.upload_payload;
        self.upload_framed += other.upload_framed;
    }
}

/// An encoded transmission: the sealed frames plus the tensor-payload byte
/// count that ties to the analytic communication model.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Sealed frames, main message first.
    pub frames: Vec<Vec<u8>>,
    /// Tensor payload bytes (envelopes, codec metadata and auxiliary
    /// frames excluded) — the number Eq. 13 charges.
    pub payload: u64,
}

impl Encoded {
    /// Total bytes on the wire, framing included.
    pub fn framed(&self) -> u64 {
        self.frames.iter().map(|f| f.len() as u64).sum()
    }
}

/// Build the [`SelectionLayout`] both ends of a SPATL session share, from
/// the model architecture: one channel id per output channel of each prune
/// point (owning its kernel row and bias entry), with everything else —
/// non-prunable encoder layers, and the predictor when it is shared —
/// always transmitted.
///
/// Channel ids are assigned in prune-point order, then channel order, so
/// `id = channels_before(point) + c` matches the client-side mask walk.
pub fn build_selection_layout(model: &SplitModel, include_predictor: bool) -> SelectionLayout {
    let mut layout = SelectionLayout::new();
    let specs = model.encoder.param_specs();
    let spec_of = |name: &str| {
        specs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("prune-point parameter {name} missing from encoder specs"))
    };

    let mut masked_names = std::collections::HashSet::new();
    for p in &model.prune_points {
        let conv = model.conv_at(p.layer);
        let (wname, bname) = prune_point_param_names(p.layer);
        let wspec = spec_of(&wname);
        let bspec = spec_of(&bname);
        let rows = wspec.numel / conv.out_channels;
        for c in 0..conv.out_channels {
            layout.push_channel(vec![
                IndexRange {
                    start: (wspec.offset + c * rows) as u32,
                    len: rows as u32,
                },
                IndexRange {
                    start: (bspec.offset + c) as u32,
                    len: 1,
                },
            ]);
        }
        masked_names.insert(wname);
        masked_names.insert(bname);
    }
    for spec in &specs {
        if !masked_names.contains(&spec.name) {
            layout.push_always(IndexRange {
                start: spec.offset as u32,
                len: spec.numel as u32,
            });
        }
    }
    if include_predictor {
        let enc = model.encoder.num_params();
        layout.push_always(IndexRange {
            start: enc as u32,
            len: model.predictor.num_params() as u32,
        });
    }
    layout
}

/// Serialize the server's per-round broadcast into sealed frames.
pub fn encode_download(cfg: &FlConfig, global: &GlobalState) -> Encoded {
    let (msg, body, payload) = match cfg.algorithm {
        Algorithm::FedAvg | Algorithm::FedProx { .. } => (
            MsgType::DenseModel,
            encode_dense(&global.shared),
            4 * global.shared.len() as u64,
        ),
        Algorithm::Scaffold => (
            MsgType::ScaffoldModel,
            encode_pair(&global.shared, &global.control),
            8 * global.shared.len() as u64,
        ),
        Algorithm::FedNova => (
            MsgType::FedNovaModel,
            encode_pair(&global.shared, &global.momentum),
            8 * global.shared.len() as u64,
        ),
        Algorithm::Spatl(opts) => {
            let control = opts.gradient_control.then_some(global.control.as_slice());
            let mult = if opts.gradient_control { 8 } else { 4 };
            (
                MsgType::SpatlEncoder,
                encode_spatl_encoder(&global.shared, control),
                mult * global.shared.len() as u64,
            )
        }
    };
    let mut frames = vec![seal(msg, &body)];
    if !global.buffers.is_empty() {
        frames.push(seal(MsgType::BnStats, &encode_dense(&global.buffers)));
    }
    Encoded { frames, payload }
}

/// Reconstruct the broadcast state a client trains against from the
/// server's frames. `expected_params` is the shared-vector length the
/// session agreed on; any frame decoding to a different length is rejected
/// as malformed rather than trusted.
pub fn decode_download(
    cfg: &FlConfig,
    frames: &[Vec<u8>],
    expected_params: usize,
) -> Result<GlobalState, WireError> {
    let main = frames
        .first()
        .ok_or_else(|| WireError::Malformed("download carried no frames".into()))?;
    let (msg, payload) = open(main)?;
    let mut state = GlobalState {
        shared: Vec::new(),
        control: Vec::new(),
        momentum: Vec::new(),
        buffers: Vec::new(),
    };
    match (cfg.algorithm, msg) {
        (Algorithm::FedAvg | Algorithm::FedProx { .. }, MsgType::DenseModel) => {
            state.shared = decode_dense(payload)?;
        }
        (Algorithm::Scaffold, MsgType::ScaffoldModel) => {
            let pair = decode_pair(payload)?;
            state.shared = pair.primary;
            state.control = pair.secondary;
        }
        (Algorithm::FedNova, MsgType::FedNovaModel) => {
            let pair = decode_pair(payload)?;
            state.shared = pair.primary;
            state.momentum = pair.secondary;
        }
        (Algorithm::Spatl(opts), MsgType::SpatlEncoder) => {
            let enc = decode_spatl_encoder(payload, opts.gradient_control)?;
            state.shared = enc.encoder;
            state.control = enc.control.unwrap_or_default();
        }
        (_, got) => {
            return Err(WireError::Malformed(format!(
                "unexpected download message {got:?} for {}",
                cfg.algorithm.name()
            )));
        }
    }
    if state.shared.len() != expected_params {
        return Err(WireError::Malformed(format!(
            "download carried {} parameters, session expects {expected_params}",
            state.shared.len()
        )));
    }
    if let Some(aux) = frames.get(1) {
        let (msg, payload) = open(aux)?;
        if msg != MsgType::BnStats {
            return Err(WireError::Malformed(format!(
                "unexpected auxiliary message {msg:?}"
            )));
        }
        state.buffers = decode_dense(payload)?;
    }
    Ok(state)
}

/// Serialize one client's upload into sealed frames. Called by the client
/// at the end of its local update; the inverse is [`decode_upload`].
pub fn encode_upload(cfg: &FlConfig, outcome: &LocalOutcome) -> Encoded {
    let (msg, body, payload) = match (&cfg.algorithm, &outcome.selected) {
        (Algorithm::Spatl(_), Some(sel)) => {
            let body = encode_spatl_update(&sel.channel_ids, &sel.values);
            let payload = (body.len() - SPATL_UPDATE_METADATA) as u64;
            (MsgType::SpatlUpdate, body, payload)
        }
        (Algorithm::FedAvg | Algorithm::FedProx { .. }, _) => match cfg.upload_codec {
            UploadCodec::Dense => (
                MsgType::DenseUpdate,
                encode_dense(&outcome.delta),
                4 * outcome.delta.len() as u64,
            ),
            UploadCodec::TopK { .. } => {
                let k = cfg.upload_codec.kept(outcome.delta.len());
                let sparse = SparseTopK::from_dense(&outcome.delta, k);
                // 8 bytes per kept coordinate (value + flat index); the
                // dense-length/k header is codec metadata, off the
                // Eq. 13 books like SPATL's update metadata.
                (MsgType::SparseTopK, encode_topk(&sparse), 8 * k as u64)
            }
            UploadCodec::F16 => (
                MsgType::QuantizedF16,
                encode_f16_dense(&outcome.delta),
                2 * outcome.delta.len() as u64,
            ),
        },
        // SPATL with selection disabled (or a diverged round) falls back to
        // a dense encoder delta, like FedAvg.
        (Algorithm::Spatl(_), None) => (
            MsgType::DenseUpdate,
            encode_dense(&outcome.delta),
            4 * outcome.delta.len() as u64,
        ),
        (Algorithm::Scaffold, _) => {
            let zeros;
            let cd = match &outcome.control_delta {
                Some(cd) => cd.as_slice(),
                None => {
                    // No control step happened (τ = 0): an explicit zero
                    // update keeps the frame shape algorithm-uniform.
                    zeros = vec![0.0; outcome.delta.len()];
                    &zeros
                }
            };
            (
                MsgType::ScaffoldUpdate,
                encode_pair(&outcome.delta, cd),
                8 * outcome.delta.len() as u64,
            )
        }
        (Algorithm::FedNova, _) => {
            let zeros;
            let vel = match &outcome.velocity {
                Some(v) => v.as_slice(),
                None => {
                    zeros = vec![0.0; outcome.delta.len()];
                    &zeros
                }
            };
            (
                MsgType::FedNovaUpdate,
                encode_pair(&outcome.delta, vel),
                8 * outcome.delta.len() as u64,
            )
        }
    };
    let mut frames = vec![seal(msg, &body)];
    if !outcome.buffers.is_empty() {
        frames.push(seal(MsgType::BnStats, &encode_dense(&outcome.buffers)));
    }
    Encoded { frames, payload }
}

/// Decode a client's upload frames back into the tensors aggregation
/// consumes. Bookkeeping (id, sample count, τ, ratios, byte accounting) is
/// copied from `meta`; every tensor in the result comes from `frames`.
///
/// `frames` is passed separately from `meta` (rather than read from
/// `meta.frames`) because under fault injection the bytes that *arrive*
/// are not necessarily the bytes the client sealed — the simulator hands
/// in whatever this transmission attempt delivered, possibly corrupted,
/// and a typed [`WireError`] here is what triggers the retransmit path.
///
/// `layout` is required to expand SPATL channel ids; `expected_params` is
/// the shared-vector length dense uploads must match.
pub fn decode_upload(
    cfg: &FlConfig,
    meta: &LocalOutcome,
    frames: &[Vec<u8>],
    layout: Option<&SelectionLayout>,
    expected_params: usize,
) -> Result<LocalOutcome, WireError> {
    let main = frames
        .first()
        .ok_or_else(|| WireError::Malformed("upload carried no frames".into()))?;
    let (msg, payload) = open(main)?;

    let mut out = LocalOutcome {
        delta: Vec::new(),
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        frames: Vec::new(),
        ..meta.clone()
    };
    let check_len = |len: usize| {
        if len != expected_params {
            Err(WireError::Malformed(format!(
                "upload carried {len} parameters, session expects {expected_params}"
            )))
        } else {
            Ok(())
        }
    };
    match (&cfg.algorithm, msg) {
        (
            Algorithm::FedAvg | Algorithm::FedProx { .. } | Algorithm::Spatl(_),
            MsgType::DenseUpdate,
        ) => {
            out.delta = decode_dense(payload)?;
            check_len(out.delta.len())?;
        }
        (Algorithm::FedAvg | Algorithm::FedProx { .. }, MsgType::SparseTopK) => {
            let sparse = decode_topk(payload)?;
            check_len(sparse.dense_len as usize)?;
            // Not densified: the streaming fold scatter-adds the k
            // values directly (bit-identical — zero terms are inert in
            // the exact fold). Spill-mode consumers densify explicitly.
            out.compressed = Some(CompressedDelta::TopK {
                dense_len: sparse.dense_len as usize,
                indices: sparse.indices,
                values: sparse.values,
            });
        }
        (Algorithm::FedAvg | Algorithm::FedProx { .. }, MsgType::QuantizedF16) => {
            if !payload.len().is_multiple_of(2) {
                return Err(WireError::Malformed(format!(
                    "f16 payload length {} not a multiple of 2",
                    payload.len()
                )));
            }
            check_len(payload.len() / 2)?;
            // Kept as raw half-precision bytes (2·p instead of 4·p):
            // the fold decodes coordinate-at-a-time, exactly.
            out.compressed = Some(CompressedDelta::F16(payload.to_vec()));
        }
        (Algorithm::Scaffold, MsgType::ScaffoldUpdate) => {
            let pair = decode_pair(payload)?;
            check_len(pair.primary.len())?;
            out.delta = pair.primary;
            out.control_delta = Some(pair.secondary);
        }
        (Algorithm::FedNova, MsgType::FedNovaUpdate) => {
            let pair = decode_pair(payload)?;
            check_len(pair.primary.len())?;
            out.delta = pair.primary;
            out.velocity = Some(pair.secondary);
        }
        (Algorithm::Spatl(_), MsgType::SpatlUpdate) => {
            let layout = layout.ok_or_else(|| {
                WireError::Malformed("SPATL upload received without a selection layout".into())
            })?;
            let update = decode_spatl_update(payload)?;
            let indices = layout.expand(&update.channels)?;
            if indices.len() != update.values.len() {
                return Err(WireError::Malformed(format!(
                    "selection expands to {} indices but {} values arrived",
                    indices.len(),
                    update.values.len()
                )));
            }
            out.selected = Some(SelectedUpdate {
                indices,
                values: update.values,
                channels: update.channels.len(),
                channel_ids: update.channels,
            });
        }
        (_, got) => {
            return Err(WireError::Malformed(format!(
                "unexpected upload message {got:?} for {}",
                cfg.algorithm.name()
            )));
        }
    }
    if let Some(aux) = frames.get(1) {
        let (msg, payload) = open(aux)?;
        if msg != MsgType::BnStats {
            return Err(WireError::Malformed(format!(
                "unexpected auxiliary message {msg:?}"
            )));
        }
        out.buffers = decode_dense(payload)?;
    }
    Ok(out)
}
