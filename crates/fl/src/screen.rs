//! Server-side update screening: semantic defense between decode and
//! aggregation.
//!
//! The envelope CRC proves an upload arrived *intact*; it proves nothing
//! about the upload being *sane*. This module is the second line of
//! defense (DESIGN.md §9): after the wire layer decodes a round's
//! surviving uploads and before [`GlobalState::aggregate`] touches the
//! model, every update passes through two checks:
//!
//! 1. **Non-finite rejection** — any `NaN`/`±∞` in the delta, salient
//!    values, control step, momentum or batch-norm statistics quarantines
//!    the upload outright. One poisoned coordinate reaching a mean
//!    destroys that coordinate globally, so this check is absolute.
//! 2. **Median-based norm screening** — every vector family the server
//!    aggregates (the main update, the SCAFFOLD control step, the FedNova
//!    momentum, the batch-norm statistics) has its RMS compared against
//!    that family's cohort median; anything above
//!    `norm_tolerance × median` in *any* family is quarantined as an
//!    outlier, so an attacker cannot hide magnitude in auxiliary state
//!    while keeping its delta inside the band. RMS (not L2) so SPATL's
//!    variable-length salient uploads are comparable with dense ones. The
//!    median is the reference because it is itself robust: a minority of
//!    attackers cannot drag it towards their own scale.
//!
//! Quarantined clients are recorded on the round's
//! [`FaultRecord`](crate::FaultRecord) with a typed
//! [`ScreenReason`], and aggregation renormalises over the remaining
//! cohort exactly as it does for dropouts — the machinery introduced with
//! the transport fault layer.
//!
//! What screening cannot catch: a sign-flipped update has the same norm as
//! the honest one it negates, and a smart attacker can scale within the
//! tolerance band. Those are the robust
//! [`AggregatorKind`](crate::AggregatorKind)s' job.
//!
//! **Memory model (DESIGN.md §12):** the stage-2 norm screen is a
//! *cohort statistic* — each family's median RMS exists only once every
//! survivor is present — so a screened round runs in the
//! [`RoundAccumulator`](crate::RoundAccumulator)'s explicit **buffered
//! spill mode**: uploads are buffered (O(cohort·model) ceiling,
//! documented, opted into by configuring a policy), deterministically
//! sorted by client id, screened here, then batch-aggregated. Unscreened
//! `WeightedMean` rounds never buffer; they stream through the exact
//! O(model) accumulator. The spill path sorts before screening, so
//! quarantine decisions are independent of upload arrival order — the
//! streaming-vs-buffered equivalence test in `tests/accumulate.rs` pins
//! this down on adversarial cohorts.
//!
//! [`GlobalState::aggregate`]: crate::GlobalState::aggregate

use crate::{FaultKind, FaultRecord, LocalOutcome};
use serde::{Deserialize, Serialize};

/// Configuration of the server's update screen. Part of
/// [`FlConfig`](crate::FlConfig); `None` there trusts every decoded
/// upload (the pre-defense behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenPolicy {
    /// An update is quarantined when its RMS exceeds
    /// `norm_tolerance × median RMS` of the round's cohort. Must be > 1.
    pub norm_tolerance: f32,
    /// Minimum cohort size for the norm screen to run: with fewer decoded
    /// uploads the median is dominated by the attackers it is supposed to
    /// expose, so only the non-finite check applies.
    pub min_cohort: usize,
}

impl Default for ScreenPolicy {
    fn default() -> Self {
        ScreenPolicy {
            norm_tolerance: 4.0,
            min_cohort: 3,
        }
    }
}

impl ScreenPolicy {
    /// Panics if the tolerance cannot separate inliers from outliers;
    /// called once when a simulation is built.
    pub fn validate(&self) {
        assert!(
            self.norm_tolerance > 1.0 && self.norm_tolerance.is_finite(),
            "norm_tolerance must be a finite value > 1"
        );
    }
}

/// Why the screen rejected an upload; carried by
/// [`FaultKind::Quarantined`](crate::FaultKind::Quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScreenReason {
    /// The update contained `NaN` or `±∞`.
    NonFinite,
    /// One of the upload's aggregated vectors had an RMS outside the
    /// cohort's tolerance band for that vector family.
    NormOutlier {
        /// RMS of the most out-of-band vector (main update, control step,
        /// momentum, or batch-norm statistics).
        rms: f32,
        /// Median RMS of that vector family over the round's decoded
        /// cohort.
        median_rms: f32,
    },
}

/// Root-mean-square of a slice (`0` when empty). Returns `NaN` when the
/// slice contains non-finite values — callers check finiteness first.
pub(crate) fn rms(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Median of a scratch slice (sorted in place; mean of the middle pair for
/// even lengths). Panics on empty input.
pub(crate) fn median_in_place(xs: &mut [f32]) -> f32 {
    assert!(!xs.is_empty(), "median of an empty sample");
    xs.sort_unstable_by(f32::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// How many vector families [`norm_families`] distinguishes.
const N_FAMILIES: usize = 4;

/// The vector families the server aggregates from this upload, in
/// screening order: the main update (salient values for a SPATL
/// selection, the dense delta otherwise), the SCAFFOLD control step, the
/// FedNova momentum, and the batch-norm statistics. `None` marks a family
/// this upload does not carry — each family is screened only over the
/// uploads that actually sent it.
fn norm_families(o: &LocalOutcome) -> [Option<&[f32]>; N_FAMILIES] {
    let update: &[f32] = match &o.selected {
        Some(sel) => &sel.values,
        None => &o.delta,
    };
    [
        Some(update),
        o.control_delta.as_deref(),
        o.velocity.as_deref(),
        (!o.buffers.is_empty()).then_some(o.buffers.as_slice()),
    ]
}

/// `true` when every vector the server would aggregate from this upload
/// is finite. Shared by the screen's stage 1 and by
/// [`AggregatorKind::NormClippedMean`](crate::AggregatorKind), which
/// drops poisoned uploads because IEEE scaling cannot zero them.
pub(crate) fn all_finite(o: &LocalOutcome) -> bool {
    norm_families(o)
        .into_iter()
        .flatten()
        .all(|xs| xs.iter().all(|v| v.is_finite()))
}

/// The screening statistic of one upload: RMS of its main update vector
/// (salient values for a SPATL selection, the dense delta otherwise).
pub(crate) fn update_rms(o: &LocalOutcome) -> f32 {
    match &o.selected {
        Some(sel) => rms(&sel.values),
        None => rms(&o.delta),
    }
}

/// Run the screen over a round's decoded cohort. Returns the survivors;
/// every rejection is pushed onto `record` as a
/// [`FaultKind::Quarantined`] event with its [`ScreenReason`].
pub fn screen_updates(
    policy: &ScreenPolicy,
    cohort: Vec<LocalOutcome>,
    record: &mut FaultRecord,
) -> Vec<LocalOutcome> {
    // Self-reported divergence (`o.diverged`) bypasses both stages: the
    // upload is already excluded by aggregation and recorded on the
    // ledger as `LocalDivergence`, so quarantining it again would
    // double-count the client — and its (typically non-finite) delta must
    // not skew the stage-2 medians. The screen judges only updates that
    // *claim* to be healthy.
    let (diverged, healthy): (Vec<LocalOutcome>, Vec<LocalOutcome>) =
        cohort.into_iter().partition(|o| o.diverged);

    // Stage 1: non-finite rejection.
    let mut kept: Vec<LocalOutcome> = Vec::with_capacity(healthy.len());
    for o in healthy {
        if all_finite(&o) {
            kept.push(o);
        } else {
            record.push(
                o.client_id,
                FaultKind::Quarantined {
                    reason: ScreenReason::NonFinite,
                },
            );
        }
    }

    // Stage 2: median-based norm screening over the finite cohort, one
    // pass per vector family so magnitude cannot hide in auxiliary state.
    let mut survivors = if kept.len() < policy.min_cohort.max(2) {
        kept
    } else {
        // The worst offence per upload as `(rms, family median)` of the
        // family with the largest ratio; `None` = inside every band.
        let mut worst: Vec<Option<(f32, f32)>> = vec![None; kept.len()];
        let mut scratch: Vec<f32> = Vec::with_capacity(kept.len());
        for family in 0..N_FAMILIES {
            let entries: Vec<(usize, f32)> = kept
                .iter()
                .enumerate()
                .filter_map(|(i, o)| norm_families(o)[family].map(|xs| (i, rms(xs))))
                .collect();
            if entries.len() < policy.min_cohort.max(2) {
                // Too few uploads carry this family for its median to be
                // trustworthy — the same stand-down rule as the screen's.
                continue;
            }
            scratch.clear();
            scratch.extend(entries.iter().map(|&(_, n)| n));
            let median = median_in_place(&mut scratch);
            if median <= 0.0 {
                // A degenerate all-zero family: no scale to compare
                // against.
                continue;
            }
            let limit = policy.norm_tolerance * median;
            for &(i, n) in &entries {
                if n > limit && worst[i].is_none_or(|(wr, wm)| n / median > wr / wm) {
                    worst[i] = Some((n, median));
                }
            }
        }
        let mut survivors = Vec::with_capacity(kept.len());
        for (o, verdict) in kept.into_iter().zip(worst) {
            match verdict {
                Some((rms, median_rms)) => record.push(
                    o.client_id,
                    FaultKind::Quarantined {
                        reason: ScreenReason::NormOutlier { rms, median_rms },
                    },
                ),
                None => survivors.push(o),
            }
        }
        survivors
    };

    // Diverged uploads ride along untouched; aggregation skips them, so
    // survivor accounting matches the unscreened path.
    survivors.extend(diverged);
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommModel;

    fn outcome(id: usize, delta: Vec<f32>) -> LocalOutcome {
        LocalOutcome {
            client_id: id,
            n_samples: 10,
            tau: 1,
            delta,
            selected: None,
            compressed: None,
            control_delta: None,
            velocity: None,
            buffers: Vec::new(),
            diverged: false,
            bytes: CommModel::dense(0),
            wire: crate::WireBytes::default(),
            frames: Vec::new(),
            keep_ratio: 1.0,
            flops_ratio: 1.0,
        }
    }

    #[test]
    fn median_odd_even_and_rms() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!((rms(&[3.0, 4.0]) - (12.5f32).sqrt()).abs() < 1e-6);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn non_finite_updates_are_quarantined() {
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(3);
        let cohort = vec![
            outcome(0, vec![1.0, 1.0]),
            outcome(1, vec![1.0, f32::NAN]),
            outcome(2, vec![f32::INFINITY, 1.0]),
        ];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].client_id, 0);
        assert_eq!(rec.quarantined, 2);
    }

    #[test]
    fn norm_outliers_are_quarantined_with_context() {
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(4);
        let cohort = vec![
            outcome(0, vec![1.0, 1.0]),
            outcome(1, vec![1.1, 0.9]),
            outcome(2, vec![0.9, 1.1]),
            outcome(3, vec![100.0, 100.0]), // 100× the cohort scale
        ];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 3);
        assert_eq!(rec.quarantined, 1);
        match &rec.events[0].kind {
            FaultKind::Quarantined {
                reason: ScreenReason::NormOutlier { rms, median_rms },
            } => {
                assert!(*rms > 99.0);
                assert!(*median_rms < 2.0);
            }
            other => panic!("expected a norm-outlier quarantine, got {other:?}"),
        }
    }

    #[test]
    fn sign_flip_passes_norm_screen() {
        // Norm screening is blind to sign flips by construction — the
        // documented reason robust aggregators exist.
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(3);
        let cohort = vec![
            outcome(0, vec![1.0, 1.0]),
            outcome(1, vec![1.0, 1.0]),
            outcome(2, vec![-1.0, -1.0]),
        ];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 3);
        assert_eq!(rec.quarantined, 0);
    }

    #[test]
    fn small_cohorts_skip_the_norm_screen() {
        let policy = ScreenPolicy::default(); // min_cohort = 3
        let mut rec = FaultRecord::for_sample(2);
        let cohort = vec![outcome(0, vec![1.0]), outcome(1, vec![1e6])];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 2, "two clients: no majority to trust");
    }

    #[test]
    fn spatl_sparse_updates_screen_on_salient_values() {
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(3);
        let mut big = outcome(2, Vec::new());
        big.selected = Some(crate::SelectedUpdate {
            indices: vec![0, 1],
            values: vec![500.0, 500.0],
            channels: 1,
            channel_ids: vec![0],
        });
        let small = |id: usize| {
            let mut o = outcome(id, Vec::new());
            o.selected = Some(crate::SelectedUpdate {
                indices: vec![0, 1, 2],
                values: vec![1.0, 1.0, 1.0],
                channels: 1,
                channel_ids: vec![0],
            });
            o
        };
        let kept = screen_updates(&policy, vec![small(0), small(1), big], &mut rec);
        assert_eq!(kept.len(), 2);
        assert_eq!(rec.quarantined, 1);
        assert_eq!(rec.events[0].client_id, 2);
    }

    #[test]
    fn diverged_uploads_bypass_the_screen() {
        // A self-reporting diverged client is already excluded by
        // aggregation and recorded as `LocalDivergence`; the screen must
        // neither quarantine it a second time nor let its non-finite
        // delta skew the norm medians.
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(4);
        let mut div = outcome(3, vec![f32::NAN, f32::NAN]);
        div.diverged = true;
        let cohort = vec![
            outcome(0, vec![1.0, 1.0]),
            outcome(1, vec![1.1, 0.9]),
            outcome(2, vec![0.9, 1.1]),
            div,
        ];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 4, "the diverged upload rides along untouched");
        assert_eq!(
            rec.quarantined, 0,
            "no double-record on top of LocalDivergence"
        );
        assert!(kept.iter().any(|o| o.diverged && o.client_id == 3));
    }

    #[test]
    fn auxiliary_vectors_are_norm_screened() {
        // An attacker that keeps its delta inside the tolerance band but
        // scales its control step 100× must still be caught: each vector
        // family is screened against its own cohort median.
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(3);
        let with_control = |id: usize, scale: f32| {
            let mut o = outcome(id, vec![1.0, 1.0]);
            o.control_delta = Some(vec![0.5 * scale, 0.5 * scale]);
            o
        };
        let cohort = vec![
            with_control(0, 1.0),
            with_control(1, 1.0),
            with_control(2, 100.0),
        ];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 2);
        assert_eq!(rec.quarantined, 1);
        assert_eq!(rec.events[0].client_id, 2);
        match &rec.events[0].kind {
            FaultKind::Quarantined {
                reason: ScreenReason::NormOutlier { rms, median_rms },
            } => {
                assert!((*rms - 50.0).abs() < 1e-3, "control RMS, got {rms}");
                assert!((*median_rms - 0.5).abs() < 1e-6);
            }
            other => panic!("expected a norm-outlier quarantine, got {other:?}"),
        }
    }

    #[test]
    fn zero_plan_zero_effect() {
        let policy = ScreenPolicy::default();
        let mut rec = FaultRecord::for_sample(3);
        let cohort = vec![
            outcome(0, vec![1.0, 2.0]),
            outcome(1, vec![2.0, 1.0]),
            outcome(2, vec![1.5, 1.5]),
        ];
        let kept = screen_updates(&policy, cohort, &mut rec);
        assert_eq!(kept.len(), 3);
        assert_eq!(rec.total(), 0);
    }

    #[test]
    #[should_panic(expected = "norm_tolerance must be a finite value > 1")]
    fn validate_rejects_unit_tolerance() {
        ScreenPolicy {
            norm_tolerance: 1.0,
            min_cohort: 3,
        }
        .validate();
    }
}
