//! Federated-learning simulator for the SPATL reproduction.
//!
//! Implements the five algorithms the paper evaluates:
//!
//! * **FedAvg** (McMahan et al.) — weighted model averaging,
//! * **FedProx** — FedAvg plus a proximal term on the local loss,
//! * **SCAFFOLD** — control variates correcting client gradient drift,
//! * **FedNova** — normalised averaging removing objective inconsistency,
//! * **SPATL** (the paper's contribution) — encoder-only sharing with
//!   private predictors (§IV-A), RL-selected salient-parameter uploads
//!   aggregated per index (§IV-B, Eq. 12), and SCAFFOLD-style gradient
//!   control restricted to the encoder (§IV-C).
//!
//! The simulator is single-process: clients are plain structs trained in
//! parallel with rayon, and every byte that a real deployment would move
//! between client and server is accounted in [`CommModel`].
//!
//! Rounds are not assumed pristine: a seeded [`FaultPlan`] on [`FlConfig`]
//! injects client dropout, straggler slowdown against a server deadline,
//! and wire corruption (caught by the `spatl-wire` CRC envelope and
//! retried with bounded backoff); every algorithm aggregates over
//! whatever cohort survives, and each round's [`FaultRecord`] documents
//! what happened. DESIGN.md §8 is the full failure model.
//!
//! Nor are clients assumed honest: a seeded [`AdversaryPlan`] turns a
//! fixed fraction of them Byzantine — emitting CRC-valid frames whose
//! payloads are poisoned (`NaN` injection, model-replacement scaling,
//! sign flips). The server defends in depth with a [`ScreenPolicy`]
//! (non-finite rejection plus median-based norm screening, every
//! quarantine on the ledger) and a choice of robust [`AggregatorKind`]s.
//! DESIGN.md §9 is the threat model.

#![deny(missing_docs)]

mod accumulate;
mod adversary;
mod chaos;
mod churn;
mod client;
mod comm;
pub mod compose;
mod config;
mod faults;
mod round;
mod screen;
mod server;
mod simulation;
mod transfer;
pub mod wire;

pub use accumulate::{RoundAccumulator, SpillReason, StreamState};
pub use adversary::{Adversary, AdversaryPlan, AttackKind};
pub use chaos::{ChaosInjector, ChaosPlan};
pub use churn::{churn_departures, ChurnModel, ChurnPlan};
pub use client::{ClientState, CompressedDelta, LocalOutcome, SelectedUpdate};
pub use comm::{CommModel, RoundBytes};
pub use compose::{
    aggregate_reduced, edge_partition, entry_outcome, exact_composition, fault_counters,
    fold_exact, fold_fault_counters, outcome_entry, reduce_cohort,
};
pub use config::{AggregatorKind, Algorithm, FlConfig, NetProfile, SpatlOptions, UploadCodec};
pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRecord};
pub use round::{RoundDriver, RoundRecord, TransportStats};
pub use screen::{screen_updates, ScreenPolicy, ScreenReason};
pub use server::GlobalState;
pub use simulation::{RunResult, Simulation};
pub use transfer::{adapt_predictor, transfer_evaluate};
pub use wire::{
    build_selection_layout, decode_download, decode_upload, encode_download, encode_upload,
    Encoded, WireBytes,
};
