//! Federated-learning simulator for the SPATL reproduction.
//!
//! Implements the five algorithms the paper evaluates:
//!
//! * **FedAvg** (McMahan et al.) — weighted model averaging,
//! * **FedProx** — FedAvg plus a proximal term on the local loss,
//! * **SCAFFOLD** — control variates correcting client gradient drift,
//! * **FedNova** — normalised averaging removing objective inconsistency,
//! * **SPATL** (the paper's contribution) — encoder-only sharing with
//!   private predictors (§IV-A), RL-selected salient-parameter uploads
//!   aggregated per index (§IV-B, Eq. 12), and SCAFFOLD-style gradient
//!   control restricted to the encoder (§IV-C).
//!
//! The simulator is single-process: clients are plain structs trained in
//! parallel with rayon, and every byte that a real deployment would move
//! between client and server is accounted in [`CommModel`].

mod client;
mod comm;
mod config;
mod server;
mod simulation;
mod transfer;
pub mod wire;

pub use client::{ClientState, LocalOutcome, SelectedUpdate};
pub use comm::{CommModel, RoundBytes};
pub use config::{Algorithm, FlConfig, NetProfile, SpatlOptions};
pub use server::GlobalState;
pub use simulation::{RoundRecord, RunResult, Simulation};
pub use transfer::{adapt_predictor, transfer_evaluate};
pub use wire::{
    build_selection_layout, decode_download, decode_upload, encode_download, encode_upload,
    Encoded, WireBytes,
};
