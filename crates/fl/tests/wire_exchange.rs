//! End-to-end checks of the wire exchange: frame sizes tie to the analytic
//! communication model, decoded traffic is exactly what was sent, and the
//! SPATL channel-id layout agrees with the pruning module's salient-index
//! selection.

use spatl_data::{synth_cifar10, Dataset, SynthConfig};
use spatl_fl::{
    build_selection_layout, decode_download, decode_upload, encode_download, encode_upload,
    Algorithm, CommModel, FlConfig, GlobalState, LocalOutcome, NetProfile, SelectedUpdate,
    Simulation, SpatlOptions, WireBytes,
};
use spatl_models::{ModelConfig, ModelKind};
use spatl_pruning::{apply_sparsities, salient_param_indices, Criterion};
use spatl_tensor::TensorRng;
use spatl_wire::HEADER_LEN;

fn tiny_shards(n: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    let cfg = SynthConfig {
        noise_std: 0.5,
        ..SynthConfig::cifar10_like()
    };
    let mut rng = TensorRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let d = synth_cifar10(&cfg, 30, seed * 100 + i as u64);
            d.split(0.7, &mut rng)
        })
        .collect()
}

fn outcome(cfg: &FlConfig, delta: Vec<f32>) -> LocalOutcome {
    let mut o = LocalOutcome {
        client_id: 0,
        n_samples: 10,
        tau: 4,
        delta,
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: false,
        bytes: CommModel::dense(0),
        wire: WireBytes::default(),
        frames: Vec::new(),
        keep_ratio: 1.0,
        flops_ratio: 1.0,
    };
    let enc = encode_upload(cfg, &o);
    o.wire.upload_payload = enc.payload;
    o.wire.upload_framed = enc.framed();
    o.frames = enc.frames;
    o
}

#[test]
fn dense_download_payload_matches_comm_model_exactly() {
    for alg in [
        Algorithm::FedAvg,
        Algorithm::FedProx { mu: 0.1 },
        Algorithm::Scaffold,
        Algorithm::FedNova,
    ] {
        let cfg = FlConfig::new(alg);
        let p = 257; // odd size: no accidental alignment
        let global = GlobalState {
            shared: vec![0.25; p],
            control: if alg.uses_control() {
                vec![0.5; p]
            } else {
                Vec::new()
            },
            momentum: if matches!(alg, Algorithm::FedNova) {
                vec![0.1; p]
            } else {
                Vec::new()
            },
            buffers: Vec::new(),
        };
        let enc = encode_download(&cfg, &global);
        let analytic = match alg {
            Algorithm::FedAvg | Algorithm::FedProx { .. } => CommModel::dense(p).download,
            Algorithm::Scaffold => CommModel::scaffold(p).download,
            Algorithm::FedNova => CommModel::fednova(p).download,
            Algorithm::Spatl(_) => unreachable!(),
        };
        assert_eq!(enc.payload, analytic, "{}", alg.name());
        // One frame, no buffers: framed size = payload + one envelope.
        assert_eq!(
            enc.framed(),
            enc.payload + HEADER_LEN as u64,
            "{}",
            alg.name()
        );

        let back = decode_download(&cfg, &enc.frames, p).expect("decode");
        assert_eq!(back.shared, global.shared, "{}", alg.name());
        assert_eq!(back.control, global.control, "{}", alg.name());
        assert_eq!(back.momentum, global.momentum, "{}", alg.name());
    }
}

#[test]
fn spatl_download_counts_control_like_eq13() {
    let p = 101;
    for gradient_control in [true, false] {
        let opts = SpatlOptions {
            gradient_control,
            ..Default::default()
        };
        let cfg = FlConfig::new(Algorithm::Spatl(opts));
        let global = GlobalState {
            shared: vec![1.0; p],
            control: vec![-1.0; p],
            momentum: Vec::new(),
            buffers: Vec::new(),
        };
        let enc = encode_download(&cfg, &global);
        assert_eq!(
            enc.payload,
            CommModel::spatl(p, p, 0, gradient_control).download
        );
        let back = decode_download(&cfg, &enc.frames, p).expect("decode");
        assert_eq!(back.shared, global.shared);
        if gradient_control {
            assert_eq!(back.control, global.control);
        } else {
            assert!(back.control.is_empty());
        }
    }
}

#[test]
fn dense_upload_roundtrips_and_ties_to_comm_model() {
    let p = 123;
    let delta: Vec<f32> = (0..p).map(|i| i as f32 * 0.01 - 0.5).collect();

    let cfg = FlConfig::new(Algorithm::FedAvg);
    let o = outcome(&cfg, delta.clone());
    assert_eq!(o.wire.upload_payload, CommModel::dense(p).upload);
    let rx = decode_upload(&cfg, &o, &o.frames, None, p).expect("decode");
    assert_eq!(rx.delta, delta);
    assert!(rx.selected.is_none());

    let cfg = FlConfig::new(Algorithm::Scaffold);
    let mut o = outcome(&cfg, delta.clone());
    o.control_delta = Some(vec![0.125; p]);
    let enc = encode_upload(&cfg, &o);
    o.frames = enc.frames;
    assert_eq!(enc.payload, CommModel::scaffold(p).upload);
    let rx = decode_upload(&cfg, &o, &o.frames, None, p).expect("decode");
    assert_eq!(rx.delta, delta);
    assert_eq!(rx.control_delta.as_deref(), Some(&vec![0.125; p][..]));

    let cfg = FlConfig::new(Algorithm::FedNova);
    let mut o = outcome(&cfg, delta.clone());
    o.velocity = Some(vec![-0.25; p]);
    let enc = encode_upload(&cfg, &o);
    o.frames = enc.frames;
    assert_eq!(enc.payload, CommModel::fednova(p).upload);
    let rx = decode_upload(&cfg, &o, &o.frames, None, p).expect("decode");
    assert_eq!(rx.delta, delta);
    assert_eq!(rx.velocity.as_deref(), Some(&vec![-0.25; p][..]));
}

#[test]
fn selection_layout_agrees_with_salient_indices() {
    // The layout is the wire's view of the architecture; the pruning module
    // is the model's. Their selected-index sets must be identical for any
    // mask, or server-side expansion would aggregate the wrong entries.
    let mut model = ModelConfig::cifar(ModelKind::ResNet20).build();
    let layout = build_selection_layout(&model, false);
    let total_channels: usize = model.prune_points.iter().map(|p| p.out_channels).sum();
    assert_eq!(layout.num_channels(), total_channels);

    let n = model.prune_points.len();
    apply_sparsities(&mut model, &vec![0.4; n], Criterion::L2);
    let salient = salient_param_indices(&model);

    // Channel ids in prune-point order, then channel order.
    let mut ids = Vec::new();
    let mut base = 0u32;
    for p in &model.prune_points {
        let conv = model.conv_at(p.layer);
        for (c, &m) in conv.channel_mask.iter().enumerate() {
            if m != 0.0 {
                ids.push(base + c as u32);
            }
        }
        base += conv.out_channels as u32;
    }
    assert!(ids.len() < total_channels, "selection was dense — vacuous");

    let expanded = layout.expand(&ids).expect("expand");
    assert_eq!(expanded, salient, "layout and pruning disagree on indices");
    assert_eq!(layout.channels_for(&salient), ids);
}

#[test]
fn spatl_upload_roundtrips_through_channel_ids() {
    let mut model = ModelConfig::femnist().build();
    let layout = build_selection_layout(&model, false);
    apply_sparsities(&mut model, &[0.5], Criterion::L1);
    let salient = salient_param_indices(&model);
    let ids = layout.channels_for(&salient);

    let values: Vec<f32> = (0..salient.len()).map(|i| i as f32 * 0.001).collect();
    let cfg = FlConfig::new(Algorithm::Spatl(SpatlOptions::default()));
    let p = model.encoder.num_params();
    let mut o = outcome(&cfg, Vec::new());
    o.selected = Some(SelectedUpdate {
        indices: salient.clone(),
        values: values.clone(),
        channels: ids.len(),
        channel_ids: ids.clone(),
    });
    let enc = encode_upload(&cfg, &o);
    o.frames = enc.frames;
    // Eq. 13: 4 bytes per selected value + 4 per surviving channel.
    assert_eq!(
        enc.payload,
        CommModel::spatl(p, salient.len(), ids.len(), true).upload
    );

    let rx = decode_upload(&cfg, &o, &o.frames, Some(&layout), p).expect("decode");
    let sel = rx.selected.expect("selected survives the wire");
    assert_eq!(sel.indices, salient);
    assert_eq!(sel.values, values);
    assert_eq!(sel.channel_ids, ids);
}

#[test]
fn corrupted_upload_is_rejected_not_panicking() {
    let cfg = FlConfig::new(Algorithm::FedAvg);
    let mut o = outcome(&cfg, vec![1.0; 32]);
    let mid = o.frames[0].len() / 2;
    o.frames[0][mid] ^= 0x40;
    assert!(decode_upload(&cfg, &o, &o.frames, None, 32).is_err());

    // Wrong message type for the algorithm is rejected too.
    let scaffold = FlConfig::new(Algorithm::Scaffold);
    let o = outcome(&cfg, vec![1.0; 32]); // sealed as DenseUpdate
    assert!(decode_upload(&scaffold, &o, &o.frames, None, 32).is_err());
}

#[test]
fn simulated_round_records_wire_traffic_and_transfer_time() {
    let mut cfg = FlConfig::new(Algorithm::FedAvg);
    cfg.n_clients = 2;
    cfg.rounds = 1;
    cfg.local_epochs = 1;
    cfg.net = NetProfile::Mobile;
    let mut sim = Simulation::new(
        cfg,
        ModelConfig::cifar(ModelKind::ResNet20),
        tiny_shards(2, 7),
    );
    let record = sim.run_round();

    // Measured payloads equal the analytic accounting for a dense path.
    assert_eq!(record.wire.download_payload, record.bytes.download);
    assert_eq!(record.wire.upload_payload, record.bytes.upload);
    // Framing adds a strictly positive, but small, overhead (envelope
    // headers plus the auxiliary batch-norm frames).
    let overhead = record.wire.overhead();
    assert!(overhead > 0);
    assert!(overhead as f64 / (record.wire.total_framed() as f64) < 0.05);
    // The mobile profile moves megabytes: transfer time must be visible.
    assert!(record.transfer_wall_s > 0.0);
    assert!(record.transfer_device_s >= record.transfer_wall_s);
}

#[test]
fn spatl_round_uploads_fewer_framed_bytes_than_dense() {
    // Acceptance: with keep-ratio < 1, SPATL's *measured* upload is
    // strictly smaller than FedAvg's on the same model.
    let mk = |alg| {
        let mut cfg = FlConfig::new(alg);
        cfg.n_clients = 2;
        cfg.rounds = 1;
        cfg.local_epochs = 1;
        cfg
    };
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut dense = Simulation::new(mk(Algorithm::FedAvg), model_cfg, tiny_shards(2, 9));
    let dense_rec = dense.run_round();

    let spatl_opts = SpatlOptions {
        target_flops_ratio: 0.5,
        ..Default::default()
    };
    let mut spatl = Simulation::new(
        mk(Algorithm::Spatl(spatl_opts)),
        model_cfg,
        tiny_shards(2, 9),
    );
    let spatl_rec = spatl.run_round();

    assert!(
        spatl_rec.mean_keep_ratio < 1.0,
        "selection kept everything — vacuous"
    );
    assert!(
        spatl_rec.wire.upload_framed < dense_rec.wire.upload_framed,
        "spatl {} !< dense {}",
        spatl_rec.wire.upload_framed,
        dense_rec.wire.upload_framed
    );
}
