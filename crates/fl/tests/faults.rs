//! Integration tests of the fault-injection and graceful-degradation
//! pipeline: seeded plans replay exactly, corrupted uploads are rejected
//! and retried within budget, all five algorithms survive heavy dropout,
//! and a round that loses every client is a recorded no-op — never a
//! panic, never a NaN.

use spatl_data::{dirichlet_partition, synth_cifar10, Dataset, SynthConfig};
use spatl_fl::{Algorithm, FaultPlan, FlConfig, NetProfile, Simulation, SpatlOptions};
use spatl_models::{ModelConfig, ModelKind};
use spatl_tensor::TensorRng;

/// Absolute best-accuracy tolerance between a fault-free run and the same
/// run at 30% dropout (documented in DESIGN.md §8): losing a third of each
/// cohort slows convergence but must not collapse it. The band is loose
/// on purpose — with 4 clients on synthetic shards both trajectories are
/// chaotic, and any legitimate change to aggregation rounding (e.g. the
/// exact streaming fold) shifts where each run's best round lands.
const DROPOUT_TOLERANCE: f32 = 0.25;

fn shards(n_clients: usize, per_client: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    let cfg = SynthConfig {
        noise_std: 0.4,
        ..SynthConfig::cifar10_like()
    };
    let data = synth_cifar10(&cfg, n_clients * per_client, seed);
    let mut rng = TensorRng::seed_from(seed ^ 0xBEEF);
    let parts = dirichlet_partition(&data.labels, 10, n_clients, 0.5, &mut rng);
    parts
        .into_iter()
        .map(|idx| data.subset(&idx).split(0.75, &mut rng))
        .collect()
}

fn mini_cfg(algorithm: Algorithm, rounds: usize, seed: u64) -> FlConfig {
    let mut cfg = FlConfig::new(algorithm);
    cfg.n_clients = 4;
    cfg.sample_ratio = 1.0;
    cfg.rounds = rounds;
    cfg.local_epochs = 2;
    cfg.batch_size = 16;
    cfg.lr = 0.05;
    cfg.seed = seed;
    cfg
}

fn run_with(
    algorithm: Algorithm,
    rounds: usize,
    seed: u64,
    faults: Option<FaultPlan>,
) -> spatl_fl::RunResult {
    let mut cfg = mini_cfg(algorithm, rounds, seed);
    cfg.faults = faults;
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 60, seed));
    sim.run()
}

#[test]
fn seeded_fault_runs_replay_identically() {
    // Acceptance: same FaultPlan seed → same history, fault ledger
    // included, regardless of rayon scheduling.
    let plan = FaultPlan {
        dropout: 0.3,
        straggler_ratio: 0.4,
        straggler_slowdown: 3.0,
        deadline_s: Some(3600.0),
        corruption: 0.2,
        max_retries: 2,
        retry_backoff_s: 0.25,
        seed: 0xFA171,
    };
    let a = run_with(Algorithm::FedAvg, 4, 21, Some(plan));
    let b = run_with(Algorithm::FedAvg, 4, 21, Some(plan));
    assert_eq!(a.history.len(), b.history.len());
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(ra.mean_acc, rb.mean_acc, "round {}", ra.round);
        assert_eq!(ra.cumulative_bytes, rb.cumulative_bytes);
        assert_eq!(ra.faults, rb.faults, "round {} fault ledger", ra.round);
        assert_eq!(ra.transfer_wall_s, rb.transfer_wall_s);
    }
    // The plan actually fired: some fault was observed over the run.
    assert!(
        a.history.iter().any(|r| r.faults.total() > 0),
        "a 30%-dropout plan over 4 rounds × 4 clients never faulted"
    );
}

#[test]
fn certain_corruption_exhausts_retries_and_never_panics() {
    // corruption = 1.0: every transmission attempt of every client arrives
    // damaged. Each client must be retried exactly `max_retries` times,
    // then dropped; aggregation becomes a no-op and the global model is
    // untouched.
    let plan = FaultPlan {
        corruption: 1.0,
        max_retries: 2,
        ..Default::default()
    };
    let mut cfg = mini_cfg(Algorithm::FedAvg, 1, 22);
    cfg.local_epochs = 1;
    cfg.faults = Some(plan);
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 30, 22));
    let before = sim.global.shared.clone();
    let rec = sim.run_round();

    let n = rec.faults.sampled;
    assert_eq!(n, 4);
    assert_eq!(rec.faults.survivors, 0);
    // 1 + max_retries transmissions per client, each corrupted.
    assert_eq!(rec.faults.corrupted_uploads, n * 3);
    assert_eq!(rec.faults.retries, n * 2);
    assert_eq!(rec.faults.retry_exhausted, n);
    assert!(rec.faults.no_op, "no survivor ⇒ the round must be a no-op");
    assert_eq!(sim.global.shared, before, "global model must be untouched");
    assert!(rec.mean_acc.is_finite());
    // Every retransmission is real traffic: framed upload bytes tripled.
    assert_eq!(rec.wire.upload_framed % 3, 0);
    assert!(rec.wire.upload_framed > rec.wire.upload_payload * 3);
}

#[test]
fn all_algorithms_complete_five_rounds_at_thirty_percent_dropout() {
    // Acceptance: every algorithm finishes a 5-round run at 30% dropout
    // without panicking, with finite accuracy throughout.
    let plan = FaultPlan {
        dropout: 0.3,
        seed: 0xD20,
        ..Default::default()
    };
    for (i, alg) in [
        Algorithm::FedAvg,
        Algorithm::FedProx { mu: 0.01 },
        Algorithm::Scaffold,
        Algorithm::FedNova,
        Algorithm::Spatl(SpatlOptions::default()),
    ]
    .into_iter()
    .enumerate()
    {
        let res = run_with(alg, 5, 30 + i as u64, Some(plan));
        assert_eq!(res.history.len(), 5, "{}", res.algorithm);
        for r in &res.history {
            assert!(
                r.mean_acc.is_finite(),
                "{} round {} went non-finite",
                res.algorithm,
                r.round
            );
            assert_eq!(
                r.faults.survivors + r.faults.dropouts,
                r.faults.sampled,
                "{} round {} lost clients without a ledger entry",
                res.algorithm,
                r.round
            );
        }
        assert!(
            res.history.iter().any(|r| r.faults.dropouts > 0),
            "{}: 30% dropout over 5 rounds × 4 clients never dropped anyone",
            res.algorithm
        );
    }
}

#[test]
fn dropout_accuracy_stays_within_documented_tolerance() {
    // Acceptance: FedAvg and SPATL at 30% dropout end within
    // DROPOUT_TOLERANCE of their fault-free best accuracy. Eight rounds,
    // not five: dropout mostly *delays* convergence, so comparing on the
    // steep part of the learning curve would measure curve offset, not
    // degradation (see DESIGN.md §8).
    for alg in [Algorithm::FedAvg, Algorithm::Spatl(SpatlOptions::default())] {
        let clean = run_with(alg, 8, 40, None);
        let faulty = run_with(alg, 8, 40, Some(FaultPlan::dropout_only(0.3)));
        let gap = clean.best_acc() - faulty.best_acc();
        assert!(
            gap <= DROPOUT_TOLERANCE,
            "{}: fault-free best {:.3} vs 30%-dropout best {:.3} (gap {:.3} > {})",
            clean.algorithm,
            clean.best_acc(),
            faulty.best_acc(),
            gap,
            DROPOUT_TOLERANCE
        );
    }
}

#[test]
fn fully_dropped_rounds_are_recorded_no_ops() {
    // Regression for the zero-survivor NaN: dropout = 1.0 loses every
    // sampled client every round. Nothing may move — not the model, not
    // the byte counters — and each record must say why.
    let mut cfg = mini_cfg(Algorithm::FedAvg, 3, 23);
    cfg.local_epochs = 1;
    cfg.faults = Some(FaultPlan::dropout_only(1.0));
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 30, 23));
    let before = sim.global.shared.clone();
    let res = sim.run();

    assert_eq!(res.history.len(), 3);
    for r in &res.history {
        assert!(r.faults.no_op, "round {} should be a no-op", r.round);
        assert_eq!(r.faults.survivors, 0);
        assert_eq!(r.faults.dropouts, r.faults.sampled);
        assert_eq!(r.bytes.total(), 0, "a dropped client moves no bytes");
        assert_eq!(r.cumulative_bytes, 0);
        assert!(r.mean_acc.is_finite(), "no-op round went non-finite");
    }
    assert_eq!(
        sim.global.shared, before,
        "global drifted with no survivors"
    );
}

#[test]
fn deadline_excludes_slow_stragglers_and_caps_wall_clock() {
    // Every participant is a straggler slowed far past the deadline: all
    // are excluded from aggregation, and the round's wall clock is the
    // deadline — the server does not wait for anyone longer than that.
    let deadline = 0.5;
    let plan = FaultPlan {
        straggler_ratio: 1.0,
        straggler_slowdown: 1e6,
        deadline_s: Some(deadline),
        ..Default::default()
    };
    let mut cfg = mini_cfg(Algorithm::FedAvg, 1, 24);
    cfg.local_epochs = 1;
    cfg.net = NetProfile::Mobile;
    cfg.faults = Some(plan);
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 30, 24));
    let before = sim.global.shared.clone();
    let rec = sim.run_round();

    assert_eq!(rec.faults.stragglers, rec.faults.sampled);
    assert_eq!(rec.faults.deadline_dropped, rec.faults.sampled);
    assert_eq!(rec.faults.survivors, 0);
    assert!(rec.faults.no_op);
    assert!(
        (rec.transfer_wall_s - deadline).abs() < 1e-9,
        "wall clock {} should be capped at the {}s deadline",
        rec.transfer_wall_s,
        deadline
    );
    // Device time still pays the full straggler cost.
    assert!(rec.transfer_device_s > deadline);
    assert_eq!(sim.global.shared, before);
}

#[test]
fn fault_free_plan_matches_no_plan_exactly() {
    // A configured-but-all-zero plan must be byte-identical to running
    // with no plan at all: fault RNG streams never touch training
    // randomness, and zero probabilities never fire.
    let zero = FaultPlan {
        dropout: 0.0,
        straggler_ratio: 0.0,
        corruption: 0.0,
        ..Default::default()
    };
    let without = run_with(Algorithm::Scaffold, 3, 25, None);
    let with = run_with(Algorithm::Scaffold, 3, 25, Some(zero));
    for (ra, rb) in without.history.iter().zip(&with.history) {
        assert_eq!(ra.mean_acc, rb.mean_acc, "round {}", ra.round);
        assert_eq!(ra.per_client_acc, rb.per_client_acc);
        assert_eq!(ra.cumulative_bytes, rb.cumulative_bytes);
        assert_eq!(ra.wire, rb.wire);
        assert_eq!(ra.transfer_wall_s, rb.transfer_wall_s);
        assert_eq!(rb.faults.total(), 0, "zero plan must never fault");
    }
}
