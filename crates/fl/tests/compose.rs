//! Property tests for hierarchical (edge → root) composition.
//!
//! Three guarantees from DESIGN.md §11, checked over randomized cohorts
//! covering all five algorithms:
//!
//! 1. **Exact composition is bit-identical**: merging two edges'
//!    already-collected survivors and folding them in ascending
//!    client-id order reproduces the flat coordinator's aggregation
//!    bit-for-bit — including survivor renormalisation when clients on
//!    one edge drop out — for the exactly-composable aggregators.
//! 2. **A single-edge reduction is the flat robust aggregation**: the
//!    edge-side statistic ([`reduce_cohort`]) composed through the
//!    root-side statistic ([`aggregate_reduced`]) with one edge is
//!    bit-identical to flat robust aggregation — pinning the private
//!    server statistic and the compose-module statistic together.
//! 3. **Two-edge reduced composition is range-bounded**: the composed
//!    per-coordinate step and the flat robust step both lie inside the
//!    envelope of the surviving clients' normalised contributions, so
//!    `|composed − flat| ≤ server_lr · (max − min)` per coordinate (the
//!    FedNova envelope is widened to cover both the global and the
//!    edge-local τ_eff normalisations).

use proptest::prelude::*;
use spatl_fl::{
    aggregate_reduced, edge_partition, exact_composition, reduce_cohort, AggregatorKind, Algorithm,
    CommModel, FlConfig, GlobalState, LocalOutcome, SelectedUpdate, SpatlOptions, WireBytes,
};

/// Deterministic splitmix64 stream: the vendored proptest stub has no
/// combinator strategies, so each case draws shape scalars plus one seed
/// and derives the cohort from this generator.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

fn algorithms() -> [Algorithm; 5] {
    [
        Algorithm::FedAvg,
        Algorithm::FedProx { mu: 0.01 },
        Algorithm::Scaffold,
        Algorithm::FedNova,
        Algorithm::Spatl(SpatlOptions::default()),
    ]
}

struct Case {
    cfg: FlConfig,
    global: GlobalState,
    cohort: Vec<LocalOutcome>,
}

/// Build one randomized case: global state of `p` shared and `b` buffer
/// coordinates, and `n` client outcomes exercising every optional field
/// (divergence, explicit control deltas, velocities, sparse selections,
/// matched and mismatched buffer vectors).
fn build_case(seed: u64, algorithm: Algorithm, aggregator: AggregatorKind) -> Case {
    let mut g = Gen(seed);
    let p = 2 + g.below(3);
    let n = 4 + g.below(5);
    let b = g.below(3);

    let mut cohort = Vec::with_capacity(n);
    for id in 0..n {
        let delta: Vec<f32> = (0..p).map(|_| g.f32(-1.0, 1.0)).collect();
        let selected = if g.chance(0.6) {
            let indices: Vec<u32> = (0..p as u32).filter(|_| g.chance(0.6)).collect();
            let values = indices.iter().map(|&i| delta[i as usize] * 0.5).collect();
            Some(SelectedUpdate {
                channels: indices.len(),
                channel_ids: Vec::new(),
                indices,
                values,
            })
        } else {
            None
        };
        cohort.push(LocalOutcome {
            client_id: id,
            n_samples: 1 + g.below(40),
            tau: 1 + g.below(5),
            selected,
            compressed: None,
            control_delta: if g.chance(0.5) {
                Some((0..p).map(|_| g.f32(-1.0, 1.0)).collect())
            } else {
                None
            },
            velocity: if g.chance(0.5) {
                Some((0..p).map(|_| g.f32(-1.0, 1.0)).collect())
            } else {
                None
            },
            buffers: if g.chance(0.8) {
                (0..b).map(|j| 0.1 * (id + j) as f32).collect()
            } else {
                Vec::new()
            },
            diverged: g.chance(0.15),
            delta,
            bytes: CommModel::dense(0),
            wire: WireBytes::default(),
            frames: Vec::new(),
            keep_ratio: 1.0,
            flops_ratio: 1.0,
        });
    }

    let mut cfg = FlConfig::new(algorithm);
    cfg.n_clients = n;
    cfg.aggregator = aggregator;
    Case {
        cfg,
        global: GlobalState {
            shared: (0..p).map(|_| g.f32(-1.0, 1.0)).collect(),
            control: (0..p).map(|_| g.f32(-0.5, 0.5)).collect(),
            momentum: Vec::new(),
            buffers: (0..b).map(|_| g.f32(0.0, 1.0)).collect(),
        },
        cohort,
    }
}

fn assert_bits_equal(a: &[f32], c: &[f32], what: &str) {
    assert_eq!(a.len(), c.len(), "{what}: length");
    for (j, (x, y)) in a.iter().zip(c).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{j}]: {x} vs {y}");
    }
}

fn assert_state_bits_equal(a: &GlobalState, c: &GlobalState) {
    assert_bits_equal(&a.shared, &c.shared, "shared");
    assert_bits_equal(&a.control, &c.control, "control");
    assert_bits_equal(&a.momentum, &c.momentum, "momentum");
    assert_bits_equal(&a.buffers, &c.buffers, "buffers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Guarantee 1: with an exactly-composable aggregator, the root's
    /// merge-and-sort of the edges' survivors replays the flat fold
    /// bit-for-bit, dropouts on one edge included.
    #[test]
    fn exact_two_edge_merge_is_bit_identical(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        agg_idx in 0usize..2,
        drop_bits in 0u32..512,
    ) {
        let aggregator = [AggregatorKind::WeightedMean, AggregatorKind::NormClippedMean][agg_idx];
        prop_assert!(exact_composition(&aggregator));
        let case = build_case(seed, algorithms()[alg_idx], aggregator);
        let n = case.cohort.len();
        // Dropouts: clients whose upload never arrives (arbitrarily many
        // of them on either edge) simply leave the cohort.
        let survivors_flat: Vec<LocalOutcome> = case
            .cohort
            .iter()
            .enumerate()
            .filter(|&(i, _)| drop_bits >> i & 1 == 0)
            .map(|(_, o)| o.clone())
            .collect();

        let mut flat = case.global.clone();
        let applied_flat = flat.aggregate(&case.cfg, &survivors_flat, n);

        // Tiered: two edges collect their slices; the root receives the
        // second edge's combined upload first (worst-case arrival order),
        // merges, sorts ascending by client id and folds.
        let ranges = edge_partition(n, 2);
        let mut merged: Vec<LocalOutcome> = Vec::new();
        for range in ranges.iter().rev() {
            merged.extend(
                survivors_flat
                    .iter()
                    .filter(|o| range.contains(&o.client_id))
                    .cloned(),
            );
        }
        merged.sort_by_key(|o| o.client_id);
        let mut tiered = case.global.clone();
        let applied_tiered = tiered.aggregate(&case.cfg, &merged, n);

        prop_assert_eq!(applied_flat, applied_tiered);
        assert_state_bits_equal(&flat, &tiered);
    }

    /// Guarantee 2: a single edge's reduction composed at the root IS the
    /// flat robust aggregation, bit for bit — the compose-module
    /// statistic and the server's private statistic cannot drift apart
    /// without this test failing.
    #[test]
    fn single_edge_reduction_reproduces_flat_robust(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        agg_idx in 0usize..2,
    ) {
        let aggregator = [
            AggregatorKind::CoordinateMedian,
            AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.25 },
        ][agg_idx];
        prop_assert!(!exact_composition(&aggregator));
        let case = build_case(seed, algorithms()[alg_idx], aggregator);
        let n = case.cohort.len();
        let mut flat = case.global.clone();
        let applied_flat = flat.aggregate(&case.cfg, &case.cohort, n);

        let mut composed = case.global.clone();
        match reduce_cohort(&case.cfg, &case.cohort, &case.global) {
            Some(red) => {
                let applied = aggregate_reduced(&mut composed, &case.cfg, &[red], n);
                prop_assert_eq!(applied_flat, applied);
            }
            None => prop_assert!(!applied_flat, "edge empty but flat aggregated"),
        }
        assert_state_bits_equal(&flat, &composed);
    }

    /// Guarantee 3: two-edge reduced composition stays inside the
    /// envelope of the surviving clients' normalised contributions, per
    /// coordinate — and therefore within `server_lr · (max − min)` of the
    /// flat robust step.
    #[test]
    fn two_edge_reduced_composition_is_range_bounded(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        agg_idx in 0usize..2,
    ) {
        let aggregator = [
            AggregatorKind::CoordinateMedian,
            AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.25 },
        ][agg_idx];
        let case = build_case(seed, algorithms()[alg_idx], aggregator);
        let n = case.cohort.len();
        let p = case.global.shared.len();
        let ranges = edge_partition(n, 2);

        let mut flat = case.global.clone();
        let applied_flat = flat.aggregate(&case.cfg, &case.cohort, n);

        let mut composed = case.global.clone();
        let edges: Vec<_> = ranges
            .iter()
            .map(|r| {
                let slice: Vec<LocalOutcome> = case
                    .cohort
                    .iter()
                    .filter(|o| r.contains(&o.client_id))
                    .cloned()
                    .collect();
                reduce_cohort(&case.cfg, &slice, &case.global)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        let applied = aggregate_reduced(&mut composed, &case.cfg, &edges, n);
        prop_assert_eq!(applied_flat, applied, "no-op rounds must agree");
        if !applied {
            assert_state_bits_equal(&flat, &composed);
            return Ok(());
        }

        // Per-coordinate envelope of the survivors' normalised
        // contributions. For FedNova the contribution of client i is
        // τ_eff·δᵢ[j]/τᵢ, whose normaliser differs between the flat fold
        // (survivor-wide τ_eff) and client i's edge (local τ_eff_e); the
        // envelope covers both.
        let valid: Vec<&LocalOutcome> = case.cohort.iter().filter(|o| !o.diverged).collect();
        let mut tau_effs: Vec<f32> = Vec::new();
        if matches!(case.cfg.algorithm, Algorithm::FedNova) {
            let global_total: f32 = valid.iter().map(|o| o.n_samples as f32).sum();
            tau_effs.push(
                valid
                    .iter()
                    .map(|o| (o.n_samples as f32 / global_total) * o.tau as f32)
                    .sum(),
            );
            for r in &ranges {
                let edge: Vec<&&LocalOutcome> =
                    valid.iter().filter(|o| r.contains(&o.client_id)).collect();
                let total: f32 = edge.iter().map(|o| o.n_samples as f32).sum();
                if total > 0.0 {
                    tau_effs.push(
                        edge.iter()
                            .map(|o| (o.n_samples as f32 / total) * o.tau as f32)
                            .sum(),
                    );
                }
            }
        }
        for j in 0..p {
            let mut contributions: Vec<f32> = Vec::new();
            for o in &valid {
                match case.cfg.algorithm {
                    Algorithm::FedNova => {
                        for &te in &tau_effs {
                            contributions.push(te * o.delta[j] / o.tau.max(1) as f32);
                        }
                    }
                    Algorithm::Spatl(_) => match &o.selected {
                        Some(sel) => {
                            if let Some(k) = sel.indices.iter().position(|&i| i as usize == j) {
                                contributions.push(sel.values[k]);
                            }
                        }
                        None => contributions.push(o.delta[j]),
                    },
                    _ => contributions.push(o.delta[j]),
                }
            }
            if contributions.is_empty() {
                continue;
            }
            let lo = contributions.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = contributions
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            let tol = 1e-4 * (1.0 + (hi - lo).abs());
            let slr = case.cfg.server_lr;
            for (name, state) in [("composed", &composed), ("flat", &flat)] {
                let step = state.shared[j] - case.global.shared[j];
                // SPATL leaves unselected coordinates untouched; a zero
                // step on a coordinate nobody's edge carried is in-bounds.
                if matches!(case.cfg.algorithm, Algorithm::Spatl(_)) && step == 0.0 {
                    continue;
                }
                prop_assert!(
                    step >= slr * lo - tol && step <= slr * hi + tol,
                    "{} step {} outside envelope [{}, {}] at j={}",
                    name, step, slr * lo, slr * hi, j
                );
            }
            let gap = (composed.shared[j] - flat.shared[j]).abs();
            prop_assert!(
                gap <= slr * (hi - lo) + 2.0 * tol,
                "|composed - flat| = {} exceeds server_lr * range = {} at j={}",
                gap, slr * (hi - lo), j
            );
        }
        for state in [&composed, &flat] {
            for v in [&state.shared, &state.control, &state.momentum, &state.buffers] {
                prop_assert!(v.iter().all(|x| x.is_finite()), "non-finite state");
            }
        }
    }
}
