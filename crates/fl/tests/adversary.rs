//! Integration and property tests of the Byzantine-defense pipeline:
//! robust aggregators agree with naive reference implementations, the
//! default configuration replays the pre-defense behaviour bit-for-bit,
//! seeded adversarial runs replay exactly, and — the headline — at a 30%
//! attacker fraction the defended server stays within tolerance of the
//! attack-free run while the undefended weighted mean collapses.

use spatl_data::{dirichlet_partition, synth_cifar10, Dataset, SynthConfig};
use spatl_fl::{
    AdversaryPlan, AggregatorKind, Algorithm, AttackKind, CommModel, FlConfig, GlobalState,
    LocalOutcome, ScreenPolicy, Simulation, WireBytes,
};
use spatl_models::{ModelConfig, ModelKind};
use spatl_tensor::TensorRng;

/// Acceptance tolerance (ISSUE 4): at a 30% attacker fraction the defended
/// run's final accuracy must sit within 5 points of the attack-free run.
const DEFENSE_TOLERANCE: f32 = 0.05;

fn shards(n_clients: usize, per_client: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    let cfg = SynthConfig {
        noise_std: 0.4,
        ..SynthConfig::cifar10_like()
    };
    let data = synth_cifar10(&cfg, n_clients * per_client, seed);
    let mut rng = TensorRng::seed_from(seed ^ 0xBEEF);
    let parts = dirichlet_partition(&data.labels, 10, n_clients, 0.5, &mut rng);
    parts
        .into_iter()
        .map(|idx| data.subset(&idx).split(0.75, &mut rng))
        .collect()
}

fn mini_cfg(algorithm: Algorithm, n_clients: usize, rounds: usize, seed: u64) -> FlConfig {
    let mut cfg = FlConfig::new(algorithm);
    cfg.n_clients = n_clients;
    cfg.sample_ratio = 1.0;
    cfg.rounds = rounds;
    cfg.local_epochs = 2;
    cfg.batch_size = 16;
    cfg.lr = 0.05;
    cfg.seed = seed;
    cfg
}

fn run(cfg: FlConfig, seed: u64) -> spatl_fl::RunResult {
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 60, seed));
    sim.run()
}

fn bits(h: &spatl_fl::RunResult) -> Vec<u32> {
    h.history.iter().map(|r| r.mean_acc.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// Property tests: robust statistics against naive references.
// ---------------------------------------------------------------------------

fn outcome(id: usize, delta: Vec<f32>, n_samples: usize) -> LocalOutcome {
    LocalOutcome {
        client_id: id,
        n_samples,
        tau: 1,
        delta,
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: false,
        bytes: CommModel::dense(0),
        wire: WireBytes::default(),
        frames: Vec::new(),
        keep_ratio: 1.0,
        flops_ratio: 1.0,
    }
}

fn empty_global(p: usize) -> GlobalState {
    GlobalState {
        shared: vec![0.0; p],
        control: Vec::new(),
        momentum: Vec::new(),
        buffers: Vec::new(),
    }
}

fn naive_median(mut xs: Vec<f32>) -> f32 {
    xs.sort_by(f32::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn naive_trimmed(mut xs: Vec<f32>, ratio: f32) -> f32 {
    xs.sort_by(f32::total_cmp);
    let k = (ratio * xs.len() as f32).floor() as usize;
    if xs.len() <= 2 * k {
        return naive_median(xs);
    }
    let kept = &xs[k..xs.len() - k];
    kept.iter().sum::<f32>() / kept.len() as f32
}

#[test]
fn coordinate_median_matches_naive_reference() {
    let p = 17;
    for seed in 0..8u64 {
        let mut rng = TensorRng::seed_from(seed ^ 0x11ED);
        let n = 3 + (seed as usize % 5);
        let cohort: Vec<LocalOutcome> = (0..n)
            .map(|id| {
                let delta: Vec<f32> = (0..p).map(|_| rng.normal(0.0, 2.0)).collect();
                outcome(id, delta, 5 + id) // unequal weights: must be ignored
            })
            .collect();
        let cfg = FlConfig {
            aggregator: AggregatorKind::CoordinateMedian,
            ..FlConfig::new(Algorithm::FedAvg)
        };
        let mut g = empty_global(p);
        assert!(g.aggregate(&cfg, &cohort, n));
        for j in 0..p {
            let expect = naive_median(cohort.iter().map(|o| o.delta[j]).collect());
            assert_eq!(
                g.shared[j],
                cfg.server_lr * expect,
                "seed {seed}, coord {j}"
            );
        }
    }
}

#[test]
fn coordinate_trimmed_mean_matches_naive_reference() {
    let p = 11;
    for seed in 0..8u64 {
        for &ratio in &[0.0f32, 0.2, 0.4] {
            let mut rng = TensorRng::seed_from(seed ^ 0x731);
            let n = 2 + (seed as usize % 6);
            let cohort: Vec<LocalOutcome> = (0..n)
                .map(|id| {
                    let delta: Vec<f32> = (0..p).map(|_| rng.normal(0.0, 1.0)).collect();
                    outcome(id, delta, 10)
                })
                .collect();
            let cfg = FlConfig {
                aggregator: AggregatorKind::CoordinateTrimmedMean { trim_ratio: ratio },
                ..FlConfig::new(Algorithm::FedAvg)
            };
            let mut g = empty_global(p);
            assert!(g.aggregate(&cfg, &cohort, n));
            for j in 0..p {
                let expect = naive_trimmed(cohort.iter().map(|o| o.delta[j]).collect(), ratio);
                assert!(
                    (g.shared[j] - cfg.server_lr * expect).abs() < 1e-6,
                    "seed {seed}, ratio {ratio}, coord {j}"
                );
            }
        }
    }
}

#[test]
fn weighted_mean_matches_naive_fedavg_reference() {
    // The default aggregator must implement the published sample-weighted
    // rule exactly — the regression anchor for the pre-defense behaviour.
    let p = 9;
    let mut rng = TensorRng::seed_from(0xAB);
    let cohort: Vec<LocalOutcome> = (0..4)
        .map(|id| {
            let delta: Vec<f32> = (0..p).map(|_| rng.normal(0.0, 1.0)).collect();
            outcome(id, delta, 3 + 2 * id)
        })
        .collect();
    let cfg = FlConfig::new(Algorithm::FedAvg);
    assert_eq!(cfg.aggregator, AggregatorKind::WeightedMean);
    let mut g = empty_global(p);
    assert!(g.aggregate(&cfg, &cohort, 4));
    let total: f32 = cohort.iter().map(|o| o.n_samples as f32).sum();
    for j in 0..p {
        let expect: f32 = cohort
            .iter()
            .map(|o| (o.n_samples as f32 / total) * o.delta[j])
            .sum();
        assert!((g.shared[j] - expect).abs() < 1e-6, "coord {j}");
    }
}

#[test]
fn median_and_trim_neutralise_a_minority_outlier() {
    // One attacker at λ=1000 among three honest clients: the robust rules
    // land on the honest scale, the weighted mean does not.
    let honest = vec![1.0f32; 4];
    let cohort = vec![
        outcome(0, honest.clone(), 10),
        outcome(1, honest.clone(), 10),
        outcome(2, honest, 10),
        outcome(3, vec![1000.0; 4], 10),
    ];
    for kind in [
        AggregatorKind::CoordinateMedian,
        AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.25 },
        AggregatorKind::NormClippedMean,
    ] {
        let cfg = FlConfig {
            aggregator: kind,
            ..FlConfig::new(Algorithm::FedAvg)
        };
        let mut g = empty_global(4);
        assert!(g.aggregate(&cfg, &cohort, 4));
        assert!(
            g.shared.iter().all(|&v| v.abs() < 10.0),
            "{} must bound the outlier's influence, got {:?}",
            kind.name(),
            g.shared
        );
    }
    let mut g = empty_global(4);
    assert!(g.aggregate(&FlConfig::new(Algorithm::FedAvg), &cohort, 4));
    assert!(
        g.shared.iter().all(|&v| v > 100.0),
        "the undefended mean must be dominated by the attacker"
    );
}

// ---------------------------------------------------------------------------
// Bit-identity regressions: defenses off ≡ the pre-defense code path.
// ---------------------------------------------------------------------------

#[test]
fn zero_fraction_adversary_replays_bit_identically() {
    // Toggling an AdversaryPlan with fraction 0 must not perturb training
    // randomness or aggregation in any way.
    let base = mini_cfg(Algorithm::FedAvg, 4, 2, 33);
    let mut with_plan = base;
    with_plan.adversary = Some(AdversaryPlan::default());
    assert_eq!(bits(&run(base, 33)), bits(&run(with_plan, 33)));
}

#[test]
fn screen_is_inert_on_an_honest_cohort() {
    // An honest cohort at these settings stays inside the tolerance band:
    // nothing is quarantined and the run replays bit-identically.
    let base = mini_cfg(Algorithm::FedAvg, 4, 2, 34);
    let mut screened = base;
    screened.screen = Some(ScreenPolicy::default());
    let a = run(base, 34);
    let b = run(screened, 34);
    assert_eq!(bits(&a), bits(&b));
    assert!(b.history.iter().all(|r| r.faults.quarantined == 0));
}

#[test]
fn seeded_adversarial_runs_replay_identically() {
    let mut cfg = mini_cfg(Algorithm::FedAvg, 4, 2, 35);
    cfg.adversary = Some(AdversaryPlan::with_attack(0.5, AttackKind::SignFlip));
    cfg.screen = Some(ScreenPolicy::default());
    cfg.aggregator = AggregatorKind::CoordinateMedian;
    let a = run(cfg, 35);
    let b = run(cfg, 35);
    assert_eq!(bits(&a), bits(&b));
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(ra.faults, rb.faults, "round {} ledger", ra.round);
        assert!(ra.faults.byzantine > 0, "the attack must actually fire");
    }
}

// ---------------------------------------------------------------------------
// Headline acceptance: defense keeps accuracy, no defense loses it.
// ---------------------------------------------------------------------------

#[test]
fn defended_run_survives_30pct_scale_attack_undefended_does_not() {
    let seed = 40;
    let n = 5; // fraction 0.3 → round(1.5) = 2 of 5 clients Byzantine
    let clean = run(mini_cfg(Algorithm::FedAvg, n, 4, seed), seed);

    let plan = AdversaryPlan::with_attack(0.3, AttackKind::ScaleAttack); // λ = 100
    let mut undefended = mini_cfg(Algorithm::FedAvg, n, 4, seed);
    undefended.adversary = Some(plan);
    let undefended = run(undefended, seed);

    let mut defended = mini_cfg(Algorithm::FedAvg, n, 4, seed);
    defended.adversary = Some(plan);
    defended.screen = Some(ScreenPolicy::default());
    defended.aggregator = AggregatorKind::CoordinateMedian;
    let defended = run(defended, seed);

    // Every Byzantine upload is on the ledger, and the screen caught each
    // one (λ=100 sits far outside the tolerance band) — reproducible from
    // the plan seed alone.
    for r in &defended.history {
        assert_eq!(r.faults.byzantine, 2, "round {}", r.round);
        assert_eq!(r.faults.quarantined, 2, "round {}", r.round);
        assert_eq!(r.faults.survivors, n - 2, "round {}", r.round);
    }

    let clean_acc = clean.final_acc();
    assert!(
        undefended.final_acc() < clean_acc - DEFENSE_TOLERANCE,
        "undefended weighted mean must collapse under λ=100 boosting: \
         clean {clean_acc:.3} vs undefended {:.3}",
        undefended.final_acc()
    );
    assert!(
        defended.final_acc() >= clean_acc - DEFENSE_TOLERANCE,
        "screen + coordinate median must hold within 5 points: \
         clean {clean_acc:.3} vs defended {:.3}",
        defended.final_acc()
    );
}

#[test]
fn nan_injection_is_quarantined_and_the_model_stays_finite() {
    let seed = 41;
    let mut cfg = mini_cfg(Algorithm::FedAvg, 4, 2, seed);
    cfg.adversary = Some(AdversaryPlan::with_attack(0.25, AttackKind::NanInjection));
    cfg.screen = Some(ScreenPolicy::default());
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 60, seed));
    let result = sim.run();
    for r in &result.history {
        assert_eq!(r.faults.byzantine, 1, "round {}", r.round);
        assert_eq!(r.faults.quarantined, 1, "round {}", r.round);
    }
    assert!(
        sim.global.shared.iter().all(|v| v.is_finite()),
        "one quarantined NaN upload must never reach the global model"
    );
}

#[test]
fn norm_clipping_alone_survives_nan_injection_without_a_screen() {
    // Regression (REVIEW): NormClippedMean used to "zero" non-finite
    // uploads by multiplying with 0.0, which IEEE arithmetic turns into
    // NaN — with no ScreenPolicy configured, one poisoned upload reached
    // the weighted mean and destroyed the global model. Dropping the
    // upload must keep the run finite with the clip as the only defense.
    let seed = 43;
    let mut cfg = mini_cfg(Algorithm::FedAvg, 4, 2, seed);
    cfg.adversary = Some(AdversaryPlan::with_attack(0.25, AttackKind::NanInjection));
    cfg.aggregator = AggregatorKind::NormClippedMean;
    assert!(cfg.screen.is_none(), "the clip must stand on its own");
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 60, seed));
    let result = sim.run();
    for r in &result.history {
        assert_eq!(r.faults.byzantine, 1, "round {}", r.round);
    }
    assert!(
        sim.global.shared.iter().all(|v| v.is_finite()),
        "an unscreened NaN upload must never poison the clipped mean"
    );
    assert!(sim.global.buffers.iter().all(|v| v.is_finite()));
}

#[test]
fn spatl_robust_aggregation_survives_sign_flip() {
    // SPATL's sparse channel-indexed uploads go through the per-index
    // robust path; with a Byzantine minority sign-flipping, the defended
    // run must stay finite and keep learning signal.
    let seed = 42;
    let mut cfg = mini_cfg(
        Algorithm::Spatl(spatl_fl::SpatlOptions::default()),
        4,
        2,
        seed,
    );
    cfg.adversary = Some(AdversaryPlan::with_attack(0.25, AttackKind::SignFlip));
    cfg.aggregator = AggregatorKind::CoordinateMedian;
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 60, seed));
    let result = sim.run();
    assert!(sim.global.shared.iter().all(|v| v.is_finite()));
    for r in &result.history {
        assert_eq!(r.faults.byzantine, 1, "round {}", r.round);
    }
}
