//! The quantized sparse server-side fold (DESIGN.md §13): FedAvg /
//! FedProx uploads travelling as top-k sparse or f16 frames are folded
//! by the streaming accumulator **without densifying to f32 first**.
//!
//! Guarantees checked here:
//!
//! 1. **Top-k fold bit-identity**: scatter-adding the k kept values is
//!    bit-identical to folding the zero-filled dense expansion — the
//!    exact fold skips zero terms, so the claim is exactness, not a
//!    tolerance.
//! 2. **f16 fold bit-identity**: decoding the raw half-precision
//!    payload coordinate-at-a-time folds bit-identically to densifying
//!    the upload first. The *quantization* loss happened on the client
//!    at encode time; the server-side fold adds nothing to it.
//! 3. **f16 error envelope**: round-to-nearest-even gives relative
//!    error ≤ 2⁻¹¹ for values in the f16 normal range and absolute
//!    error ≤ 2⁻²⁵ below it — the envelope DESIGN.md §13 documents.
//! 4. **Wire + accounting round trip**: encode → decode recovers the
//!    codec's exact sparse/quantized content, and the measured payload
//!    equals the analytic `CommModel` numbers byte for byte.
//! 5. **Spill equivalence**: cohort statistics (robust aggregators)
//!    densify explicitly and agree with pre-densified uploads.

use spatl_fl::{
    decode_upload, encode_upload, AggregatorKind, Algorithm, CommModel, CompressedDelta,
    FaultRecord, FlConfig, GlobalState, LocalOutcome, RoundDriver, UploadCodec, WireBytes,
};
use spatl_wire::f16::{f16_bits_to_f32, f32_to_f16_bits};
use spatl_wire::MsgType;

/// Deterministic splitmix64 value stream for cohort deltas.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }
}

fn cfg_with(codec: UploadCodec) -> FlConfig {
    let mut cfg = FlConfig::new(Algorithm::FedAvg);
    cfg.upload_codec = codec;
    cfg
}

/// A sealed FedAvg upload under `cfg`'s codec, with matching analytic
/// byte accounting (what `ClientState::local_update` produces).
fn sealed_outcome(cfg: &FlConfig, id: usize, n_samples: usize, delta: Vec<f32>) -> LocalOutcome {
    let p = delta.len();
    let bytes = match cfg.upload_codec {
        UploadCodec::Dense => CommModel::dense(p),
        UploadCodec::TopK { .. } => CommModel::dense_topk(p, cfg.upload_codec.kept(p)),
        UploadCodec::F16 => CommModel::dense_f16(p),
    };
    let mut o = LocalOutcome {
        client_id: id,
        n_samples,
        tau: 2,
        delta,
        selected: None,
        compressed: None,
        control_delta: None,
        velocity: None,
        buffers: Vec::new(),
        diverged: false,
        bytes,
        wire: WireBytes::default(),
        frames: Vec::new(),
        keep_ratio: 1.0,
        flops_ratio: 1.0,
    };
    let enc = encode_upload(cfg, &o);
    o.wire.upload_payload = enc.payload;
    o.wire.upload_framed = enc.framed();
    o.frames = enc.frames;
    o
}

fn random_cohort(cfg: &FlConfig, n: usize, p: usize, seed: u64) -> Vec<LocalOutcome> {
    let mut g = Gen(seed);
    (0..n)
        .map(|id| {
            let delta: Vec<f32> = (0..p).map(|_| g.f32(-0.5, 0.5)).collect();
            sealed_outcome(cfg, id, 10 + id * 7, delta)
        })
        .collect()
}

/// Decode each outcome's frames as the server would, then aggregate a
/// round through the driver's accumulator; returns the updated global.
fn aggregate_decoded(
    cfg: &FlConfig,
    cohort: &[LocalOutcome],
    p: usize,
    densify_first: bool,
) -> GlobalState {
    let global = GlobalState {
        shared: vec![0.125; p],
        control: Vec::new(),
        momentum: Vec::new(),
        buffers: Vec::new(),
    };
    let mut driver = RoundDriver::new(*cfg, global, None);
    let mut faults = FaultRecord::for_sample(cohort.len());
    let mut acc = driver.begin_accumulation();
    for o in cohort {
        let mut decoded = driver
            .decode_client_upload(o, &o.frames)
            .expect("sealed upload must decode");
        if densify_first {
            decoded.densify();
        }
        acc.fold(decoded);
    }
    let applied = driver.finish_accumulation(acc, &mut faults);
    assert!(applied, "cohort round must apply");
    let mut out = driver.global;
    out.shared.shrink_to_fit();
    out
}

fn assert_bits_equal(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (j, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "coordinate {j}: {x} vs {y} differ in bits"
        );
    }
}

#[test]
fn topk_stream_fold_is_bit_identical_to_densified_fold() {
    let p = 257;
    let cfg = cfg_with(UploadCodec::TopK { keep_ratio: 0.25 });
    let cohort = random_cohort(&cfg, 6, p, 0xA11CE);
    let streamed = aggregate_decoded(&cfg, &cohort, p, false);
    let densified = aggregate_decoded(&cfg, &cohort, p, true);
    assert_bits_equal(&streamed.shared, &densified.shared);
}

#[test]
fn f16_stream_fold_is_bit_identical_to_densified_fold() {
    let p = 193;
    let cfg = cfg_with(UploadCodec::F16);
    let cohort = random_cohort(&cfg, 5, p, 0xBEE5);
    let streamed = aggregate_decoded(&cfg, &cohort, p, false);
    let densified = aggregate_decoded(&cfg, &cohort, p, true);
    assert_bits_equal(&streamed.shared, &densified.shared);
}

#[test]
fn topk_fold_equals_dense_fold_of_truncated_delta() {
    // Folding the sparse upload must equal running the *dense* codec on
    // the client-side truncated delta — the compression is lossy, the
    // server fold is not.
    let p = 101;
    let sparse_cfg = cfg_with(UploadCodec::TopK { keep_ratio: 0.3 });
    let dense_cfg = cfg_with(UploadCodec::Dense);
    let cohort = random_cohort(&sparse_cfg, 4, p, 0x70CC);
    let truncated: Vec<LocalOutcome> = cohort
        .iter()
        .map(|o| {
            let decoded = decode_upload(&sparse_cfg, o, &o.frames, None, p).expect("decode");
            let dense = decoded.compressed.expect("top-k arrives compressed");
            sealed_outcome(&dense_cfg, o.client_id, o.n_samples, dense.to_dense())
        })
        .collect();
    let from_sparse = aggregate_decoded(&sparse_cfg, &cohort, p, false);
    let from_dense = aggregate_decoded(&dense_cfg, &truncated, p, false);
    assert_bits_equal(&from_sparse.shared, &from_dense.shared);
}

#[test]
fn f16_round_trip_error_envelope_holds() {
    // Normal range: RNE quantization error ≤ 2⁻¹¹ relative. Below the
    // f16 normal range (|x| < 2⁻¹⁴) the grid is absolute: ≤ 2⁻²⁵.
    let mut g = Gen(0xE17);
    for _ in 0..20_000 {
        let mag = g.f32(-14.0, 15.0); // exponent range of f16 normals
        let x = g.f32(-1.0, 1.0) * mag.exp2();
        let back = f16_bits_to_f32(f32_to_f16_bits(x));
        let err = (back - x).abs();
        if x.abs() >= f32::exp2(-14.0) && x.abs() <= 65504.0 {
            assert!(
                err <= x.abs() * f32::exp2(-11.0),
                "normal-range rel err violated: x={x}, back={back}"
            );
        } else if x.abs() < f32::exp2(-14.0) {
            assert!(
                err <= f32::exp2(-25.0),
                "subnormal abs err violated: x={x}, back={back}"
            );
        }
    }
    // Exactly representable values survive bit-for-bit.
    for x in [0.0f32, 1.0, -0.5, 0.25, 1.5, -2048.0] {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)).to_bits(), x.to_bits());
    }
}

#[test]
fn codec_payloads_match_comm_model_and_round_trip() {
    let p = 77;
    let mut g = Gen(0x5EA1);
    let delta: Vec<f32> = (0..p).map(|_| g.f32(-1.0, 1.0)).collect();

    // Top-k: payload is 8k, message tag SparseTopK, and the decoded
    // sparse content is exactly the k largest-magnitude entries.
    let cfg = cfg_with(UploadCodec::TopK { keep_ratio: 0.2 });
    let k = cfg.upload_codec.kept(p);
    let o = sealed_outcome(&cfg, 0, 10, delta.clone());
    assert_eq!(o.wire.upload_payload, 8 * k as u64);
    assert_eq!(o.wire.upload_payload, o.bytes.upload);
    let (msg, _) = spatl_wire::open(&o.frames[0]).expect("open");
    assert_eq!(msg, MsgType::SparseTopK);
    let decoded = decode_upload(&cfg, &o, &o.frames, None, p).expect("decode");
    assert!(decoded.delta.is_empty(), "sparse upload stays compressed");
    match decoded.compressed.expect("compressed") {
        CompressedDelta::TopK {
            dense_len,
            indices,
            values,
        } => {
            assert_eq!(dense_len, p);
            assert_eq!(indices.len(), k);
            let mut mags: Vec<f32> = delta.iter().map(|v| v.abs()).collect();
            mags.sort_by(f32::total_cmp);
            let threshold = mags[p - k];
            for (&i, &v) in indices.iter().zip(&values) {
                assert_eq!(v.to_bits(), delta[i as usize].to_bits());
                assert!(v.abs() >= threshold);
            }
        }
        other => panic!("expected top-k, got {other:?}"),
    }

    // f16: payload is 2p, tag QuantizedF16, content quantizes per-entry.
    let cfg = cfg_with(UploadCodec::F16);
    let o = sealed_outcome(&cfg, 0, 10, delta.clone());
    assert_eq!(o.wire.upload_payload, 2 * p as u64);
    assert_eq!(o.wire.upload_payload, o.bytes.upload);
    let (msg, _) = spatl_wire::open(&o.frames[0]).expect("open");
    assert_eq!(msg, MsgType::QuantizedF16);
    let decoded = decode_upload(&cfg, &o, &o.frames, None, p).expect("decode");
    let dense = decoded.compressed.expect("compressed").to_dense();
    for (x, q) in delta.iter().zip(&dense) {
        assert_eq!(q.to_bits(), f16_bits_to_f32(f32_to_f16_bits(*x)).to_bits());
    }
}

#[test]
fn compressed_upload_wrong_length_is_rejected() {
    let p = 32;
    for codec in [UploadCodec::TopK { keep_ratio: 0.5 }, UploadCodec::F16] {
        let cfg = cfg_with(codec);
        let o = sealed_outcome(&cfg, 0, 10, vec![0.1; p]);
        assert!(
            decode_upload(&cfg, &o, &o.frames, None, p + 1).is_err(),
            "{} upload with mismatched session length must be rejected",
            codec.name()
        );
    }
}

#[test]
fn spill_mode_densifies_and_matches_predensified_cohort() {
    // A robust aggregator forces the spill path, which must expand
    // compressed uploads before the batch statistic — identical to
    // handing it already-densified outcomes.
    let p = 64;
    for codec in [UploadCodec::TopK { keep_ratio: 0.4 }, UploadCodec::F16] {
        let mut cfg = cfg_with(codec);
        cfg.aggregator = AggregatorKind::CoordinateMedian;
        let cohort = random_cohort(&cfg, 5, p, 0x5111);
        let spilled = aggregate_decoded(&cfg, &cohort, p, false);
        let densified = aggregate_decoded(&cfg, &cohort, p, true);
        assert_bits_equal(&spilled.shared, &densified.shared);
    }
}
