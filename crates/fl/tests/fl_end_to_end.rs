//! End-to-end federated runs: every algorithm must actually learn on a
//! miniature Non-IID task, and communication accounting must hold.

use spatl_data::{dirichlet_partition, synth_cifar10, Dataset, SynthConfig};
use spatl_fl::{Algorithm, FlConfig, Simulation, SpatlOptions};
use spatl_models::{ModelConfig, ModelKind};
use spatl_tensor::TensorRng;

fn shards(n_clients: usize, per_client: usize, beta: f64, seed: u64) -> Vec<(Dataset, Dataset)> {
    let cfg = SynthConfig {
        noise_std: 0.4,
        ..SynthConfig::cifar10_like()
    };
    let total = n_clients * per_client;
    let data = synth_cifar10(&cfg, total, seed);
    let mut rng = TensorRng::seed_from(seed ^ 0xBEEF);
    let parts = dirichlet_partition(&data.labels, 10, n_clients, beta, &mut rng);
    parts
        .into_iter()
        .map(|idx| {
            let shard = data.subset(&idx);
            shard.split(0.75, &mut rng)
        })
        .collect()
}

fn mini_cfg(algorithm: Algorithm, rounds: usize, seed: u64) -> FlConfig {
    let mut cfg = FlConfig::new(algorithm);
    cfg.n_clients = 4;
    cfg.sample_ratio = 1.0;
    cfg.rounds = rounds;
    cfg.local_epochs = 2;
    cfg.batch_size = 16;
    cfg.lr = 0.05;
    cfg.seed = seed;
    cfg
}

fn run(algorithm: Algorithm, rounds: usize, seed: u64) -> spatl_fl::RunResult {
    let cfg = mini_cfg(algorithm, rounds, seed);
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(cfg.n_clients, 60, 0.5, seed));
    sim.run()
}

#[test]
fn fedavg_learns_above_chance() {
    let res = run(Algorithm::FedAvg, 6, 1);
    assert!(
        res.best_acc() > 0.25,
        "FedAvg best acc {} not above chance",
        res.best_acc()
    );
    assert_eq!(res.history.len(), 6);
}

#[test]
fn fedprox_learns_above_chance() {
    let res = run(Algorithm::FedProx { mu: 0.01 }, 6, 2);
    assert!(res.best_acc() > 0.25, "FedProx best acc {}", res.best_acc());
}

#[test]
fn scaffold_learns_above_chance() {
    let res = run(Algorithm::Scaffold, 6, 3);
    assert!(
        res.best_acc() > 0.25,
        "SCAFFOLD best acc {}",
        res.best_acc()
    );
}

#[test]
fn fednova_learns_above_chance() {
    let res = run(Algorithm::FedNova, 6, 4);
    assert!(res.best_acc() > 0.25, "FedNova best acc {}", res.best_acc());
}

#[test]
fn spatl_learns_above_chance_and_selects() {
    let res = run(Algorithm::Spatl(SpatlOptions::default()), 6, 5);
    assert!(res.best_acc() > 0.25, "SPATL best acc {}", res.best_acc());
    // Selection actually happened: uploads were sparse.
    let last = res.history.last().unwrap();
    assert!(
        last.mean_keep_ratio < 1.0,
        "keep ratio {}",
        last.mean_keep_ratio
    );
    assert!(
        last.mean_flops_ratio < 1.0,
        "flops ratio {}",
        last.mean_flops_ratio
    );
}

#[test]
fn spatl_per_round_bytes_below_scaffold() {
    let spatl = run(Algorithm::Spatl(SpatlOptions::default()), 2, 6);
    let scaffold = run(Algorithm::Scaffold, 2, 6);
    assert!(
        spatl.bytes_per_round_per_client < scaffold.bytes_per_round_per_client,
        "SPATL {} !< SCAFFOLD {}",
        spatl.bytes_per_round_per_client,
        scaffold.bytes_per_round_per_client
    );
}

#[test]
fn comm_accounting_is_cumulative_and_monotone() {
    let res = run(Algorithm::FedAvg, 4, 7);
    let mut prev = 0u64;
    for r in &res.history {
        assert!(r.cumulative_bytes > prev);
        assert_eq!(r.cumulative_bytes - prev, r.bytes.total());
        prev = r.cumulative_bytes;
    }
    // FedAvg: every participant moves exactly 2 × 4 bytes × |shared|.
    let model = ModelConfig::cifar(ModelKind::ResNet20).build();
    let p = model.num_params() as u64;
    assert_eq!(res.history[0].bytes.total(), 4 * (2 * 4 * p));
}

#[test]
fn partial_sampling_trains_subset_only() {
    let mut cfg = mini_cfg(Algorithm::FedAvg, 1, 8);
    cfg.n_clients = 6;
    cfg.sample_ratio = 0.5;
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(6, 40, 0.5, 8));
    sim.run_round();
    let participated = sim.clients.iter().filter(|c| c.participations > 0).count();
    assert_eq!(participated, 3);
}

#[test]
fn runs_are_deterministic_given_seed() {
    let a = run(Algorithm::FedAvg, 3, 9);
    let b = run(Algorithm::FedAvg, 3, 9);
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(ra.mean_acc, rb.mean_acc);
        assert_eq!(ra.cumulative_bytes, rb.cumulative_bytes);
    }
}

#[test]
fn spatl_predictors_diverge_across_clients() {
    let cfg = mini_cfg(Algorithm::Spatl(SpatlOptions::default()), 2, 10);
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, shards(4, 40, 0.3, 10));
    sim.run();
    // Heterogeneous predictors: clients' heads differ after training.
    let p0 = sim.clients[0].model.predictor.to_flat();
    let p1 = sim.clients[1].model.predictor.to_flat();
    assert_ne!(
        p0, p1,
        "predictors should be client-specific under transfer"
    );
    // Encoders agree with the global (after final sync in evaluate_all).
    let e0 = sim.clients[0].model.encoder.to_flat();
    let e1 = sim.clients[1].model.encoder.to_flat();
    assert_eq!(e0, e1, "encoders must be the shared global copy");
}

#[test]
fn single_class_clients_do_not_crash() {
    // Failure injection: extreme skew gives some clients a single class.
    let cfg = SynthConfig::cifar10_like();
    let data = synth_cifar10(&cfg, 120, 11);
    let mut rng = TensorRng::seed_from(11);
    let parts = dirichlet_partition(&data.labels, 10, 4, 0.05, &mut rng);
    let shards: Vec<(Dataset, Dataset)> = parts
        .into_iter()
        .map(|idx| {
            let s = data.subset(&idx);
            let n = s.len();
            // Tiny val split; may contain one class only.
            (
                s.subset(&(0..n.max(1) - 1).collect::<Vec<_>>()),
                s.subset(&[n - 1]),
            )
        })
        .collect();
    let mut fl = mini_cfg(Algorithm::FedAvg, 1, 11);
    fl.n_clients = 4;
    let mut sim = Simulation::new(fl, ModelConfig::cifar(ModelKind::ResNet20), shards);
    let rec = sim.run_round();
    assert!(rec.mean_acc.is_finite());
}
