//! Property tests for the streaming round accumulator (DESIGN.md §12).
//!
//! The concurrent coordinator folds uploads into [`RoundAccumulator`] in
//! whatever order decode workers finish them, so the accumulator carries
//! the repo's determinism contract on its back. Four guarantees, checked
//! over randomized cohorts covering all five algorithms (SCAFFOLD
//! control deltas, FedNova velocities, SPATL sparse selections and
//! batch-norm buffers included):
//!
//! 1. **Permutation invariance of the stream fold**: with the exact
//!    aggregator (`WeightedMean`, no screen) the accumulator streams,
//!    and any permutation of the arrival order finalizes to a
//!    bit-identical global state and ledger — not bounded-ε: the carry-
//!    save integer sums make the fold exactly commutative.
//! 2. **Worker-interleaving invariance**: arrival orders produced by a
//!    pool of decode workers (per-worker FIFO, random cross-worker
//!    scheduling) are a subset of permutations, but they are the orders
//!    the coordinator actually generates — checked separately so a
//!    future non-commutative "optimisation" keyed on worker locality
//!    cannot slip through.
//! 3. **Spill determinism**: robust aggregators and screened rounds
//!    buffer, then slot by client id before folding — so arrival order
//!    cannot change the result there either, bit for bit (stronger than
//!    the bounded-ε the contract minimally requires).
//! 4. **Screening equivalence**: a screened round's stage-2 median-RMS
//!    quarantine decisions (the full fault ledger, event for event) and
//!    the post-aggregation global are identical between the buffered
//!    accumulator fed in any order and the historic batch path
//!    (`screen_updates` + `aggregate` over the ascending cohort), on
//!    adversarial cohorts carrying scale attacks and non-finite uploads.

use proptest::prelude::*;
use spatl_fl::{
    screen_updates, AggregatorKind, Algorithm, CommModel, FaultRecord, FlConfig, GlobalState,
    LocalOutcome, RoundDriver, ScreenPolicy, SelectedUpdate, SpatlOptions, SpillReason, WireBytes,
};

/// Deterministic splitmix64 stream: the vendored proptest stub has no
/// combinator strategies, so each case draws shape scalars plus one seed
/// and derives the cohort from this generator.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Fisher–Yates shuffle driven by this stream.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

fn algorithms() -> [Algorithm; 5] {
    [
        Algorithm::FedAvg,
        Algorithm::FedProx { mu: 0.01 },
        Algorithm::Scaffold,
        Algorithm::FedNova,
        Algorithm::Spatl(SpatlOptions::default()),
    ]
}

struct Case {
    cfg: FlConfig,
    global: GlobalState,
    cohort: Vec<LocalOutcome>,
}

/// Build one randomized case: global state of `p` shared and `b` buffer
/// coordinates, and `n` client outcomes exercising every optional field
/// the stream fold branches on — divergence riders, explicit SCAFFOLD
/// control deltas next to the server-side fallback, present and absent
/// FedNova velocities, sparse and dense SPATL uploads, short and full
/// batch-norm vectors, and sample weights spanning five orders of
/// magnitude (the carry-save sums must not care).
fn build_case(seed: u64, algorithm: Algorithm, aggregator: AggregatorKind) -> Case {
    let mut g = Gen(seed);
    let p = 2 + g.below(4);
    let n = 5 + g.below(6);
    let b = g.below(3);

    let mut cohort = Vec::with_capacity(n);
    for id in 0..n {
        let delta: Vec<f32> = (0..p).map(|_| g.f32(-1.0, 1.0)).collect();
        let selected = if g.chance(0.6) {
            let indices: Vec<u32> = (0..p as u32).filter(|_| g.chance(0.6)).collect();
            let values = indices.iter().map(|&i| delta[i as usize] * 0.5).collect();
            Some(SelectedUpdate {
                channels: indices.len(),
                channel_ids: Vec::new(),
                indices,
                values,
            })
        } else {
            None
        };
        let n_samples = if g.chance(0.2) {
            // A hospital-sized shard next to phone-sized ones: the f32
            // batch fold loses low bits here; the integer fold must not.
            100_000 + g.below(900_000)
        } else {
            1 + g.below(40)
        };
        cohort.push(LocalOutcome {
            client_id: id,
            n_samples,
            tau: 1 + g.below(30),
            selected,
            compressed: None,
            control_delta: if g.chance(0.5) {
                Some((0..p).map(|_| g.f32(-1.0, 1.0)).collect())
            } else {
                None
            },
            velocity: if g.chance(0.5) {
                Some((0..p).map(|_| g.f32(-1.0, 1.0)).collect())
            } else {
                None
            },
            buffers: if g.chance(0.8) {
                (0..b).map(|j| 0.1 * (id + j) as f32).collect()
            } else {
                Vec::new()
            },
            diverged: g.chance(0.15),
            delta,
            bytes: CommModel::dense(0),
            wire: WireBytes::default(),
            frames: Vec::new(),
            keep_ratio: 1.0,
            flops_ratio: 1.0,
        });
    }

    let mut cfg = FlConfig::new(algorithm);
    cfg.n_clients = n;
    cfg.aggregator = aggregator;
    Case {
        cfg,
        global: GlobalState {
            shared: (0..p).map(|_| g.f32(-1.0, 1.0)).collect(),
            control: (0..p).map(|_| g.f32(-0.5, 0.5)).collect(),
            momentum: Vec::new(),
            buffers: (0..b).map(|_| g.f32(0.0, 1.0)).collect(),
        },
        cohort,
    }
}

fn assert_bits_equal(a: &[f32], c: &[f32], what: &str) {
    assert_eq!(a.len(), c.len(), "{what}: length");
    for (j, (x, y)) in a.iter().zip(c).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{j}]: {x} vs {y}");
    }
}

fn assert_state_bits_equal(a: &GlobalState, c: &GlobalState) {
    assert_bits_equal(&a.shared, &c.shared, "shared");
    assert_bits_equal(&a.control, &c.control, "control");
    assert_bits_equal(&a.momentum, &c.momentum, "momentum");
    assert_bits_equal(&a.buffers, &c.buffers, "buffers");
}

/// Run one full accumulation round — fresh driver, uploads folded in
/// exactly the order given — and return the post-round global state,
/// whether an update was applied, and the fault ledger.
fn fold_in_order(
    cfg: &FlConfig,
    global: &GlobalState,
    order: &[LocalOutcome],
) -> (GlobalState, bool, FaultRecord) {
    let mut driver = RoundDriver::new(*cfg, global.clone(), None);
    let mut faults = FaultRecord::for_sample(order.len());
    let mut acc = driver.begin_accumulation();
    for o in order {
        acc.fold(o.clone());
    }
    let applied = driver.finish_accumulation(acc, &mut faults);
    (driver.global, applied, faults)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Guarantee 1: streaming-mode finalize is bit-identical under any
    /// permutation of the arrival order, for every algorithm.
    #[test]
    fn stream_fold_is_permutation_invariant(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        perm_seed in 0u64..u64::MAX,
    ) {
        let case = build_case(seed, algorithms()[alg_idx], AggregatorKind::WeightedMean);

        // This configuration must stream: the whole point is O(model).
        let driver = RoundDriver::new(case.cfg, case.global.clone(), None);
        prop_assert_eq!(driver.begin_accumulation().spill_reason(), None);

        let (reference, applied_ref, faults_ref) =
            fold_in_order(&case.cfg, &case.global, &case.cohort);

        let mut g = Gen(perm_seed);
        for _ in 0..3 {
            let mut order = case.cohort.clone();
            g.shuffle(&mut order);
            let (state, applied, faults) = fold_in_order(&case.cfg, &case.global, &order);
            prop_assert_eq!(applied, applied_ref);
            prop_assert_eq!(&faults, &faults_ref);
            assert_state_bits_equal(&state, &reference);
        }
    }

    /// Guarantee 2: the arrival orders a decode worker pool actually
    /// produces — per-worker FIFO queues drained by a random scheduler —
    /// finalize bit-identically to the ascending-id fold.
    #[test]
    fn worker_interleavings_are_bit_identical(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        workers in 1usize..5,
        sched_seed in 0u64..u64::MAX,
    ) {
        let case = build_case(seed, algorithms()[alg_idx], AggregatorKind::WeightedMean);
        let (reference, applied_ref, faults_ref) =
            fold_in_order(&case.cfg, &case.global, &case.cohort);

        let mut g = Gen(sched_seed);
        // Deal uploads round-robin onto worker queues, then drain by
        // picking a random non-empty queue each step: every upload keeps
        // its position relative to queue-mates (a worker decodes its
        // jobs in order) while cross-worker completion order is free.
        let mut queues: Vec<std::collections::VecDeque<LocalOutcome>> =
            (0..workers).map(|_| Default::default()).collect();
        for (i, o) in case.cohort.iter().enumerate() {
            queues[i % workers].push_back(o.clone());
        }
        let mut order = Vec::with_capacity(case.cohort.len());
        while order.len() < case.cohort.len() {
            let k = g.below(workers);
            if let Some(o) = queues[k].pop_front() {
                order.push(o);
            }
        }

        let (state, applied, faults) = fold_in_order(&case.cfg, &case.global, &order);
        prop_assert_eq!(applied, applied_ref);
        prop_assert_eq!(&faults, &faults_ref);
        assert_state_bits_equal(&state, &reference);
    }

    /// Guarantee 3: robust aggregators spill, and the sorted spill makes
    /// them arrival-order independent too — bit-identical, not just
    /// bounded-ε.
    #[test]
    fn buffered_spill_is_arrival_order_independent(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        agg_idx in 0usize..3,
        perm_seed in 0u64..u64::MAX,
    ) {
        let aggregator = [
            AggregatorKind::NormClippedMean,
            AggregatorKind::CoordinateMedian,
            AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.2 },
        ][agg_idx];
        let case = build_case(seed, algorithms()[alg_idx], aggregator);

        let driver = RoundDriver::new(case.cfg, case.global.clone(), None);
        prop_assert_eq!(
            driver.begin_accumulation().spill_reason(),
            Some(SpillReason::RobustAggregator)
        );

        let (reference, applied_ref, faults_ref) =
            fold_in_order(&case.cfg, &case.global, &case.cohort);

        let mut g = Gen(perm_seed);
        let mut order = case.cohort.clone();
        g.shuffle(&mut order);
        let (state, applied, faults) = fold_in_order(&case.cfg, &case.global, &order);
        prop_assert_eq!(applied, applied_ref);
        prop_assert_eq!(&faults, &faults_ref);
        assert_state_bits_equal(&state, &reference);
    }

    /// Guarantee 4: a screened round quarantines the same clients for
    /// the same reasons whatever the arrival order, and matches the
    /// historic batch path (`screen_updates` + `aggregate`, ascending)
    /// event for event — on a cohort carrying a ×100 scale attacker and
    /// a non-finite upload that *claims* to be healthy.
    #[test]
    fn screened_rounds_quarantine_identically_in_any_order(
        seed in 0u64..u64::MAX,
        alg_idx in 0usize..5,
        perm_seed in 0u64..u64::MAX,
    ) {
        let mut case = build_case(seed, algorithms()[alg_idx], AggregatorKind::WeightedMean);
        case.cfg.screen = Some(ScreenPolicy::default());

        // Mirror AdversaryPlan's attack shapes by hand so the screen has
        // something to catch. Client 0: scale attack — every uploaded
        // vector inflated ×100, well past the 4× median-RMS tolerance.
        {
            let o = &mut case.cohort[0];
            o.diverged = false;
            for v in &mut o.delta {
                *v *= 100.0;
            }
            if let Some(sel) = &mut o.selected {
                for v in &mut sel.values {
                    *v *= 100.0;
                }
            }
            if let Some(cd) = &mut o.control_delta {
                for v in &mut cd.iter_mut() {
                    *v *= 100.0;
                }
            }
        }
        // Client 1: non-finite poison that does not self-report — the
        // stage-1 finiteness screen, not the diverged flag, must act.
        {
            let o = &mut case.cohort[1];
            o.diverged = false;
            o.delta[0] = f32::NAN;
            if let Some(sel) = &mut o.selected {
                if let Some(v) = sel.values.first_mut() {
                    *v = f32::NAN;
                }
            }
        }

        let driver = RoundDriver::new(case.cfg, case.global.clone(), None);
        prop_assert_eq!(
            driver.begin_accumulation().spill_reason(),
            Some(SpillReason::Screening)
        );

        // Historic batch path over the ascending cohort: the reference
        // the buffered accumulator must reproduce exactly.
        let policy = case.cfg.screen.as_ref().unwrap();
        let mut batch_faults = FaultRecord::for_sample(case.cohort.len());
        let survivors = screen_updates(policy, case.cohort.clone(), &mut batch_faults);
        let mut batch_global = case.global.clone();
        let applied_batch =
            batch_global.aggregate(&case.cfg, &survivors, case.cfg.n_clients);

        let mut g = Gen(perm_seed);
        for _ in 0..3 {
            let mut order = case.cohort.clone();
            g.shuffle(&mut order);
            let (state, applied, faults) = fold_in_order(&case.cfg, &case.global, &order);
            prop_assert_eq!(applied, applied_batch);
            prop_assert_eq!(&faults.events, &batch_faults.events);
            prop_assert_eq!(faults.quarantined, batch_faults.quarantined);
            prop_assert_eq!(faults.survivors, survivors.len());
            assert_state_bits_equal(&state, &batch_global);
        }
    }
}

/// The accumulator's mode is a pure function of the run configuration:
/// stream when the exact aggregator runs unscreened, spill otherwise —
/// and a configured screen takes precedence in the reason it reports.
#[test]
fn accumulator_mode_tracks_configuration() {
    let case = build_case(7, Algorithm::FedAvg, AggregatorKind::WeightedMean);

    let driver = RoundDriver::new(case.cfg, case.global.clone(), None);
    assert_eq!(driver.begin_accumulation().spill_reason(), None);

    let mut screened = case.cfg;
    screened.screen = Some(ScreenPolicy::default());
    let driver = RoundDriver::new(screened, case.global.clone(), None);
    assert_eq!(
        driver.begin_accumulation().spill_reason(),
        Some(SpillReason::Screening)
    );

    let mut robust = case.cfg;
    robust.aggregator = AggregatorKind::CoordinateMedian;
    let driver = RoundDriver::new(robust, case.global.clone(), None);
    assert_eq!(
        driver.begin_accumulation().spill_reason(),
        Some(SpillReason::RobustAggregator)
    );

    // Screen + robust aggregator: the screen is why the round buffers
    // (the robust fold would have buffered anyway).
    let mut both = robust;
    both.screen = Some(ScreenPolicy::default());
    let driver = RoundDriver::new(both, case.global.clone(), None);
    assert_eq!(
        driver.begin_accumulation().spill_reason(),
        Some(SpillReason::Screening)
    );
}

/// Empty and all-diverged rounds are honest no-ops: nothing applied,
/// `no_op` ledgered, the global state untouched bit for bit.
#[test]
fn empty_and_all_diverged_rounds_are_no_ops() {
    for alg in algorithms() {
        let mut case = build_case(11, alg, AggregatorKind::WeightedMean);

        let (state, applied, faults) = fold_in_order(&case.cfg, &case.global, &[]);
        assert!(!applied, "{}: empty round applied", alg.name());
        assert!(faults.no_op);
        assert_state_bits_equal(&state, &case.global);

        for o in &mut case.cohort {
            o.diverged = true;
        }
        let (state, applied, faults) = fold_in_order(&case.cfg, &case.global, &case.cohort);
        assert!(!applied, "{}: all-diverged round applied", alg.name());
        assert!(faults.no_op);
        assert_state_bits_equal(&state, &case.global);
    }
}
