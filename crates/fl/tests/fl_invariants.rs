//! Invariant and failure-injection tests for the FL machinery.

use spatl_data::{synth_cifar10, Dataset, SynthConfig};
use spatl_fl::{
    Algorithm, ClientState, CommModel, FlConfig, GlobalState, Simulation, SpatlOptions,
};
use spatl_models::{ModelConfig, ModelKind};
use spatl_tensor::TensorRng;

fn tiny_shards(n: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    let cfg = SynthConfig {
        noise_std: 0.5,
        ..SynthConfig::cifar10_like()
    };
    let mut rng = TensorRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let d = synth_cifar10(&cfg, 30, seed * 100 + i as u64);
            d.split(0.7, &mut rng)
        })
        .collect()
}

fn tiny_cfg(alg: Algorithm, n: usize, seed: u64) -> FlConfig {
    let mut cfg = FlConfig::new(alg);
    cfg.n_clients = n;
    cfg.rounds = 2;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.seed = seed;
    cfg
}

#[test]
fn spatl_aggregation_never_touches_unselected_weights() {
    // Freeze a snapshot; after one SPATL round, every index NOT selected by
    // any client must be bit-identical to the snapshot.
    let cfg = tiny_cfg(Algorithm::Spatl(SpatlOptions::default()), 3, 1);
    let mut sim = Simulation::new(
        cfg,
        ModelConfig::cifar(ModelKind::ResNet20),
        tiny_shards(3, 1),
    );
    let before = sim.global.shared.clone();

    // Collect the union of selected indices by running the round manually.
    let round_cfg = sim.cfg;
    let global_snapshot = sim.global.clone();
    let outcomes: Vec<_> = sim
        .clients
        .iter_mut()
        .map(|c| c.local_update(&round_cfg, &global_snapshot, 0))
        .collect();
    let mut touched = vec![false; before.len()];
    for o in &outcomes {
        let sel = o.selected.as_ref().expect("spatl selects");
        for &i in &sel.indices {
            touched[i as usize] = true;
        }
    }
    sim.global.aggregate(&round_cfg, &outcomes, 3);
    let mut untouched_checked = 0usize;
    for (j, (&b, &a)) in before.iter().zip(&sim.global.shared).enumerate() {
        if !touched[j] {
            assert_eq!(a, b, "unselected index {j} changed");
            untouched_checked += 1;
        }
    }
    assert!(untouched_checked > 0, "selection was dense — test vacuous");
}

#[test]
fn nan_injection_is_rejected_and_server_stays_finite() {
    let cfg = tiny_cfg(Algorithm::FedAvg, 2, 2);
    let model_cfg = ModelConfig::cifar(ModelKind::ResNet20);
    let mut sim = Simulation::new(cfg, model_cfg, tiny_shards(2, 2));
    // Poison client 0's model so its delta is non-finite.
    {
        let c = &mut sim.clients[0];
        let mut flat = c.model.encoder.to_flat();
        flat[0] = f32::NAN;
        c.model.encoder.from_flat(&flat);
    }
    // Manually run the round against the *current* global so the poisoned
    // weights are not overwritten by the download sync... the download
    // overwrites the model, so poison the global control path instead:
    // inject a NaN delta directly through aggregate.
    let round_cfg = sim.cfg;
    let global = sim.global.clone();
    let mut outcomes: Vec<_> = sim
        .clients
        .iter_mut()
        .map(|c| c.local_update(&round_cfg, &global, 0))
        .collect();
    outcomes[0].delta[7] = f32::NAN;
    outcomes[0].diverged = true;
    sim.global.aggregate(&round_cfg, &outcomes, 2);
    assert!(sim.global.shared.iter().all(|v| v.is_finite()));
}

#[test]
fn fednova_handles_heterogeneous_local_steps() {
    // Clients with very different shard sizes take different numbers of
    // local steps; FedNova must still aggregate stably.
    let cfg = SynthConfig {
        noise_std: 0.5,
        ..SynthConfig::cifar10_like()
    };
    let mut rng = TensorRng::seed_from(3);
    let shards: Vec<(Dataset, Dataset)> = [20usize, 80]
        .iter()
        .map(|&n| synth_cifar10(&cfg, n, 77 + n as u64).split(0.7, &mut rng))
        .collect();
    let fl = tiny_cfg(Algorithm::FedNova, 2, 3);
    let mut sim = Simulation::new(fl, ModelConfig::cifar(ModelKind::ResNet20), shards);
    let global = sim.global.clone();
    let round_cfg = sim.cfg;
    let outcomes: Vec<_> = sim
        .clients
        .iter_mut()
        .map(|c| c.local_update(&round_cfg, &global, 0))
        .collect();
    assert_ne!(outcomes[0].tau, outcomes[1].tau, "taus should differ");
    sim.global.aggregate(&round_cfg, &outcomes, 2);
    assert!(sim.global.shared.iter().all(|v| v.is_finite()));
}

#[test]
fn comm_model_matches_recorded_bytes_for_all_algorithms() {
    for (alg, seed) in [
        (Algorithm::FedAvg, 10u64),
        (Algorithm::FedProx { mu: 0.01 }, 11),
        (Algorithm::Scaffold, 12),
        (Algorithm::FedNova, 13),
    ] {
        let cfg = tiny_cfg(alg, 2, seed);
        let mut sim = Simulation::new(
            cfg,
            ModelConfig::cifar(ModelKind::ResNet20),
            tiny_shards(2, seed),
        );
        let rec = sim.run_round();
        let p = sim.global.shared.len();
        let expect = match alg {
            Algorithm::FedAvg | Algorithm::FedProx { .. } => CommModel::dense(p),
            Algorithm::Scaffold => CommModel::scaffold(p),
            Algorithm::FedNova => CommModel::fednova(p),
            _ => unreachable!(),
        };
        assert_eq!(rec.bytes.total(), 2 * expect.total(), "{}", alg.name());
    }
}

#[test]
fn client_with_empty_validation_set_reports_zero_accuracy() {
    let cfg = SynthConfig::cifar10_like();
    let data = synth_cifar10(&cfg, 20, 5);
    let empty = data.subset(&[]);
    let model = ModelConfig::cifar(ModelKind::ResNet20).build();
    let mut client = ClientState::new(0, data, empty, model);
    assert_eq!(client.evaluate(), 0.0);
}

#[test]
fn global_state_matches_algorithm_shape() {
    let model = ModelConfig::cifar(ModelKind::ResNet20).build();
    let enc = model.encoder.num_params();
    let all = model.num_params();

    let g = GlobalState::from_model(&model, &Algorithm::FedAvg);
    assert_eq!(g.shared.len(), all);
    assert!(g.control.is_empty());

    let g = GlobalState::from_model(&model, &Algorithm::Scaffold);
    assert_eq!(g.shared.len(), all);
    assert_eq!(g.control.len(), all);

    let g = GlobalState::from_model(&model, &Algorithm::Spatl(SpatlOptions::default()));
    assert_eq!(g.shared.len(), enc);
    assert_eq!(g.control.len(), enc);

    let no_gc = SpatlOptions {
        gradient_control: false,
        ..Default::default()
    };
    let g = GlobalState::from_model(&model, &Algorithm::Spatl(no_gc));
    assert!(g.control.is_empty());
}

#[test]
fn deployment_reselection_meets_budget_and_is_idempotent() {
    let cfg = tiny_cfg(Algorithm::Spatl(SpatlOptions::default()), 2, 6);
    let mut sim = Simulation::new(
        cfg,
        ModelConfig::cifar(ModelKind::ResNet20),
        tiny_shards(2, 6),
    );
    sim.run();
    let c = &mut sim.clients[0];
    c.select_for_deployment(0.7);
    let r1 = c.model.flops() as f32 / c.model.flops_dense() as f32;
    assert!(r1 <= 0.72, "budget missed: {r1}");
    c.select_for_deployment(0.7);
    let r2 = c.model.flops() as f32 / c.model.flops_dense() as f32;
    assert!(
        (r1 - r2).abs() < 1e-6,
        "reselection not idempotent: {r1} vs {r2}"
    );
}

#[test]
fn per_client_flops_budgets_are_respected() {
    // Resource heterogeneity: a weak device (tight budget) must end up with
    // a smaller deployed model than a strong one, within one federation.
    let cfg = tiny_cfg(Algorithm::Spatl(SpatlOptions::default()), 2, 42);
    let mut sim = Simulation::new(
        cfg,
        ModelConfig::cifar(ModelKind::ResNet20),
        tiny_shards(2, 42),
    );
    sim.set_client_budgets(&[0.5, 0.95]);
    sim.run();
    let r0 = {
        let c = &mut sim.clients[0];
        c.select_for_deployment(c.flops_budget.unwrap());
        c.model.flops() as f32 / c.model.flops_dense() as f32
    };
    let r1 = {
        let c = &mut sim.clients[1];
        c.select_for_deployment(c.flops_budget.unwrap());
        c.model.flops() as f32 / c.model.flops_dense() as f32
    };
    assert!(r0 <= 0.52, "tight budget violated: {r0}");
    assert!(r1 > r0, "strong device should keep more: {r1} vs {r0}");
}

#[test]
fn finalize_adapts_only_never_sampled_clients() {
    let mut cfg = tiny_cfg(Algorithm::Spatl(SpatlOptions::default()), 4, 77);
    cfg.sample_ratio = 0.5; // two of four clients participate per round
    cfg.rounds = 1;
    let mut sim = Simulation::new(
        cfg,
        ModelConfig::cifar(ModelKind::ResNet20),
        tiny_shards(4, 77),
    );
    sim.run_round();
    let heads_before: Vec<Vec<f32>> = sim
        .clients
        .iter()
        .map(|c| c.model.predictor.to_flat())
        .collect();
    let participated: Vec<bool> = sim.clients.iter().map(|c| c.participations > 0).collect();
    assert!(participated.iter().any(|&p| p) && participated.iter().any(|&p| !p));
    let accs = sim.finalize(2);
    assert_eq!(accs.len(), 4);
    for (i, c) in sim.clients.iter().enumerate() {
        let head_changed = c.model.predictor.to_flat() != heads_before[i];
        assert_eq!(
            head_changed, !participated[i],
            "client {i}: participated={} head_changed={head_changed}",
            participated[i]
        );
    }
}
