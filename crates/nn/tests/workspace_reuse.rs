//! Workspace-reuse guarantees: the pooled-scratch execution path must be
//! bit-identical to the allocating path, and a warmed-up network must run
//! its steady-state forward/backward without touching the heap.

use spatl_nn::{
    AvgPool2d, BasicBlock, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d,
    Network, Node, Relu,
};
use spatl_tensor::{Tensor, TensorRng};

/// A small but representative network touching every layer kind that draws
/// from the workspace: conv, batch-norm, relu, max/avg/global pooling, a
/// residual block, dropout, flatten, and linear.
fn build_net(seed: u64) -> Network {
    let mut rng = TensorRng::seed_from(seed);
    Network::new(vec![
        Node::Conv(Conv2d::new(3, 8, 3, 1, 1, &mut rng)),
        Node::BatchNorm(BatchNorm2d::new(8)),
        Node::Relu(Relu::new()),
        Node::MaxPool(MaxPool2d::new(2, 2)),
        Node::Residual(Box::new(BasicBlock::new(8, 16, 2, &mut rng))),
        Node::AvgPool(AvgPool2d::new(2, 2)),
        Node::GlobalAvgPool(GlobalAvgPool::new()),
        Node::Flatten(Flatten::new()),
        Node::Dropout(Dropout::new(0.25, 7)),
        Node::Linear(Linear::new(16, 10, &mut rng)),
    ])
}

fn input_batch(seed: u64) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(seed);
    let x = rng.normal_tensor([4, 3, 16, 16], 0.0, 1.0);
    let g = rng.normal_tensor([4, 10], 0.0, 1.0);
    (x, g)
}

/// The persistent-workspace path (`Network::forward`/`backward`, scratch
/// pooled across iterations) must produce bit-identical activations and
/// gradients to the allocating path (per-node `forward`/`backward`, which
/// build a throwaway workspace each call).
#[test]
fn pooled_path_is_bit_identical_to_allocating_path() {
    let mut pooled = build_net(42);
    let mut fresh = build_net(42);
    for iter in 0..4 {
        let (x, gy) = input_batch(100 + iter);

        let y_pooled = pooled.forward(&x, true);
        let gx_pooled = pooled.backward(&gy);

        // Allocating reference: chain the same nodes by hand; each call to
        // `Node::forward`/`backward` creates its own temporary workspace.
        let mut cur = x.clone();
        for node in fresh.nodes.iter_mut() {
            cur = node.forward(&cur, true);
        }
        let y_fresh = cur;
        let mut grad = gy.clone();
        for node in fresh.nodes.iter_mut().rev() {
            grad = node.backward(&grad);
        }
        let gx_fresh = grad;

        assert_eq!(
            y_pooled.data(),
            y_fresh.data(),
            "forward outputs diverged at iteration {iter}"
        );
        assert_eq!(
            gx_pooled.data(),
            gx_fresh.data(),
            "input gradients diverged at iteration {iter}"
        );
        assert_eq!(
            pooled.grads_flat(),
            fresh.grads_flat(),
            "parameter gradients diverged at iteration {iter}"
        );

        pooled.recycle(y_pooled);
        pooled.recycle(gx_pooled);
        pooled.zero_grad();
        fresh.zero_grad();
    }
}

/// After a few warm-up iterations the workspace pool has seen every buffer
/// size the network needs: further forward/backward passes must be served
/// entirely from the pool — zero fresh allocations, zero grows. (Pooled
/// capacities converge monotonically; a buffer grown for one demand
/// serves a bigger one next iteration, so fixpoint takes a few rounds,
/// not one.)
#[test]
fn steady_state_training_step_is_allocation_free() {
    let mut net = build_net(7);
    let (x, gy) = input_batch(3);

    for _ in 0..4 {
        let y = net.forward(&x, true);
        net.recycle(y);
        let gx = net.backward(&gy);
        net.recycle(gx);
    }

    let warm = net.workspace_stats();
    assert!(warm.checkouts > 0, "workspace was never used");

    for _ in 0..5 {
        let y = net.forward(&x, true);
        net.recycle(y);
        let gx = net.backward(&gy);
        net.recycle(gx);
    }

    let steady = net.workspace_stats();
    assert_eq!(
        steady.fresh_allocs, warm.fresh_allocs,
        "steady-state pass allocated fresh buffers"
    );
    assert_eq!(
        steady.grows, warm.grows,
        "steady-state pass grew pooled buffers"
    );
    assert!(
        steady.checkouts > warm.checkouts,
        "steady-state passes did not draw from the workspace"
    );
    assert_eq!(
        steady.high_water_elements, warm.high_water_elements,
        "steady-state pass raised the high-water mark"
    );
}

/// Eval-mode inference must also settle into an allocation-free steady
/// state (no caches are stored, so the pool reaches fixpoint immediately
/// after the first pass).
#[test]
fn steady_state_inference_is_allocation_free() {
    let mut net = build_net(9);
    let (x, _) = input_batch(11);

    for _ in 0..4 {
        let y = net.forward(&x, false);
        net.recycle(y);
    }
    let warm = net.workspace_stats();

    for _ in 0..5 {
        let y = net.forward(&x, false);
        net.recycle(y);
    }
    let steady = net.workspace_stats();
    assert_eq!(steady.fresh_allocs, warm.fresh_allocs);
    assert_eq!(steady.grows, warm.grows);
}
