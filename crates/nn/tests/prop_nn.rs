//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use spatl_nn::{Adam, Conv2d, Linear, Network, Node, Optimizer, Relu, Sgd};
use spatl_tensor::{Tensor, TensorRng};

fn small_mlp(inputs: usize, hidden: usize, outputs: usize, seed: u64) -> Network {
    let mut rng = TensorRng::seed_from(seed);
    Network::new(vec![
        Node::Linear(Linear::new(inputs, hidden, &mut rng)),
        Node::Relu(Relu::new()),
        Node::Linear(Linear::new(hidden, outputs, &mut rng)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flat round trip is the identity for arbitrary MLP shapes.
    #[test]
    fn flat_round_trip(inputs in 1usize..8, hidden in 1usize..8, outputs in 1usize..5, seed in 0u64..500) {
        let mut net = small_mlp(inputs, hidden, outputs, seed);
        let flat = net.to_flat();
        prop_assert_eq!(flat.len(), net.num_params());
        net.from_flat(&flat);
        prop_assert_eq!(net.to_flat(), flat);
    }

    /// Forward pass is deterministic and batch-consistent: evaluating rows
    /// separately gives the same logits as evaluating them in one batch.
    #[test]
    fn batch_consistency(seed in 0u64..200) {
        let mut net = small_mlp(6, 8, 3, seed);
        let mut rng = TensorRng::seed_from(seed ^ 1);
        let x = rng.normal_tensor([4, 6], 0.0, 1.0);
        let all = net.forward(&x, false);
        for i in 0..4 {
            let row = x.slab(i).unwrap().reshape([1, 6]).unwrap();
            let y = net.forward(&row, false);
            for j in 0..3 {
                prop_assert!((y.data()[j] - all.data()[i * 3 + j]).abs() < 1e-5);
            }
        }
    }

    /// A gradient step with zero gradients and no weight decay never moves
    /// parameters, for both optimisers.
    #[test]
    fn zero_grad_is_fixed_point(seed in 0u64..200, lr in 0.001f32..0.5) {
        let mut net = small_mlp(3, 4, 2, seed);
        let before = net.to_flat();
        let mut sgd = Sgd::with_momentum(lr, 0.9, 0.0);
        sgd.step(&mut net);
        prop_assert_eq!(net.to_flat(), before.clone());
        let mut adam = Adam::new(lr);
        adam.step(&mut net);
        // Adam with zero grads: m=v=0 ⇒ update 0/(0+eps)=0.
        prop_assert_eq!(net.to_flat(), before);
    }

    /// SGD with learning rate η scales linearly: one step at 2η equals two
    /// independent steps at η from the same start (no momentum).
    #[test]
    fn sgd_linearity(seed in 0u64..200, lr in 0.001f32..0.1) {
        let net0 = small_mlp(3, 4, 2, seed);
        let grads: Vec<f32> = (0..net0.num_params()).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect();

        let mut a = net0.clone();
        for p in a.params_mut() { p.grad.fill(0.0); }
        a.add_to_grads(&grads);
        let mut opt = Sgd::new(2.0 * lr);
        opt.step(&mut a);

        let mut b = net0.clone();
        for _ in 0..2 {
            for p in b.params_mut() { p.grad.fill(0.0); }
            b.add_to_grads(&grads);
            let mut opt = Sgd::new(lr);
            opt.step(&mut b);
        }
        for (x, y) in a.to_flat().iter().zip(b.to_flat()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Conv forward is linear in the input when biases are zero:
    /// f(αx) = α f(x).
    #[test]
    fn conv_linearity(seed in 0u64..100, alpha in 0.1f32..3.0) {
        let mut rng = TensorRng::seed_from(seed);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        conv.bias.value.fill(0.0);
        let x = rng.normal_tensor([1, 2, 5, 5], 0.0, 1.0);
        let y1 = conv.forward(&x, false).scaled(alpha);
        let y2 = conv.forward(&x.scaled(alpha), false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    }

    /// Backward of a sum loss distributes over batch: per-sample gradients
    /// accumulated equal the batched gradient.
    #[test]
    fn gradient_additivity_over_batch(seed in 0u64..100) {
        let make = || small_mlp(4, 5, 2, seed);
        let mut rng = TensorRng::seed_from(seed ^ 9);
        let x = rng.normal_tensor([3, 4], 0.0, 1.0);

        let mut batched = make();
        let y = batched.forward(&x, true);
        batched.backward(&Tensor::ones(y.dims().to_vec()));
        let g_batched = batched.grads_flat();

        let mut single = make();
        for i in 0..3 {
            let row = x.slab(i).unwrap().reshape([1, 4]).unwrap();
            let y = single.forward(&row, true);
            single.backward(&Tensor::ones(y.dims().to_vec()));
        }
        let g_accum = single.grads_flat();
        for (a, b) in g_batched.iter().zip(&g_accum) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }
}
