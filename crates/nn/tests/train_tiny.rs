//! End-to-end sanity: the substrate can actually learn.

use spatl_nn::{
    accuracy, Adam, Conv2d, CrossEntropyLoss, Flatten, GlobalAvgPool, Linear, Network, Node,
    Optimizer, Relu, Sgd,
};
use spatl_tensor::{Tensor, TensorRng};

/// Generate a linearly separable 2-class problem in 8 dims.
fn toy_data(rng: &mut TensorRng, n: usize) -> (Tensor, Vec<usize>) {
    let mut x = Tensor::zeros([n, 8]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = i % 2;
        labels.push(y);
        for j in 0..8 {
            let centre = if y == 0 { -1.0 } else { 1.0 };
            x.data_mut()[i * 8 + j] = rng.normal(centre, 0.7);
        }
    }
    (x, labels)
}

#[test]
fn mlp_learns_linearly_separable_data() {
    let mut rng = TensorRng::seed_from(42);
    let mut net = Network::new(vec![
        Node::Linear(Linear::new(8, 16, &mut rng)),
        Node::Relu(Relu::new()),
        Node::Linear(Linear::new(16, 2, &mut rng)),
    ]);
    let (x, labels) = toy_data(&mut rng, 128);
    let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
    let mut loss = CrossEntropyLoss::new();
    let mut last = f32::INFINITY;
    for epoch in 0..60 {
        net.zero_grad();
        let logits = net.forward(&x, true);
        let l = loss.forward(&logits, &labels);
        let g = loss.backward();
        net.backward(&g);
        opt.step(&mut net);
        if epoch == 0 {
            last = l;
        }
    }
    let logits = net.forward(&x, false);
    let acc = accuracy(&logits, &labels);
    let final_loss = loss.forward(&logits, &labels);
    assert!(acc > 0.95, "accuracy {acc}");
    assert!(
        final_loss < last,
        "loss did not decrease: {final_loss} vs {last}"
    );
}

#[test]
fn convnet_learns_channel_mean_task() {
    // Class = which input channel has larger mean: a task a conv + GAP
    // pipeline represents exactly.
    let mut rng = TensorRng::seed_from(7);
    let mut net = Network::new(vec![
        Node::Conv(Conv2d::new(2, 8, 3, 1, 1, &mut rng)),
        Node::Relu(Relu::new()),
        Node::GlobalAvgPool(GlobalAvgPool::new()),
        Node::Linear(Linear::new(8, 2, &mut rng)),
    ]);
    let n = 64;
    let mut x = Tensor::zeros([n, 2, 6, 6]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = i % 2;
        labels.push(y);
        for ch in 0..2 {
            let bias = if ch == y { 1.0 } else { 0.0 };
            for s in 0..36 {
                x.data_mut()[(i * 2 + ch) * 36 + s] = rng.normal(bias, 0.4);
            }
        }
    }
    let mut opt = Adam::new(0.01);
    let mut loss = CrossEntropyLoss::new();
    for _ in 0..80 {
        net.zero_grad();
        let logits = net.forward(&x, true);
        loss.forward(&logits, &labels);
        let g = loss.backward();
        net.backward(&g);
        opt.step(&mut net);
    }
    let logits = net.forward(&x, false);
    let acc = accuracy(&logits, &labels);
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn flatten_pipeline_forward_backward_consistency() {
    let mut rng = TensorRng::seed_from(9);
    let mut net = Network::new(vec![
        Node::Conv(Conv2d::new(1, 4, 3, 2, 1, &mut rng)),
        Node::Relu(Relu::new()),
        Node::Flatten(Flatten::new()),
        Node::Linear(Linear::new(4 * 4 * 4, 3, &mut rng)),
    ]);
    let x = rng.normal_tensor([5, 1, 8, 8], 0.0, 1.0);
    let y = net.forward(&x, true);
    assert_eq!(y.dims(), &[5, 3]);
    let gx = net.backward(&Tensor::ones([5, 3]));
    assert_eq!(gx.dims(), &[5, 1, 8, 8]);
    assert!(!net.has_non_finite());
}
