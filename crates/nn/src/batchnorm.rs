//! 2-D batch normalisation over NCHW activations.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, Workspace};

/// Batch normalisation over the channel dimension of NCHW inputs.
///
/// Training mode normalises with batch statistics and updates running
/// statistics with exponential moving averages; evaluation mode uses the
/// running statistics. Gamma/beta are trainable; the running statistics are
/// *not* parameters but are carried along when federated clients exchange
/// encoders (they live in the buffer section of the flat layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Scale `[c]`.
    pub gamma: Param,
    /// Shift `[c]`.
    pub beta: Param,
    /// Running mean `[c]` (buffer, not a trainable parameter).
    pub running_mean: Tensor,
    /// Running variance `[c]` (buffer).
    pub running_var: Tensor,
    /// EMA momentum for running statistics.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Channel count.
    pub channels: usize,
    /// Per-channel output mask (1.0 = keep, 0.0 = silenced). Structured
    /// pruning of the *preceding* convolution sets this so that a pruned
    /// channel is exactly zero after normalisation — as it would be if the
    /// channel (and its BN entry) were physically removed.
    pub channel_mask: Vec<f32>,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: [usize; 4],
}

impl BatchNorm2d {
    /// Create a batch-norm layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones([channels])),
            beta: Param::new(Tensor::zeros([channels])),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            channel_mask: vec![1.0; channels],
            cache: None,
        }
    }

    /// Replace the output channel mask.
    pub fn set_mask(&mut self, mask: Vec<f32>) {
        assert_eq!(mask.len(), self.channels, "bn mask length mismatch");
        self.channel_mask = mask;
    }

    /// Keep all channels.
    pub fn clear_mask(&mut self) {
        self.channel_mask = vec![1.0; self.channels];
    }

    /// Forward pass over `[n, c, h, w]`.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing all temporaries from `ws`. Identical arithmetic
    /// to [`BatchNorm2d::forward`] (which delegates here).
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let dims_slice = input.dims();
        assert_eq!(dims_slice.len(), 4, "batchnorm input must be NCHW");
        let dims = [dims_slice[0], dims_slice[1], dims_slice[2], dims_slice[3]];
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let spatial = h * w;
        let count = (n * spatial) as f32;

        // The previous step's normalised-activation cache feeds this step.
        if let Some(old) = self.cache.take() {
            ws.recycle(old.x_hat);
            ws.give(old.inv_std);
        }
        let mut out = ws.take_tensor(dims.to_vec());
        let src = input.data();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();

        if train {
            let mut x_hat = ws.take_tensor(dims.to_vec());
            let mut inv_std = ws.take(c);
            for ch in 0..c {
                // Batch statistics for this channel.
                let mut mean = 0.0f32;
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for i in 0..spatial {
                        mean += src[base + i];
                    }
                }
                mean /= count;
                let mut var = 0.0f32;
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for i in 0..spatial {
                        let d = src[base + i] - mean;
                        var += d * d;
                    }
                }
                var /= count;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[ch] = istd;

                // Update running stats with the *biased* variance, matching
                // the convention used by the paper's PyTorch reference.
                let rm = &mut self.running_mean.data_mut()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;

                let xh = x_hat.data_mut();
                let dst = out.data_mut();
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for i in 0..spatial {
                        let v = (src[base + i] - mean) * istd;
                        xh[base + i] = v;
                        dst[base + i] = gamma[ch] * v + beta[ch];
                    }
                }
            }
            self.cache = Some(BnCache {
                x_hat,
                inv_std,
                dims,
            });
        } else {
            let rm = self.running_mean.data();
            let rv = self.running_var.data();
            let dst = out.data_mut();
            for ch in 0..c {
                let istd = 1.0 / (rv[ch] + self.eps).sqrt();
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for i in 0..spatial {
                        dst[base + i] = gamma[ch] * (src[base + i] - rm[ch]) * istd + beta[ch];
                    }
                }
            }
        }
        if self.channel_mask.iter().any(|&m| m != 1.0) {
            let dst = out.data_mut();
            for ch in 0..c {
                let m = self.channel_mask[ch];
                if m == 1.0 {
                    continue;
                }
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for v in &mut dst[base..base + spatial] {
                        *v *= m;
                    }
                }
            }
        }
        out
    }

    /// Backward pass using the standard batch-norm gradient:
    /// `dx = (γ·istd/N) · (N·dy − Σdy − x̂·Σ(dy·x̂))`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing all temporaries from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("batchnorm backward without forward");
        let dims = cache.dims;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = h * w;
        let count = (n * spatial) as f32;

        let mut gated = None;
        if self.channel_mask.iter().any(|&m| m != 1.0) {
            let mut t = ws.take_tensor(dims.to_vec());
            t.data_mut().copy_from_slice(grad_out.data());
            let d = t.data_mut();
            for ch in 0..c {
                let m = self.channel_mask[ch];
                if m == 1.0 {
                    continue;
                }
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for v in &mut d[base..base + spatial] {
                        *v *= m;
                    }
                }
            }
            gated = Some(t);
        }
        let gy: &[f32] = match &gated {
            Some(t) => t.data(),
            None => grad_out.data(),
        };
        let xh = cache.x_hat.data();
        let gamma = self.gamma.value.data();

        let mut gx = ws.take_tensor(dims.to_vec());
        #[allow(clippy::needless_range_loop)] // ch co-indexes gamma, inv_std and strided buffers
        for ch in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for img in 0..n {
                let base = (img * c + ch) * spatial;
                for i in 0..spatial {
                    sum_dy += gy[base + i];
                    sum_dy_xhat += gy[base + i] * xh[base + i];
                }
            }
            self.beta.grad.data_mut()[ch] += sum_dy;
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat;

            let coef = gamma[ch] * cache.inv_std[ch] / count;
            let dst = gx.data_mut();
            for img in 0..n {
                let base = (img * c + ch) * spatial;
                for i in 0..spatial {
                    dst[base + i] =
                        coef * (count * gy[base + i] - sum_dy - xh[base + i] * sum_dy_xhat);
                }
            }
        }
        if let Some(t) = gated {
            ws.recycle(t);
        }
        gx
    }

    /// Drop cached activations.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_tensor::TensorRng;

    #[test]
    fn training_forward_normalises_batch() {
        let mut rng = TensorRng::seed_from(1);
        let mut bn = BatchNorm2d::new(3);
        let x = rng.normal_tensor([4, 3, 5, 5], 2.0, 3.0);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1 (gamma=1, beta=0).
        let spatial = 25;
        for ch in 0..3 {
            let mut vals = Vec::new();
            for img in 0..4 {
                let base = (img * 3 + ch) * spatial;
                vals.extend_from_slice(&y.data()[base..base + spatial]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut rng = TensorRng::seed_from(2);
        let mut bn = BatchNorm2d::new(2);
        // Run training forwards so running stats converge towards (2, 9).
        for _ in 0..200 {
            let x = rng.normal_tensor([8, 2, 4, 4], 2.0, 3.0);
            bn.forward(&x, true);
        }
        let x = rng.normal_tensor([8, 2, 4, 4], 2.0, 3.0);
        let y = bn.forward(&x, false);
        let mean = y.mean();
        assert!(mean.abs() < 0.2, "eval mean {mean}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(3);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_slice(&[1.5, 0.7]);
        bn.beta.value = Tensor::from_slice(&[0.1, -0.2]);
        let x = rng.normal_tensor([2, 2, 3, 3], 0.0, 1.0);

        // Weighted-sum loss to get non-uniform upstream gradient.
        let wts = rng.normal_tensor([2, 2, 3, 3], 0.0, 1.0);
        let y = bn.forward(&x, true);
        let _ = y;
        let gx = bn.backward(&wts);

        let eps = 1e-3;
        let loss = |bn: &BatchNorm2d, x: &Tensor| -> f32 {
            let mut b = bn.clone();
            b.forward(x, true).dot(&wts).unwrap()
        };
        for xi in (0..x.numel()).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let fd = (loss(&bn, &xp) - loss(&bn, &xm)) / (2.0 * eps);
            let an = gx.data()[xi];
            assert!(
                (fd - an).abs() < 3e-2 * (1.0 + an.abs()),
                "x[{xi}]: {fd} vs {an}"
            );
        }
        // Gamma/beta grads.
        for gi in 0..2 {
            let mut bp = bn.clone();
            bp.gamma.value.data_mut()[gi] += eps;
            let mut bm = bn.clone();
            bm.gamma.value.data_mut()[gi] -= eps;
            let fd = (loss(&bp, &x) - loss(&bm, &x)) / (2.0 * eps);
            let an = bn.gamma.grad.data()[gi];
            assert!(
                (fd - an).abs() < 3e-2 * (1.0 + an.abs()),
                "gamma[{gi}]: {fd} vs {an}"
            );
        }
    }
}
