//! Residual basic block (CIFAR-style ResNet).

use crate::{BatchNorm2d, Conv2d, Relu};
use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, TensorRng, Workspace};

/// A ResNet "basic block": two 3×3 convolutions with batch-norm, a ReLU in
/// between, an (optionally projected) shortcut connection, and a final ReLU.
///
/// When `stride > 1` or the channel count changes, the shortcut is a 1×1
/// strided convolution + batch-norm (projection shortcut, option B of the
/// ResNet paper); otherwise it is the identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BasicBlock {
    /// First 3×3 convolution (may be strided).
    pub conv1: Conv2d,
    /// Batch norm after `conv1`.
    pub bn1: BatchNorm2d,
    relu1: Relu,
    /// Second 3×3 convolution (stride 1).
    pub conv2: Conv2d,
    /// Batch norm after `conv2`.
    pub bn2: BatchNorm2d,
    /// Projection shortcut convolution, if the block changes shape.
    pub down_conv: Option<Conv2d>,
    /// Batch norm of the projection shortcut.
    pub down_bn: Option<BatchNorm2d>,
    relu_out: Relu,
}

impl BasicBlock {
    /// Create a basic block mapping `in_c` channels to `out_c` channels with
    /// the given stride on the first convolution.
    pub fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut TensorRng) -> Self {
        let needs_projection = stride != 1 || in_c != out_c;
        BasicBlock {
            conv1: Conv2d::new(in_c, out_c, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_c),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_c),
            down_conv: needs_projection.then(|| Conv2d::new(in_c, out_c, 1, stride, 0, rng)),
            down_bn: needs_projection.then(|| BatchNorm2d::new(out_c)),
            relu_out: Relu::new(),
        }
    }

    /// Whether the shortcut is a projection.
    pub fn has_projection(&self) -> bool {
        self.down_conv.is_some()
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing all temporaries from `ws`: intermediate
    /// activations are recycled as soon as the next layer has consumed them,
    /// and the identity shortcut adds `input` directly instead of cloning it.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let m1 = self.conv1.forward_ws(input, train, ws);
        let m2 = self.bn1.forward_ws(&m1, train, ws);
        ws.recycle(m1);
        let m3 = self.relu1.forward_ws(&m2, train, ws);
        ws.recycle(m2);
        let m4 = self.conv2.forward_ws(&m3, train, ws);
        ws.recycle(m3);
        let mut m = self.bn2.forward_ws(&m4, train, ws);
        ws.recycle(m4);
        match (&mut self.down_conv, &mut self.down_bn) {
            (Some(dc), Some(db)) => {
                let t = dc.forward_ws(input, train, ws);
                let s = db.forward_ws(&t, train, ws);
                ws.recycle(t);
                m.add_assign(&s).expect("residual add shape");
                ws.recycle(s);
            }
            _ => m.add_assign(input).expect("residual add shape"),
        }
        let out = self.relu_out.forward_ws(&m, train, ws);
        ws.recycle(m);
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing all temporaries from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let g = self.relu_out.backward_ws(grad_out, ws);
        // Main path.
        let gm1 = self.bn2.backward_ws(&g, ws);
        let gm2 = self.conv2.backward_ws(&gm1, ws);
        ws.recycle(gm1);
        let gm3 = self.relu1.backward_ws(&gm2, ws);
        ws.recycle(gm2);
        let gm4 = self.bn1.backward_ws(&gm3, ws);
        ws.recycle(gm3);
        let mut gx = self.conv1.backward_ws(&gm4, ws);
        ws.recycle(gm4);
        // Shortcut path.
        match (&mut self.down_conv, &mut self.down_bn) {
            (Some(dc), Some(db)) => {
                let t = db.backward_ws(&g, ws);
                ws.recycle(g);
                let gs = dc.backward_ws(&t, ws);
                ws.recycle(t);
                gx.add_assign(&gs).expect("residual grad shape");
                ws.recycle(gs);
            }
            _ => {
                gx.add_assign(&g).expect("residual grad shape");
                ws.recycle(g);
            }
        }
        gx
    }

    /// Drop cached activations in all sub-layers.
    pub fn clear_cache(&mut self) {
        self.conv1.clear_cache();
        self.bn1.clear_cache();
        self.relu1.clear_cache();
        self.conv2.clear_cache();
        self.bn2.clear_cache();
        if let Some(dc) = &mut self.down_conv {
            dc.clear_cache();
        }
        if let Some(db) = &mut self.down_bn {
            db.clear_cache();
        }
        self.relu_out.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_block_preserves_shape() {
        let mut rng = TensorRng::seed_from(1);
        let mut blk = BasicBlock::new(4, 4, 1, &mut rng);
        assert!(!blk.has_projection());
        let x = rng.normal_tensor([2, 4, 8, 8], 0.0, 1.0);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), x.dims());
        let g = blk.backward(&Tensor::ones(y.dims().to_vec()));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn strided_block_halves_spatial_dims() {
        let mut rng = TensorRng::seed_from(2);
        let mut blk = BasicBlock::new(4, 8, 2, &mut rng);
        assert!(blk.has_projection());
        let x = rng.normal_tensor([1, 4, 8, 8], 0.0, 1.0);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
        let g = blk.backward(&Tensor::ones(y.dims().to_vec()));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        // With an identity shortcut and weighted loss, the input gradient
        // should differ from the pure shortcut gradient (main path active)
        // and be non-zero (shortcut active).
        let mut rng = TensorRng::seed_from(3);
        let mut blk = BasicBlock::new(2, 2, 1, &mut rng);
        let x = rng.normal_tensor([1, 2, 4, 4], 0.0, 1.0);
        let y = blk.forward(&x, true);
        let gy = rng.normal_tensor(y.dims().to_vec(), 0.0, 1.0);
        let gx = blk.backward(&gy);
        assert!(gx.norm() > 0.0);
    }
}
