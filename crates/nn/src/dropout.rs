//! Inverted dropout.

use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, TensorRng};

/// Inverted dropout: at train time, zeroes each activation with probability
/// `p` and scales survivors by `1/(1-p)`; identity at evaluation time.
///
/// The layer owns its RNG (seeded at construction) so training runs are
/// deterministic and independent of scheduling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    seed: u64,
    step: u64,
    #[serde(skip)]
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Create a dropout layer with the given drop probability and seed.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout {
            p,
            seed,
            step: 0,
            mask: None,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let mut rng = TensorRng::seed_from(self.seed ^ self.step.wrapping_mul(0x9E3779B97F4A7C15));
        self.step += 1;
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = vec![0.0f32; input.numel()];
        let mut out = input.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            if rng.flip(keep as f64) {
                mask[i] = scale;
                *v *= scale;
            } else {
                mask[i] = 0.0;
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let mut g = grad_out.clone();
                for (v, &m) in g.data_mut().iter_mut().zip(mask) {
                    *v *= m;
                }
                g
            }
        }
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1., 2., 3.]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones([64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones([64]));
        // Gradient is zero exactly where the output was zero.
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }
}
