//! Inverted dropout.

use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, TensorRng, Workspace};

/// Inverted dropout: at train time, zeroes each activation with probability
/// `p` and scales survivors by `1/(1-p)`; identity at evaluation time.
///
/// The layer owns its RNG (seeded at construction) so training runs are
/// deterministic and independent of scheduling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    seed: u64,
    step: u64,
    #[serde(skip)]
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Create a dropout layer with the given drop probability and seed.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout {
            p,
            seed,
            step: 0,
            mask: None,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing the output and mask buffers from `ws`.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if let Some(old) = self.mask.take() {
            ws.give(old);
        }
        let mut out = ws.take_tensor(input.dims().to_vec());
        if !train || self.p == 0.0 {
            out.data_mut().copy_from_slice(input.data());
            return out;
        }
        let mut rng = TensorRng::seed_from(self.seed ^ self.step.wrapping_mul(0x9E3779B97F4A7C15));
        self.step += 1;
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = ws.take(input.numel());
        for (i, (d, &s)) in out.data_mut().iter_mut().zip(input.data()).enumerate() {
            if rng.flip(keep as f64) {
                mask[i] = scale;
                *d = s * scale;
            } else {
                mask[i] = 0.0;
                *d = 0.0;
            }
        }
        self.mask = Some(mask);
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing the gradient buffer from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut g = ws.take_tensor(grad_out.dims().to_vec());
        match &self.mask {
            None => g.data_mut().copy_from_slice(grad_out.data()),
            Some(mask) => {
                for ((d, &s), &m) in g.data_mut().iter_mut().zip(grad_out.data()).zip(mask) {
                    *d = s * m;
                }
            }
        }
        g
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1., 2., 3.]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones([64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones([64]));
        // Gradient is zero exactly where the output was zero.
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }
}
