//! First-order optimisers over a network's parameter list.

use crate::Network;
use serde::{Deserialize, Serialize};
use spatl_tensor::Tensor;

/// A first-order optimiser that steps a [`Network`]'s parameters using the
/// gradients accumulated by its backward pass.
///
/// Optimiser state (momentum buffers, Adam moments) is keyed by parameter
/// *position*, so an optimiser must only ever be used with networks of
/// identical architecture — which is how federated clients use them (one
/// optimiser per client, re-created or retained per round).
pub trait Optimizer {
    /// Apply one update step using the currently accumulated gradients.
    fn step(&mut self, net: &mut Network);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Update the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// The momentum buffer flattened in parameter order, zero-padded to
    /// `numel` if the optimiser has not stepped yet. FedNova clients
    /// upload this alongside their normalised gradient.
    pub fn velocity_flat(&self, numel: usize) -> Vec<f32> {
        let mut out: Vec<f32> = self
            .velocity
            .iter()
            .flat_map(|t| t.data().iter().copied())
            .collect();
        out.resize(numel, 0.0);
        out
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network) {
        let mut params = net.params_mut();
        if self.momentum != 0.0 && self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.dims().to_vec()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let n = p.numel();
            let (value, grad) = (&mut p.value, &p.grad);
            if self.momentum != 0.0 {
                let v = &mut self.velocity[i];
                let vd = v.data_mut();
                let gd = grad.data();
                let wd = self.weight_decay;
                let xd = value.data_mut();
                for j in 0..n {
                    let g = gd[j] + wd * xd[j];
                    vd[j] = self.momentum * vd[j] + g;
                    xd[j] -= self.lr * vd[j];
                }
            } else {
                let gd = grad.data();
                let wd = self.weight_decay;
                let xd = value.data_mut();
                for j in 0..n {
                    let g = gd[j] + wd * xd[j];
                    xd[j] -= self.lr * g;
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimiser (Kingma & Ba), used for the PPO agent per the paper's
/// hyper-parameter settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network) {
        let mut params = net.params_mut();
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.dims().to_vec()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let n = p.numel();
            let md = self.m[i].data_mut();
            let vd = self.v[i].data_mut();
            let gd = p.grad.data().to_vec();
            let xd = p.value.data_mut();
            for j in 0..n {
                let g = gd[j] + self.weight_decay * xd[j];
                md[j] = self.beta1 * md[j] + (1.0 - self.beta1) * g;
                vd[j] = self.beta2 * vd[j] + (1.0 - self.beta2) * g * g;
                let mhat = md[j] / b1t;
                let vhat = vd[j] / b2t;
                xd[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Node};
    use spatl_tensor::TensorRng;

    fn one_param_net(rng: &mut TensorRng) -> Network {
        Network::new(vec![Node::Linear(Linear::new(1, 1, rng))])
    }

    fn set_grads(net: &mut Network, g: f32) {
        for p in net.params_mut() {
            p.grad.fill(g);
        }
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = one_param_net(&mut rng);
        let before = net.to_flat();
        set_grads(&mut net, 1.0);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut net);
        let after = net.to_flat();
        for (a, b) in after.iter().zip(&before) {
            assert!((a - (b - 0.1)).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates() {
        let mut rng = TensorRng::seed_from(2);
        let mut net = one_param_net(&mut rng);
        let w0 = net.to_flat()[0];
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        set_grads(&mut net, 1.0);
        opt.step(&mut net); // v=1, w -= 0.1
        set_grads(&mut net, 1.0);
        opt.step(&mut net); // v=1.9, w -= 0.19
        let w = net.to_flat()[0];
        assert!((w - (w0 - 0.1 - 0.19)).abs() < 1e-5, "w={w} w0={w0}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_grad() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = one_param_net(&mut rng);
        // Force a known positive weight.
        net.from_flat(&vec![1.0; net.num_params()]);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        set_grads(&mut net, 0.0);
        opt.step(&mut net);
        // w = 1 - lr*wd*w = 1 - 0.05
        for w in net.to_flat() {
            assert!((w - 0.95).abs() < 1e-6);
        }
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut rng = TensorRng::seed_from(4);
        let mut net = one_param_net(&mut rng);
        let before = net.to_flat();
        set_grads(&mut net, 3.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut net);
        let after = net.to_flat();
        // Bias-corrected first Adam step ≈ lr regardless of gradient scale.
        for (a, b) in after.iter().zip(&before) {
            assert!(((b - a) - 0.01).abs() < 1e-4, "step {}", b - a);
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise (w-2)^2 via analytic gradient 2(w-2).
        let mut rng = TensorRng::seed_from(5);
        let mut net = one_param_net(&mut rng);
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let w = net.to_flat();
            for (p, wi) in net.params_mut().iter_mut().zip(&w) {
                p.grad.fill(2.0 * (wi - 2.0));
            }
            opt.step(&mut net);
        }
        for w in net.to_flat() {
            assert!((w - 2.0).abs() < 0.05, "w={w}");
        }
    }
}
