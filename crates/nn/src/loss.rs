//! Loss functions and classification metrics.

use spatl_tensor::Tensor;

/// Softmax cross-entropy loss over `[batch, classes]` logits.
///
/// `forward` returns the mean negative log-likelihood; `backward` returns
/// the gradient with respect to the logits, `(softmax − onehot) / batch`.
#[derive(Debug, Clone, Default)]
pub struct CrossEntropyLoss {
    probs: Option<Tensor>,
    labels: Option<Vec<usize>>,
}

impl CrossEntropyLoss {
    /// Create the loss.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean cross-entropy of `logits: [batch, classes]` against integer
    /// class labels.
    pub fn forward(&mut self, logits: &Tensor, labels: &[usize]) -> f32 {
        let (b, c) = (logits.dims()[0], logits.dims()[1]);
        assert_eq!(b, labels.len(), "batch/label count mismatch");
        let probs = logits.softmax_rows();
        let mut loss = 0.0f32;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of range for {c} classes");
            loss -= probs.data()[i * c + y].max(1e-12).ln();
        }
        self.probs = Some(probs);
        self.labels = Some(labels.to_vec());
        loss / b as f32
    }

    /// Gradient of the mean loss with respect to the logits.
    pub fn backward(&mut self) -> Tensor {
        let probs = self.probs.take().expect("loss backward without forward");
        let labels = self.labels.take().expect("loss backward without forward");
        let (b, c) = (probs.dims()[0], probs.dims()[1]);
        let mut grad = probs;
        let inv_b = 1.0 / b as f32;
        {
            let g = grad.data_mut();
            for (i, &y) in labels.iter().enumerate() {
                g[i * c + y] -= 1.0;
            }
            for v in g.iter_mut() {
                *v *= inv_b;
            }
        }
        grad
    }
}

/// Mean squared error loss over arbitrary-shape tensors.
#[derive(Debug, Clone, Default)]
pub struct MseLoss {
    diff: Option<Tensor>,
}

impl MseLoss {
    /// Create the loss.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean of squared element-wise differences.
    pub fn forward(&mut self, pred: &Tensor, target: &Tensor) -> f32 {
        let diff = pred.sub(target).expect("mse shape mismatch");
        let loss = diff.norm_sq() / diff.numel() as f32;
        self.diff = Some(diff);
        loss
    }

    /// Gradient with respect to the prediction.
    pub fn backward(&mut self) -> Tensor {
        let diff = self.diff.take().expect("mse backward without forward");
        let scale = 2.0 / diff.numel() as f32;
        diff.scaled(scale)
    }
}

/// Top-1 accuracy of `logits: [batch, classes]` against integer labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(b, labels.len(), "batch/label count mismatch");
    if b == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = j;
            }
        }
        if best == y {
            correct += 1;
        }
    }
    correct as f32 / b as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let mut loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros([4, 10]);
        let l = loss.forward(&logits, &[0, 3, 7, 9]);
        assert!((l - (10f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut loss = CrossEntropyLoss::new();
        let mut logits = Tensor::zeros([1, 3]);
        logits.data_mut()[1] = 20.0;
        let l = loss.forward(&logits, &[1]);
        assert!(l < 1e-4, "loss {l}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 0.0, 0.3, -0.7]).unwrap();
        let labels = [2usize, 1usize];
        let mut loss = CrossEntropyLoss::new();
        loss.forward(&logits, &labels);
        let g = loss.backward();
        let eps = 1e-3;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let mut l1 = CrossEntropyLoss::new();
            let mut l2 = CrossEntropyLoss::new();
            let fd = (l1.forward(&lp, &labels) - l2.forward(&lm, &labels)) / (2.0 * eps);
            assert!(
                (fd - g.data()[i]).abs() < 1e-3,
                "i={i}: {fd} vs {}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Softmax-CE gradient per row sums to zero (probabilities sum to 1).
        let logits = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]).unwrap();
        let mut loss = CrossEntropyLoss::new();
        loss.forward(&logits, &[0, 3]);
        let g = loss.backward();
        for i in 0..2 {
            let s: f32 = g.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn mse_basics() {
        let mut mse = MseLoss::new();
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let l = mse.forward(&pred, &target);
        assert!((l - 2.5).abs() < 1e-6);
        let g = mse.backward();
        assert_eq!(g.data(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }
}
