//! Neural-network layers, losses and optimisers for the SPATL stack.
//!
//! This crate implements a small but complete deep-learning substrate with
//! hand-written forward/backward passes:
//!
//! * [`Node`] — an enum of layers (convolution, batch-norm, linear, ReLU,
//!   pooling, dropout, residual blocks) so networks are plain data: they can
//!   be cloned, serialised and sent between federated clients without trait
//!   objects.
//! * [`Network`] — an ordered list of nodes with forward/backward, named
//!   parameter traversal and flat-vector export/import (the representation
//!   the federated-learning algorithms aggregate).
//! * [`CrossEntropyLoss`] / [`MseLoss`] — losses with analytic gradients.
//! * [`Sgd`] / [`Adam`] — optimisers over a network's parameter list.
//!
//! The design goal is *transparent parameters*: every federated-learning
//! algorithm in `spatl-fl` manipulates parameters as flat `Vec<f32>`s with a
//! stable layout described by [`Network::param_specs`], which is also what
//! the salient-parameter selection agent indexes into.

#![deny(missing_docs)]

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod loss;
mod network;
mod node;
mod optim;
mod param;
mod pool;
mod residual;

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use loss::{accuracy, CrossEntropyLoss, MseLoss};
pub use network::{Network, ParamSpec};
pub use node::Node;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::BasicBlock;
