//! Activation functions.

use serde::{Deserialize, Serialize};
use spatl_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`, applied element-wise.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Create a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }

    /// Forward pass; caches the activation mask when `train` is set.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        if train {
            let mut mask = vec![false; input.numel()];
            for (i, v) in out.data_mut().iter_mut().enumerate() {
                if *v > 0.0 {
                    mask[i] = true;
                } else {
                    *v = 0.0;
                }
            }
            self.mask = Some(mask);
        } else {
            out.map_in_place(|v| v.max(0.0));
            self.mask = None;
        }
        out
    }

    /// Backward pass: gradient flows only through positive activations.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("relu backward without forward");
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 3.0, -0.1]);
        r.forward(&x, true);
        let g = r.backward(&Tensor::from_slice(&[10., 10., 10., 10.]));
        assert_eq!(g.data(), &[0., 10., 10., 0.]);
    }

    #[test]
    fn zero_input_passes_no_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[0.0]);
        r.forward(&x, true);
        let g = r.backward(&Tensor::from_slice(&[5.0]));
        assert_eq!(g.data(), &[0.0]);
    }
}
