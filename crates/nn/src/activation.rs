//! Activation functions.

use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, Workspace};

/// Rectified linear unit, `y = max(x, 0)`, applied element-wise.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Create a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }

    /// Forward pass; caches the activation mask when `train` is set.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing the output from `ws`; the boolean mask buffer is
    /// reused across steps in place.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let mut out = ws.take_tensor(input.dims().to_vec());
        if train {
            let mut mask = self.mask.take().unwrap_or_default();
            mask.clear();
            mask.resize(input.numel(), false);
            for (i, (d, &s)) in out.data_mut().iter_mut().zip(input.data()).enumerate() {
                if s > 0.0 {
                    mask[i] = true;
                    *d = s;
                } else {
                    *d = 0.0;
                }
            }
            self.mask = Some(mask);
        } else {
            for (d, &s) in out.data_mut().iter_mut().zip(input.data()) {
                *d = s.max(0.0);
            }
            self.mask = None;
        }
        out
    }

    /// Backward pass: gradient flows only through positive activations.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing the gradient buffer from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.mask.as_ref().expect("relu backward without forward");
        let mut g = ws.take_tensor(grad_out.dims().to_vec());
        for ((d, &s), &m) in g.data_mut().iter_mut().zip(grad_out.data()).zip(mask) {
            *d = if m { s } else { 0.0 };
        }
        g
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 3.0, -0.1]);
        r.forward(&x, true);
        let g = r.backward(&Tensor::from_slice(&[10., 10., 10., 10.]));
        assert_eq!(g.data(), &[0., 10., 10., 0.]);
    }

    #[test]
    fn zero_input_passes_no_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[0.0]);
        r.forward(&x, true);
        let g = r.backward(&Tensor::from_slice(&[5.0]));
        assert_eq!(g.data(), &[0.0]);
    }
}
