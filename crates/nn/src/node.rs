//! The layer enum — networks as plain data.

use crate::{
    AvgPool2d, BasicBlock, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d,
    Param, Relu,
};
use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, Workspace};

/// A network layer.
///
/// Using an enum instead of trait objects keeps networks `Clone +
/// Serialize`, which federated learning relies on constantly (clients clone
/// the global model, the server serialises encoders, the RL agent snapshots
/// candidate sub-models).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// 2-D convolution.
    Conv(Conv2d),
    /// Batch normalisation.
    BatchNorm(BatchNorm2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// ReLU activation.
    Relu(Relu),
    /// Max pooling.
    MaxPool(MaxPool2d),
    /// Average pooling.
    AvgPool(AvgPool2d),
    /// Global average pooling.
    GlobalAvgPool(GlobalAvgPool),
    /// Flatten to `[batch, features]`.
    Flatten(Flatten),
    /// Inverted dropout.
    Dropout(Dropout),
    /// Residual basic block.
    Residual(Box<BasicBlock>),
}

impl Node {
    /// Forward pass through this layer.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing all temporaries from `ws`.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        match self {
            Node::Conv(l) => l.forward_ws(input, train, ws),
            Node::BatchNorm(l) => l.forward_ws(input, train, ws),
            Node::Linear(l) => l.forward_ws(input, train, ws),
            Node::Relu(l) => l.forward_ws(input, train, ws),
            Node::MaxPool(l) => l.forward_ws(input, train, ws),
            Node::AvgPool(l) => l.forward_ws(input, train, ws),
            Node::GlobalAvgPool(l) => l.forward_ws(input, train, ws),
            Node::Flatten(l) => l.forward_ws(input, train, ws),
            Node::Dropout(l) => l.forward_ws(input, train, ws),
            Node::Residual(l) => l.forward_ws(input, train, ws),
        }
    }

    /// Backward pass through this layer.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing all temporaries from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        match self {
            Node::Conv(l) => l.backward_ws(grad_out, ws),
            Node::BatchNorm(l) => l.backward_ws(grad_out, ws),
            Node::Linear(l) => l.backward_ws(grad_out, ws),
            Node::Relu(l) => l.backward_ws(grad_out, ws),
            Node::MaxPool(l) => l.backward_ws(grad_out, ws),
            Node::AvgPool(l) => l.backward_ws(grad_out, ws),
            Node::GlobalAvgPool(l) => l.backward_ws(grad_out, ws),
            Node::Flatten(l) => l.backward_ws(grad_out, ws),
            Node::Dropout(l) => l.backward_ws(grad_out, ws),
            Node::Residual(l) => l.backward_ws(grad_out, ws),
        }
    }

    /// Visit trainable parameters in a stable order, with dotted name paths.
    pub fn visit_params<'a>(&'a self, prefix: &str, f: &mut impl FnMut(String, &'a Param)) {
        match self {
            Node::Conv(l) => {
                f(format!("{prefix}.w"), &l.weight);
                f(format!("{prefix}.b"), &l.bias);
            }
            Node::BatchNorm(l) => {
                f(format!("{prefix}.gamma"), &l.gamma);
                f(format!("{prefix}.beta"), &l.beta);
            }
            Node::Linear(l) => {
                f(format!("{prefix}.w"), &l.weight);
                f(format!("{prefix}.b"), &l.bias);
            }
            Node::Residual(l) => {
                l.conv1.visit_into(&format!("{prefix}.conv1"), f);
                l.bn1.visit_into(&format!("{prefix}.bn1"), f);
                l.conv2.visit_into(&format!("{prefix}.conv2"), f);
                l.bn2.visit_into(&format!("{prefix}.bn2"), f);
                if let Some(dc) = &l.down_conv {
                    dc.visit_into(&format!("{prefix}.down_conv"), f);
                }
                if let Some(db) = &l.down_bn {
                    db.visit_into(&format!("{prefix}.down_bn"), f);
                }
            }
            _ => {}
        }
    }

    /// Visit trainable parameters mutably, same order as [`Node::visit_params`].
    pub fn visit_params_mut(&mut self, prefix: &str, f: &mut impl FnMut(String, &mut Param)) {
        match self {
            Node::Conv(l) => {
                f(format!("{prefix}.w"), &mut l.weight);
                f(format!("{prefix}.b"), &mut l.bias);
            }
            Node::BatchNorm(l) => {
                f(format!("{prefix}.gamma"), &mut l.gamma);
                f(format!("{prefix}.beta"), &mut l.beta);
            }
            Node::Linear(l) => {
                f(format!("{prefix}.w"), &mut l.weight);
                f(format!("{prefix}.b"), &mut l.bias);
            }
            Node::Residual(l) => {
                l.conv1.visit_into_mut(&format!("{prefix}.conv1"), f);
                l.bn1.visit_into_mut(&format!("{prefix}.bn1"), f);
                l.conv2.visit_into_mut(&format!("{prefix}.conv2"), f);
                l.bn2.visit_into_mut(&format!("{prefix}.bn2"), f);
                if let Some(dc) = &mut l.down_conv {
                    dc.visit_into_mut(&format!("{prefix}.down_conv"), f);
                }
                if let Some(db) = &mut l.down_bn {
                    db.visit_into_mut(&format!("{prefix}.down_bn"), f);
                }
            }
            _ => {}
        }
    }

    /// Visit non-trainable buffers (batch-norm running statistics).
    pub fn visit_buffers_mut(&mut self, f: &mut impl FnMut(&mut Tensor)) {
        match self {
            Node::BatchNorm(l) => {
                f(&mut l.running_mean);
                f(&mut l.running_var);
            }
            Node::Residual(l) => {
                f(&mut l.bn1.running_mean);
                f(&mut l.bn1.running_var);
                f(&mut l.bn2.running_mean);
                f(&mut l.bn2.running_var);
                if let Some(db) = &mut l.down_bn {
                    f(&mut db.running_mean);
                    f(&mut db.running_var);
                }
            }
            _ => {}
        }
    }

    /// Drop cached activations.
    pub fn clear_cache(&mut self) {
        match self {
            Node::Conv(l) => l.clear_cache(),
            Node::BatchNorm(l) => l.clear_cache(),
            Node::Linear(l) => l.clear_cache(),
            Node::Relu(l) => l.clear_cache(),
            Node::MaxPool(l) => l.clear_cache(),
            Node::AvgPool(l) => l.clear_cache(),
            Node::GlobalAvgPool(l) => l.clear_cache(),
            Node::Flatten(l) => l.clear_cache(),
            Node::Dropout(l) => l.clear_cache(),
            Node::Residual(l) => l.clear_cache(),
        }
    }
}

// Helper trait-like impls for the leaf layer types used inside residual
// blocks, keeping visitation logic in one place per type.
impl Conv2d {
    pub(crate) fn visit_into<'a>(&'a self, prefix: &str, f: &mut impl FnMut(String, &'a Param)) {
        f(format!("{prefix}.w"), &self.weight);
        f(format!("{prefix}.b"), &self.bias);
    }

    pub(crate) fn visit_into_mut(&mut self, prefix: &str, f: &mut impl FnMut(String, &mut Param)) {
        f(format!("{prefix}.w"), &mut self.weight);
        f(format!("{prefix}.b"), &mut self.bias);
    }
}

impl BatchNorm2d {
    pub(crate) fn visit_into<'a>(&'a self, prefix: &str, f: &mut impl FnMut(String, &'a Param)) {
        f(format!("{prefix}.gamma"), &self.gamma);
        f(format!("{prefix}.beta"), &self.beta);
    }

    pub(crate) fn visit_into_mut(&mut self, prefix: &str, f: &mut impl FnMut(String, &mut Param)) {
        f(format!("{prefix}.gamma"), &mut self.gamma);
        f(format!("{prefix}.beta"), &mut self.beta);
    }
}
