//! Sequential network container with flat-parameter export/import.

use crate::{Node, Param};
use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, Workspace, WorkspaceStats};

/// Description of one parameter tensor inside a network's flat layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Dotted name path, e.g. `"node3.conv1.w"`.
    pub name: String,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Offset into the flat vector.
    pub offset: usize,
    /// Element count.
    pub numel: usize,
}

/// An ordered sequence of layers.
///
/// `Network` is the unit that federated learning exchanges: it can export
/// its trainable parameters as a single flat `Vec<f32>` (layout described by
/// [`Network::param_specs`]) and re-import them, which is what every
/// aggregation rule, control variate and salient-parameter index operates
/// on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    /// Layers in execution order.
    pub nodes: Vec<Node>,
    /// Scratch-buffer arena shared by every layer's forward/backward. Not
    /// serialised; cloning a network yields an empty workspace (see
    /// `Workspace`'s `Clone`), so model snapshots stay cheap.
    #[serde(skip)]
    workspace: Workspace,
}

impl Network {
    /// Create a network from layers.
    pub fn new(nodes: Vec<Node>) -> Self {
        Network {
            nodes,
            workspace: Workspace::new(),
        }
    }

    /// Empty network (identity function).
    pub fn empty() -> Self {
        Network::new(Vec::new())
    }

    /// Forward pass through all layers.
    ///
    /// All intermediate activations come from (and return to) the network's
    /// workspace, so after a warm-up step the forward pass performs no heap
    /// allocation. The returned output tensor is the caller's; hand it back
    /// via [`Network::recycle`] once consumed to keep the loop allocation
    /// free.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let Network { nodes, workspace } = self;
        let mut x: Option<Tensor> = None;
        for node in nodes.iter_mut() {
            let y = match &x {
                Some(t) => node.forward_ws(t, train, workspace),
                None => node.forward_ws(input, train, workspace),
            };
            if let Some(prev) = x.replace(y) {
                workspace.recycle(prev);
            }
        }
        x.unwrap_or_else(|| input.clone())
    }

    /// Backward pass through all layers in reverse, accumulating parameter
    /// gradients; returns the gradient with respect to the network input
    /// (recyclable via [`Network::recycle`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let Network { nodes, workspace } = self;
        let mut g: Option<Tensor> = None;
        for node in nodes.iter_mut().rev() {
            let y = match &g {
                Some(t) => node.backward_ws(t, workspace),
                None => node.backward_ws(grad_out, workspace),
            };
            if let Some(prev) = g.replace(y) {
                workspace.recycle(prev);
            }
        }
        g.unwrap_or_else(|| grad_out.clone())
    }

    /// Return a tensor produced by [`Network::forward`] /
    /// [`Network::backward`] to the scratch pool once it has been consumed.
    pub fn recycle(&mut self, t: Tensor) {
        self.workspace.recycle(t);
    }

    /// Allocation counters of the embedded workspace — steady-state training
    /// must leave `fresh_allocs`/`grows` unchanged between steps.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Mutable access to the embedded workspace (tests, custom loops).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Visit all trainable parameters in stable (layer, declaration) order.
    pub fn visit_params<'a>(&'a self, f: &mut impl FnMut(String, &'a Param)) {
        for (i, node) in self.nodes.iter().enumerate() {
            node.visit_params(&format!("node{i}"), f);
        }
    }

    /// Visit all trainable parameters mutably.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(String, &mut Param)) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.visit_params_mut(&format!("node{i}"), f);
        }
    }

    /// Collect mutable references to all parameters, in the same stable
    /// order as [`Network::visit_params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        fn push_block<'a>(b: &'a mut crate::BasicBlock, out: &mut Vec<&'a mut Param>) {
            out.push(&mut b.conv1.weight);
            out.push(&mut b.conv1.bias);
            out.push(&mut b.bn1.gamma);
            out.push(&mut b.bn1.beta);
            out.push(&mut b.conv2.weight);
            out.push(&mut b.conv2.bias);
            out.push(&mut b.bn2.gamma);
            out.push(&mut b.bn2.beta);
            if let Some(dc) = &mut b.down_conv {
                out.push(&mut dc.weight);
                out.push(&mut dc.bias);
            }
            if let Some(db) = &mut b.down_bn {
                out.push(&mut db.gamma);
                out.push(&mut db.beta);
            }
        }
        for node in self.nodes.iter_mut() {
            match node {
                Node::Conv(l) => {
                    out.push(&mut l.weight);
                    out.push(&mut l.bias);
                }
                Node::BatchNorm(l) => {
                    out.push(&mut l.gamma);
                    out.push(&mut l.beta);
                }
                Node::Linear(l) => {
                    out.push(&mut l.weight);
                    out.push(&mut l.bias);
                }
                Node::Residual(l) => push_block(l, &mut out),
                _ => {}
            }
        }
        out
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalar parameters.
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, p| n += p.numel());
        n
    }

    /// Layout of the flat parameter vector.
    pub fn param_specs(&self) -> Vec<ParamSpec> {
        let mut specs = Vec::new();
        let mut offset = 0usize;
        self.visit_params(&mut |name, p| {
            specs.push(ParamSpec {
                name,
                dims: p.value.dims().to_vec(),
                offset,
                numel: p.numel(),
            });
            offset += p.numel();
        });
        specs
    }

    /// Export trainable parameters as one flat vector.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut flat = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |_, p| flat.extend_from_slice(p.value.data()));
        flat
    }

    /// Import trainable parameters from a flat vector produced by
    /// [`Network::to_flat`] on an identically-shaped network.
    ///
    /// Panics if the length does not match the network's parameter count —
    /// an upload with mismatched dimensions must never be silently applied.
    pub fn from_flat(&mut self, flat: &[f32]) {
        let expected = self.num_params();
        assert_eq!(
            flat.len(),
            expected,
            "flat parameter length {} does not match network parameter count {}",
            flat.len(),
            expected
        );
        let mut offset = 0usize;
        for p in self.params_mut() {
            let n = p.numel();
            p.value
                .data_mut()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Export accumulated gradients as one flat vector (same layout as
    /// [`Network::to_flat`]).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut flat = Vec::with_capacity(self.num_params());
        self.visit_params(&mut |_, p| flat.extend_from_slice(p.grad.data()));
        flat
    }

    /// Add `delta` to every gradient entry (flat layout). Used by the
    /// gradient-control correction `−cᵢ + c` of SCAFFOLD/SPATL.
    pub fn add_to_grads(&mut self, delta: &[f32]) {
        let expected = self.num_params();
        assert_eq!(delta.len(), expected, "gradient delta length mismatch");
        let mut offset = 0usize;
        for p in self.params_mut() {
            let n = p.numel();
            for (g, d) in p.grad.data_mut().iter_mut().zip(&delta[offset..offset + n]) {
                *g += d;
            }
            offset += n;
        }
    }

    /// Export non-trainable buffers (batch-norm running statistics) as a
    /// flat vector, so federated encoders carry consistent statistics.
    pub fn buffers_flat(&mut self) -> Vec<f32> {
        let mut flat = Vec::new();
        for node in self.nodes.iter_mut() {
            node.visit_buffers_mut(&mut |t| flat.extend_from_slice(t.data()));
        }
        flat
    }

    /// Import buffers exported by [`Network::buffers_flat`].
    pub fn set_buffers_flat(&mut self, flat: &[f32]) {
        let mut offset = 0usize;
        for node in self.nodes.iter_mut() {
            node.visit_buffers_mut(&mut |t| {
                let n = t.numel();
                t.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            });
        }
        assert_eq!(offset, flat.len(), "buffer flat length mismatch");
    }

    /// Visit every batch-norm layer mutably (including those inside
    /// residual blocks) — used for AdaBN-style recalibration.
    pub fn for_each_batchnorm_mut(&mut self, f: &mut impl FnMut(&mut crate::BatchNorm2d)) {
        for node in self.nodes.iter_mut() {
            match node {
                Node::BatchNorm(bn) => f(bn),
                Node::Residual(b) => {
                    f(&mut b.bn1);
                    f(&mut b.bn2);
                    if let Some(db) = &mut b.down_bn {
                        f(db);
                    }
                }
                _ => {}
            }
        }
    }

    /// Drop all cached activations (before serialising or cloning for
    /// transfer, to avoid shipping activation memory).
    pub fn clear_caches(&mut self) {
        for node in &mut self.nodes {
            node.clear_cache();
        }
    }

    /// True if any parameter or gradient contains NaN/Inf — used by the FL
    /// server to reject diverged client updates.
    pub fn has_non_finite(&self) -> bool {
        let mut bad = false;
        self.visit_params(&mut |_, p| {
            if p.value.has_non_finite() || p.grad.has_non_finite() {
                bad = true;
            }
        });
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Flatten, GlobalAvgPool, Linear, Relu};
    use spatl_tensor::TensorRng;

    fn tiny_net(rng: &mut TensorRng) -> Network {
        Network::new(vec![
            Node::Conv(Conv2d::new(1, 4, 3, 1, 1, rng)),
            Node::Relu(Relu::new()),
            Node::GlobalAvgPool(GlobalAvgPool::new()),
            Node::Linear(Linear::new(4, 3, rng)),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = tiny_net(&mut rng);
        let x = rng.normal_tensor([2, 1, 6, 6], 0.0, 1.0);
        let y = net.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3]);
        let gx = net.backward(&Tensor::ones([2, 3]));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn flat_round_trip_preserves_params() {
        let mut rng = TensorRng::seed_from(2);
        let net = tiny_net(&mut rng);
        let flat = net.to_flat();
        assert_eq!(flat.len(), net.num_params());
        let mut net2 = tiny_net(&mut rng); // different weights
        assert_ne!(net2.to_flat(), flat);
        net2.from_flat(&flat);
        assert_eq!(net2.to_flat(), flat);
    }

    #[test]
    fn param_specs_cover_flat_layout_exactly() {
        let mut rng = TensorRng::seed_from(3);
        let net = tiny_net(&mut rng);
        let specs = net.param_specs();
        let mut expected_offset = 0;
        for s in &specs {
            assert_eq!(s.offset, expected_offset);
            assert_eq!(s.numel, s.dims.iter().product::<usize>());
            expected_offset += s.numel;
        }
        assert_eq!(expected_offset, net.num_params());
        // Names are unique.
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    #[should_panic(expected = "does not match network parameter count")]
    fn from_flat_rejects_wrong_length() {
        let mut rng = TensorRng::seed_from(4);
        let mut net = tiny_net(&mut rng);
        let flat = vec![0.0; net.num_params() + 1];
        net.from_flat(&flat);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut rng = TensorRng::seed_from(5);
        let mut net = tiny_net(&mut rng);
        let x = rng.normal_tensor([1, 1, 6, 6], 0.0, 1.0);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.dims().to_vec()));
        assert!(net.grads_flat().iter().any(|&g| g != 0.0));
        net.zero_grad();
        assert!(net.grads_flat().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn add_to_grads_applies_flat_delta() {
        let mut rng = TensorRng::seed_from(6);
        let mut net = tiny_net(&mut rng);
        let n = net.num_params();
        net.add_to_grads(&vec![0.5; n]);
        assert!(net.grads_flat().iter().all(|&g| (g - 0.5).abs() < 1e-7));
    }

    #[test]
    fn visit_orders_match_params_mut_order() {
        // to_flat (visitor) and from_flat (params_mut) must use the same
        // ordering or federated aggregation would silently permute tensors.
        let mut rng = TensorRng::seed_from(7);
        let mut net = Network::new(vec![
            Node::Conv(Conv2d::new(1, 2, 3, 1, 1, &mut rng)),
            Node::Residual(Box::new(crate::BasicBlock::new(2, 4, 2, &mut rng))),
            Node::Flatten(Flatten::new()),
        ]);
        let flat = net.to_flat();
        net.from_flat(&flat);
        assert_eq!(net.to_flat(), flat);

        // Mutating through params_mut shows up at the right spec offset.
        let specs = net.param_specs();
        {
            let mut ps = net.params_mut();
            ps[3].value.data_mut()[0] = 1234.5;
        }
        let flat2 = net.to_flat();
        assert_eq!(flat2[specs[3].offset], 1234.5);
    }

    #[test]
    fn buffers_round_trip() {
        let mut rng = TensorRng::seed_from(8);
        let mut net = Network::new(vec![Node::Residual(Box::new(crate::BasicBlock::new(
            1, 2, 2, &mut rng,
        )))]);
        let x = rng.normal_tensor([2, 1, 4, 4], 0.0, 1.0);
        net.forward(&x, true); // update running stats
        let bufs = net.buffers_flat();
        assert!(!bufs.is_empty());
        let mut net2 = Network::new(vec![Node::Residual(Box::new(crate::BasicBlock::new(
            1, 2, 2, &mut rng,
        )))]);
        net2.set_buffers_flat(&bufs);
        assert_eq!(net2.buffers_flat(), bufs);
    }
}
