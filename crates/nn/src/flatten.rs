//! Flatten layer: NCHW → [batch, features].

use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, Workspace};

/// Flattens all trailing dimensions into one: `[n, ...] -> [n, prod(...)]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Create a flatten layer.
    pub fn new() -> Self {
        Flatten { in_dims: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing the output from `ws`; the cached dims vector is
    /// reused in place across steps.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let n = input.dims()[0];
        let feat: usize = input.dims()[1..].iter().product();
        self.in_dims = if train {
            let mut d = self.in_dims.take().unwrap_or_default();
            d.clear();
            d.extend_from_slice(input.dims());
            Some(d)
        } else {
            None
        };
        let mut out = ws.take_tensor([n, feat]);
        out.data_mut().copy_from_slice(input.data());
        out
    }

    /// Backward pass: reshape gradient back to the input dims.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing the gradient buffer from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let dims = self
            .in_dims
            .as_ref()
            .expect("flatten backward without forward");
        let mut g = ws.take_tensor(dims.clone());
        g.data_mut().copy_from_slice(grad_out.data());
        g
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.in_dims = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros([2, 3, 4, 5]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&Tensor::ones([2, 60]));
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }
}
