//! Flatten layer: NCHW → [batch, features].

use serde::{Deserialize, Serialize};
use spatl_tensor::Tensor;

/// Flattens all trailing dimensions into one: `[n, ...] -> [n, prod(...)]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Create a flatten layer.
    pub fn new() -> Self {
        Flatten { in_dims: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let dims = input.dims().to_vec();
        let n = dims[0];
        let feat: usize = dims[1..].iter().product();
        self.in_dims = if train { Some(dims) } else { None };
        input.reshape([n, feat]).expect("flatten reshape")
    }

    /// Backward pass: reshape gradient back to the input dims.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .in_dims
            .as_ref()
            .expect("flatten backward without forward");
        grad_out
            .reshape(dims.clone())
            .expect("flatten grad reshape")
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.in_dims = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros([2, 3, 4, 5]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&Tensor::ones([2, 60]));
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }
}
