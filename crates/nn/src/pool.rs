//! Spatial pooling layers.

use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, Workspace};

/// Max pooling with a square window over NCHW inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride (normally equal to `kernel`).
    pub stride: usize,
    #[serde(skip)]
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    argmax: Vec<usize>,
    in_dims: [usize; 4],
}

impl MaxPool2d {
    /// Create a max-pool layer.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing temporaries from `ws`; the argmax index buffer
    /// is recycled from the previous step's cache.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let d = input.dims();
        let dims = [d[0], d[1], d[2], d[3]];
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = ws.take_tensor([n, c, oh, ow]);
        let mut argmax = match self.cache.take() {
            Some(cache) => {
                let mut v = cache.argmax;
                v.clear();
                v.resize(n * c * oh * ow, 0);
                v
            }
            None => vec![0usize; n * c * oh * ow],
        };
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let in_base = (img * c + ch) * h * w;
                let out_base = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = in_base + iy * w + ix;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[out_base + oy * ow + ox] = best;
                        argmax[out_base + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if train {
            self.cache = Some(PoolCache {
                argmax,
                in_dims: dims,
            });
        }
        out
    }

    /// Backward pass: route gradients to the argmax positions.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing temporaries from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("maxpool backward without forward");
        let mut gx = ws.take_zeroed_tensor(cache.in_dims.to_vec());
        let dst = gx.data_mut();
        for (g, &idx) in grad_out.data().iter().zip(&cache.argmax) {
            dst[idx] += g;
        }
        gx
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

/// Average pooling with a square window over NCHW inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvgPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    #[serde(skip)]
    in_dims: Option<[usize; 4]>,
}

impl AvgPool2d {
    /// Create an average-pool layer.
    pub fn new(kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            kernel,
            stride,
            in_dims: None,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing temporaries from `ws`.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let d = input.dims();
        let dims = [d[0], d[1], d[2], d[3]];
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = ws.take_tensor([n, c, oh, ow]);
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let in_base = (img * c + ch) * h * w;
                let out_base = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += src
                                    [in_base + (oy * self.stride + ky) * w + ox * self.stride + kx];
                            }
                        }
                        dst[out_base + oy * ow + ox] = acc * inv;
                    }
                }
            }
        }
        self.in_dims = if train { Some(dims) } else { None };
        out
    }

    /// Backward pass: spread gradient uniformly over each window.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing temporaries from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let dims = self.in_dims.expect("avgpool backward without forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let od = grad_out.dims();
        let (oh, ow) = (od[2], od[3]);
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut gx = ws.take_zeroed_tensor(dims.to_vec());
        let src = grad_out.data();
        let dst = gx.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let in_base = (img * c + ch) * h * w;
                let out_base = (img * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = src[out_base + oy * ow + ox] * inv;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                dst[in_base
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.in_dims = None;
    }
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool {
    #[serde(skip)]
    in_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Create a global average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool { in_dims: None }
    }

    /// Forward pass producing `[n, c]`.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing temporaries from `ws`.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let d = input.dims();
        let dims = [d[0], d[1], d[2], d[3]];
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = h * w;
        let inv = 1.0 / spatial as f32;
        let mut out = ws.take_tensor([n, c]);
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * spatial;
                dst[img * c + ch] = src[base..base + spatial].iter().sum::<f32>() * inv;
            }
        }
        self.in_dims = if train { Some(dims) } else { None };
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing temporaries from `ws`. Every element of the
    /// input gradient is assigned, so the buffer needs no pre-zeroing.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let dims = self.in_dims.expect("gap backward without forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = h * w;
        let inv = 1.0 / spatial as f32;
        let mut gx = ws.take_tensor(dims.to_vec());
        let src = grad_out.data();
        let dst = gx.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let g = src[img * c + ch] * inv;
                let base = (img * c + ch) * spatial;
                for v in &mut dst[base..base + spatial] {
                    *v = g;
                }
            }
        }
        gx
    }

    /// Drop cached state.
    pub fn clear_cache(&mut self) {
        self.in_dims = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max_and_routes_grad() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 4., //
                3., 0., 1., 1., //
                0., 0., 9., 8., //
                0., 7., 6., 5.,
            ],
        )
        .unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3., 5., 7., 9.]);
        let g = p.backward(&Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap());
        // Gradient lands exactly on the argmax positions.
        assert_eq!(g.at(&[0, 0, 1, 0]), 1.0);
        assert_eq!(g.at(&[0, 0, 0, 2]), 2.0);
        assert_eq!(g.at(&[0, 0, 3, 1]), 3.0);
        assert_eq!(g.at(&[0, 0, 2, 2]), 4.0);
        assert_eq!(g.sum(), 10.0);
    }

    #[test]
    fn avgpool_averages_and_spreads_grad() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
        let g = p.backward(&Tensor::from_vec([1, 1, 1, 1], vec![4.0]).unwrap());
        assert_eq!(g.data(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn gap_reduces_to_channel_means() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1., 1., 1., 1., 2., 4., 6., 8.]).unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[1.0, 5.0]);
        let g = p.backward(&Tensor::from_vec([1, 2], vec![4.0, 8.0]).unwrap());
        assert_eq!(&g.data()[..4], &[1., 1., 1., 1.]);
        assert_eq!(&g.data()[4..], &[2., 2., 2., 2.]);
    }
}
