//! Trainable parameter container.

use serde::{Deserialize, Serialize};
use spatl_tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
///
/// Gradients are accumulated (`+=`) by backward passes so that gradient
/// accumulation over micro-batches and the SCAFFOLD-style corrections in
/// `spatl-fl` compose naturally; call [`Param::zero_grad`] between steps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Wrap a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims().to_vec());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Reset the gradient to zero, keeping the allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones([2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([4]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
    }
}
