//! 2-D convolution via `im2col` + matmul, with structured channel masking.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use spatl_tensor::{
    col2im_into, im2col_into, matmul_into, matmul_nt_into, matmul_tn_into, Conv2dGeometry, Tensor,
    TensorRng, Workspace,
};

/// A 2-D convolution layer over NCHW inputs.
///
/// The weight is stored pre-flattened as `[out_channels, in_channels·k·k]`
/// so forward/backward are single matmuls against the `im2col` patch matrix.
///
/// `channel_mask` implements the structured pruning used by SPATL's salient
/// parameter selection: masked output channels produce zeros in the forward
/// pass and are excluded from the FLOPs accounting in `spatl-models`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Weight `[out_channels, in_channels·k·k]`.
    pub weight: Param,
    /// Bias `[out_channels]`.
    pub bias: Param,
    /// Number of output channels.
    pub out_channels: usize,
    /// Number of input channels.
    pub in_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Per-output-channel multiplier (1.0 = keep, 0.0 = pruned).
    pub channel_mask: Vec<f32>,
    #[serde(skip)]
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    cols: Tensor,
    geometry: Conv2dGeometry,
    batch: usize,
}

impl Conv2d {
    /// Create a convolution with Kaiming-uniform weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let patch = in_channels * kernel * kernel;
        let weight = rng.kaiming_uniform([out_channels, patch], patch);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros([out_channels])),
            out_channels,
            in_channels,
            kernel,
            stride,
            padding,
            channel_mask: vec![1.0; out_channels],
            cache: None,
        }
    }

    /// Number of output channels currently kept by the mask.
    pub fn active_channels(&self) -> usize {
        self.channel_mask.iter().filter(|&&m| m != 0.0).count()
    }

    /// Replace the channel mask. Panics if the length differs from
    /// `out_channels`.
    pub fn set_mask(&mut self, mask: Vec<f32>) {
        assert_eq!(mask.len(), self.out_channels, "mask length mismatch");
        self.channel_mask = mask;
    }

    /// Reset the mask to keep all channels.
    pub fn clear_mask(&mut self) {
        self.channel_mask = vec![1.0; self.out_channels];
    }

    fn geometry(&self, h: usize, w: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: self.in_channels,
            in_h: h,
            in_w: w,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    /// Forward pass over `[n, c, h, w]`.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing all temporaries from `ws`. Identical arithmetic
    /// to [`Conv2d::forward`] (which delegates here), but steady-state
    /// allocation-free once the workspace is warm.
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "conv input must be NCHW");
        let (n, _c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let g = self.geometry(h, w);
        let (oh, ow) = (g.out_h(), g.out_w());

        // The previous step's cached patch matrix feeds this step's buffers.
        if let Some(old) = self.cache.take() {
            ws.recycle(old.cols);
        }
        let mut cols = ws.take_tensor([n * g.cols(), g.patch_len()]);
        im2col_into(input, &g, &mut cols);
        // rows: [n·oh·ow, patch] · [patch, out_c] -> [n·oh·ow, out_c]
        let mut rows = ws.take_tensor([n * g.cols(), self.out_channels]);
        matmul_nt_into(&cols, &self.weight.value, &mut rows);
        let mut out = ws.take_tensor([n, self.out_channels, oh, ow]);
        let spatial = oh * ow;
        {
            let src = rows.data();
            let dst = out.data_mut();
            let b = self.bias.value.data();
            // Every output element is written (masked channels as explicit
            // zeros), so the recycled buffer needs no pre-clearing.
            for img in 0..n {
                for pos in 0..spatial {
                    let row = (img * spatial + pos) * self.out_channels;
                    for oc in 0..self.out_channels {
                        let m = self.channel_mask[oc];
                        dst[(img * self.out_channels + oc) * spatial + pos] =
                            (src[row + oc] + b[oc]) * m;
                    }
                }
            }
        }
        ws.recycle(rows);
        if train {
            self.cache = Some(ConvCache {
                cols,
                geometry: g,
                batch: n,
            });
        } else {
            ws.recycle(cols);
        }
        out
    }

    /// Backward pass: accumulate weight/bias gradients and return the
    /// gradient with respect to the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing all temporaries from `ws`; see
    /// [`Conv2d::forward_ws`].
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self.cache.as_ref().expect("conv backward without forward");
        let g = cache.geometry;
        let n = cache.batch;
        let (oh, ow) = (g.out_h(), g.out_w());
        let spatial = oh * ow;

        // NCHW grad -> row-major [n·oh·ow, out_c] applying the channel mask
        // (masked channels contribute no gradient; every element written).
        let mut grad_rows = ws.take_tensor([n * spatial, self.out_channels]);
        {
            let src = grad_out.data();
            let dst = grad_rows.data_mut();
            for img in 0..n {
                for oc in 0..self.out_channels {
                    let m = self.channel_mask[oc];
                    for pos in 0..spatial {
                        dst[(img * spatial + pos) * self.out_channels + oc] =
                            src[(img * self.out_channels + oc) * spatial + pos] * m;
                    }
                }
            }
        }

        // grad_w = grad_rowsᵀ · cols  -> [out_c, patch]
        let mut gw = ws.take_tensor([self.out_channels, g.patch_len()]);
        matmul_tn_into(&grad_rows, &cache.cols, &mut gw);
        self.weight.grad.add_assign(&gw).expect("weight grad shape");
        ws.recycle(gw);

        // grad_b = column sums of grad_rows.
        {
            let gb = self.bias.grad.data_mut();
            let src = grad_rows.data();
            for r in 0..n * spatial {
                for oc in 0..self.out_channels {
                    gb[oc] += src[r * self.out_channels + oc];
                }
            }
        }

        // grad_cols = grad_rows · w -> [n·oh·ow, patch]; grad_x = col2im.
        let mut grad_cols = ws.take_tensor([n * spatial, g.patch_len()]);
        matmul_into(&grad_rows, &self.weight.value, &mut grad_cols);
        ws.recycle(grad_rows);
        let mut gx = ws.take_tensor([n, g.in_channels, g.in_h, g.in_w]);
        col2im_into(&grad_cols, &g, &mut gx);
        ws.recycle(grad_cols);
        gx
    }

    /// Drop any cached activations (e.g. before serialising).
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatl_tensor::TensorRng;

    #[test]
    fn forward_shape_and_mask() {
        let mut rng = TensorRng::seed_from(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = rng.normal_tensor([2, 3, 8, 8], 0.0, 1.0);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);

        // Mask half the channels and confirm they are exactly zero.
        let mut mask = vec![1.0; 8];
        for m in mask.iter_mut().take(4) {
            *m = 0.0;
        }
        conv.set_mask(mask);
        let y = conv.forward(&x, false);
        let spatial = 64;
        for img in 0..2 {
            for oc in 0..4 {
                let base = (img * 8 + oc) * spatial;
                assert!(y.data()[base..base + spatial].iter().all(|&v| v == 0.0));
            }
            for oc in 4..8 {
                let base = (img * 8 + oc) * spatial;
                assert!(y.data()[base..base + spatial].iter().any(|&v| v != 0.0));
            }
        }
        assert_eq!(conv.active_channels(), 4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = rng.normal_tensor([1, 2, 5, 5], 0.0, 1.0);

        // Loss = sum(y); analytic gradient vs central differences for a few
        // weight entries and input entries.
        let y = conv.forward(&x, true);
        let grad_out = Tensor::ones(y.dims().to_vec());
        let gx = conv.backward(&grad_out);

        let eps = 1e-3;
        for &wi in &[0usize, 5, 17, 30] {
            let mut cp = conv.clone();
            cp.weight.value.data_mut()[wi] += eps;
            let up = cp.forward(&x, false).sum();
            let mut cm = conv.clone();
            cm.weight.value.data_mut()[wi] -= eps;
            let down = cm.forward(&x, false).sum();
            let fd = (up - down) / (2.0 * eps);
            let an = conv.weight.grad.data()[wi];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "w[{wi}]: fd={fd} an={an}"
            );
        }
        for &xi in &[0usize, 7, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let up = conv.clone().forward(&xp, false).sum();
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let down = conv.clone().forward(&xm, false).sum();
            let fd = (up - down) / (2.0 * eps);
            let an = gx.data()[xi];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "x[{xi}]: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn bias_gradient_is_count_of_positions() {
        let mut rng = TensorRng::seed_from(3);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        let x = rng.normal_tensor([3, 1, 4, 4], 0.0, 1.0);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.dims().to_vec()));
        // dL/db = number of output positions per channel = 3·16.
        for &g in conv.bias.grad.data() {
            assert!((g - 48.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn wrong_mask_length_panics() {
        let mut rng = TensorRng::seed_from(4);
        let mut conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
        conv.set_mask(vec![1.0; 3]);
    }
}
