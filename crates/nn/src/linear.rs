//! Fully-connected layer.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use spatl_tensor::{matmul_into, matmul_nt_into, matmul_tn_into, Tensor, TensorRng, Workspace};

/// A fully-connected (dense) layer `y = x·Wᵀ + b` over `[batch, in]` inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight `[out, in]`.
    pub weight: Param,
    /// Bias `[out]`.
    pub bias: Param,
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    #[serde(skip)]
    cache: Option<Tensor>,
}

impl Linear {
    /// Create a dense layer with Kaiming-uniform weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut TensorRng) -> Self {
        Linear {
            weight: Param::new(rng.kaiming_uniform([out_features, in_features], in_features)),
            bias: Param::new(Tensor::zeros([out_features])),
            in_features,
            out_features,
            cache: None,
        }
    }

    /// Forward pass over `[batch, in]`.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut ws = Workspace::new();
        self.forward_ws(input, train, &mut ws)
    }

    /// Forward pass drawing all temporaries from `ws`. Identical arithmetic
    /// to [`Linear::forward`] (which delegates here).
    pub fn forward_ws(&mut self, input: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        assert_eq!(input.dims().len(), 2, "linear input must be [batch, in]");
        assert_eq!(
            input.dims()[1],
            self.in_features,
            "linear in_features mismatch"
        );
        let batch = input.dims()[0];
        let mut out = ws.take_tensor([batch, self.out_features]);
        matmul_nt_into(input, &self.weight.value, &mut out);
        let b = self.bias.value.data();
        let of = self.out_features;
        for row in out.data_mut().chunks_mut(of) {
            for (v, bv) in row.iter_mut().zip(b) {
                *v += bv;
            }
        }
        if let Some(old) = self.cache.take() {
            ws.recycle(old);
        }
        if train {
            let mut cached = ws.take_tensor([batch, self.in_features]);
            cached.data_mut().copy_from_slice(input.data());
            self.cache = Some(cached);
        }
        out
    }

    /// Backward pass: accumulate gradients, return input gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    /// Backward pass drawing all temporaries from `ws`.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cache
            .as_ref()
            .expect("linear backward without forward");
        // grad_w = grad_outᵀ · x -> [out, in]
        let mut gw = ws.take_tensor([self.out_features, self.in_features]);
        matmul_tn_into(grad_out, x, &mut gw);
        self.weight.grad.add_assign(&gw).expect("linear grad shape");
        ws.recycle(gw);
        // grad_b = column sums.
        {
            let gb = self.bias.grad.data_mut();
            for row in grad_out.data().chunks(self.out_features) {
                for (g, r) in gb.iter_mut().zip(row) {
                    *g += r;
                }
            }
        }
        // grad_x = grad_out · W -> [batch, in]
        let mut gx = ws.take_tensor([grad_out.dims()[0], self.in_features]);
        matmul_into(grad_out, &self.weight.value, &mut gx);
        gx
    }

    /// Drop cached activations.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = TensorRng::seed_from(1);
        let mut lin = Linear::new(2, 3, &mut rng);
        lin.weight.value = Tensor::from_vec([3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
        lin.bias.value = Tensor::from_slice(&[0.5, -0.5, 0.0]);
        let x = Tensor::from_vec([1, 2], vec![2.0, 3.0]).unwrap();
        let y = lin.forward(&x, false);
        assert_eq!(y.data(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = TensorRng::seed_from(2);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = rng.normal_tensor([2, 4], 0.0, 1.0);
        let y = lin.forward(&x, true);
        let gx = lin.backward(&Tensor::ones(y.dims().to_vec()));

        let eps = 1e-3;
        for wi in 0..lin.weight.value.numel() {
            let mut lp = lin.clone();
            lp.weight.value.data_mut()[wi] += eps;
            let up = lp.forward(&x, false).sum();
            let mut lm = lin.clone();
            lm.weight.value.data_mut()[wi] -= eps;
            let down = lm.forward(&x, false).sum();
            let fd = (up - down) / (2.0 * eps);
            let an = lin.weight.grad.data()[wi];
            assert!(
                (fd - an).abs() < 1e-2 * (1.0 + an.abs()),
                "w[{wi}]: {fd} vs {an}"
            );
        }
        for xi in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let up = lin.clone().forward(&xp, false).sum();
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let down = lin.clone().forward(&xm, false).sum();
            let fd = (up - down) / (2.0 * eps);
            let an = gx.data()[xi];
            assert!(
                (fd - an).abs() < 1e-2 * (1.0 + an.abs()),
                "x[{xi}]: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut rng = TensorRng::seed_from(3);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = rng.normal_tensor([1, 2], 0.0, 1.0);
        let y = lin.forward(&x, true);
        let g = Tensor::ones(y.dims().to_vec());
        lin.backward(&g);
        let snap = lin.weight.grad.clone();
        lin.forward(&x, true);
        lin.backward(&g);
        let doubled = snap.scaled(2.0);
        for (a, b) in lin.weight.grad.data().iter().zip(doubled.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
