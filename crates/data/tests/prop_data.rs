//! Property-based tests for data synthesis and partitioning.

use proptest::prelude::*;
use spatl_data::{
    dirichlet_partition, partition_stats, synth_cifar10, synth_femnist, Dataset, SynthConfig,
};
use spatl_tensor::TensorRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Subset + concat recovers the original multiset of samples.
    #[test]
    fn subset_concat_identity(n in 4usize..40, split in 1usize..3, seed in 0u64..200) {
        let cfg = SynthConfig { hw: 8, ..SynthConfig::cifar10_like() };
        let d = synth_cifar10(&cfg, n, seed);
        let cut = n / (split + 1);
        let front: Vec<usize> = (0..cut).collect();
        let back: Vec<usize> = (cut..n).collect();
        let a = d.subset(&front);
        let b = d.subset(&back);
        let merged = Dataset::concat(&[&a, &b]);
        prop_assert_eq!(merged.labels, d.labels);
        prop_assert_eq!(merged.images.data(), d.images.data());
    }

    /// Batching covers every sample exactly once regardless of batch size.
    #[test]
    fn batches_partition_dataset(n in 1usize..50, bs in 1usize..17, seed in 0u64..200) {
        let cfg = SynthConfig { hw: 8, ..SynthConfig::cifar10_like() };
        let d = synth_cifar10(&cfg, n, seed);
        let mut rng = TensorRng::seed_from(seed);
        let batches = d.batches(bs, &mut rng);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        prop_assert_eq!(total, n);
        prop_assert!(batches.iter().all(|b| b.labels.len() <= bs));
        // Label multiset is preserved.
        let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.labels.clone()).collect();
        let mut orig = d.labels.clone();
        seen.sort_unstable();
        orig.sort_unstable();
        prop_assert_eq!(seen, orig);
    }

    /// FEMNIST writers are deterministic in (seed, writer) and independent
    /// of how many writers are generated alongside them.
    #[test]
    fn writer_generation_is_stable(writers in 2usize..6, seed in 0u64..100) {
        let cfg = SynthConfig { hw: 8, ..SynthConfig::femnist_like() };
        let a = synth_femnist(&cfg, writers, 12, seed);
        let b = synth_femnist(&cfg, writers, 12, seed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.labels, &y.labels);
            prop_assert_eq!(x.images.data(), y.images.data());
        }
    }

    /// Heterogeneity statistics are monotone-ish in β: extremely skewed
    /// partitions have at least the TV distance of extremely mild ones.
    #[test]
    fn tv_distance_orders_beta_extremes(seed in 0u64..50) {
        let cfg = SynthConfig { hw: 8, ..SynthConfig::cifar10_like() };
        let d = synth_cifar10(&cfg, 400, seed);
        let mut rng = TensorRng::seed_from(seed);
        let skewed = dirichlet_partition(&d.labels, 10, 8, 0.05, &mut rng);
        let mild = dirichlet_partition(&d.labels, 10, 8, 50.0, &mut rng);
        let s = partition_stats(&d.labels, &skewed, 10);
        let m = partition_stats(&d.labels, &mild, 10);
        prop_assert!(s.mean_label_tv >= m.mean_label_tv);
    }

    /// Every partition leaves no client empty, across a wide β range.
    #[test]
    fn no_empty_clients(beta in 0.05f64..10.0, clients in 2usize..20, seed in 0u64..100) {
        let cfg = SynthConfig { hw: 8, ..SynthConfig::cifar10_like() };
        let d = synth_cifar10(&cfg, 120, seed);
        let mut rng = TensorRng::seed_from(seed);
        let parts = dirichlet_partition(&d.labels, 10, clients, beta, &mut rng);
        prop_assert!(parts.iter().all(|p| !p.is_empty()));
    }
}
