//! Non-IID data partitioning.
//!
//! [`dirichlet_partition`] reproduces the label-skew allocation of the
//! Non-IID benchmark (Li et al., ICDE 2022) used by the paper: for each
//! class, a proportion vector over clients is drawn from `Dir(β)` and the
//! class's samples are split accordingly. Smaller β means more skew; the
//! paper uses β = 0.5.

use rand_distr::{Dirichlet, Distribution};
use serde::{Deserialize, Serialize};
use spatl_tensor::TensorRng;

/// Summary statistics of a partition, used for reporting heterogeneity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Samples per client.
    pub sizes: Vec<usize>,
    /// Mean over clients of the total-variation distance between the
    /// client's label distribution and the global one (0 = IID).
    pub mean_label_tv: f64,
    /// Number of clients holding fewer than 2 classes.
    pub single_class_clients: usize,
}

/// Dirichlet label-skew partition: returns per-client sample index lists.
///
/// Every sample is assigned to exactly one client. Clients that would end
/// up empty are topped up with one sample stolen from the largest client,
/// mirroring the benchmark's minimum-size requirement.
pub fn dirichlet_partition(
    labels: &[usize],
    num_classes: usize,
    n_clients: usize,
    beta: f64,
    rng: &mut TensorRng,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(beta > 0.0, "Dirichlet concentration must be positive");
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_clients];

    // Group sample indices by class, shuffled for random assignment.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    for class_idx in by_class.iter_mut() {
        rng.shuffle(class_idx);
    }

    for class_idx in by_class {
        if class_idx.is_empty() {
            continue;
        }
        let props: Vec<f64> = if n_clients == 1 {
            vec![1.0]
        } else {
            let dir = Dirichlet::new(&vec![beta; n_clients]).expect("valid Dirichlet");
            dir.sample(rng.raw())
        };
        // Convert proportions to cumulative cut points over this class.
        let n = class_idx.len();
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (client, &p) in props.iter().enumerate() {
            acc += p;
            let end = if client == n_clients - 1 {
                n
            } else {
                ((acc * n as f64).round() as usize).clamp(start, n)
            };
            shards[client].extend_from_slice(&class_idx[start..end]);
            start = end;
        }
    }

    // Top up empty clients so every client can train.
    for i in 0..n_clients {
        if shards[i].is_empty() {
            let (largest, _) = shards
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.len())
                .expect("non-empty shard list");
            if shards[largest].len() > 1 {
                let moved = shards[largest].pop().expect("largest shard non-empty");
                shards[i].push(moved);
            }
        }
    }
    shards
}

/// IID partition: shuffle and deal samples round-robin.
pub fn iid_partition(n_samples: usize, n_clients: usize, rng: &mut TensorRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n_samples).collect();
    rng.shuffle(&mut idx);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (i, s) in idx.into_iter().enumerate() {
        shards[i % n_clients].push(s);
    }
    shards
}

/// Normalised label distribution of a set of samples.
pub fn label_distribution(labels: &[usize], indices: &[usize], num_classes: usize) -> Vec<f64> {
    let mut dist = vec![0.0f64; num_classes];
    for &i in indices {
        dist[labels[i]] += 1.0;
    }
    let total: f64 = dist.iter().sum();
    if total > 0.0 {
        for d in dist.iter_mut() {
            *d /= total;
        }
    }
    dist
}

/// Heterogeneity statistics of a partition.
pub fn partition_stats(
    labels: &[usize],
    shards: &[Vec<usize>],
    num_classes: usize,
) -> PartitionStats {
    let all: Vec<usize> = (0..labels.len()).collect();
    let global = label_distribution(labels, &all, num_classes);
    let mut tv_sum = 0.0f64;
    let mut single = 0usize;
    for shard in shards {
        let dist = label_distribution(labels, shard, num_classes);
        let tv: f64 = dist
            .iter()
            .zip(&global)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        tv_sum += tv;
        let classes_present = dist.iter().filter(|&&p| p > 0.0).count();
        if classes_present < 2 {
            single += 1;
        }
    }
    PartitionStats {
        sizes: shards.iter().map(|s| s.len()).collect(),
        mean_label_tv: tv_sum / shards.len().max(1) as f64,
        single_class_clients: single,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn dirichlet_assigns_every_sample_exactly_once() {
        let ls = labels(500, 10);
        let mut rng = TensorRng::seed_from(1);
        let shards = dirichlet_partition(&ls, 10, 10, 0.5, &mut rng);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn no_client_left_empty() {
        let ls = labels(100, 10);
        let mut rng = TensorRng::seed_from(2);
        let shards = dirichlet_partition(&ls, 10, 50, 0.1, &mut rng);
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn smaller_beta_is_more_skewed() {
        let ls = labels(2000, 10);
        let mut rng = TensorRng::seed_from(3);
        let skewed = dirichlet_partition(&ls, 10, 10, 0.1, &mut rng);
        let mild = dirichlet_partition(&ls, 10, 10, 100.0, &mut rng);
        let s1 = partition_stats(&ls, &skewed, 10);
        let s2 = partition_stats(&ls, &mild, 10);
        assert!(
            s1.mean_label_tv > s2.mean_label_tv + 0.1,
            "skewed {} vs mild {}",
            s1.mean_label_tv,
            s2.mean_label_tv
        );
    }

    #[test]
    fn iid_partition_is_balanced_and_complete() {
        let mut rng = TensorRng::seed_from(4);
        let shards = iid_partition(103, 10, &mut rng);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn iid_partition_has_low_tv() {
        let ls = labels(2000, 10);
        let mut rng = TensorRng::seed_from(5);
        let shards = iid_partition(2000, 10, &mut rng);
        let st = partition_stats(&ls, &shards, 10);
        assert!(st.mean_label_tv < 0.1, "tv {}", st.mean_label_tv);
        assert_eq!(st.single_class_clients, 0);
    }

    #[test]
    fn label_distribution_normalises() {
        let ls = vec![0, 0, 1, 2];
        let dist = label_distribution(&ls, &[0, 1, 2, 3], 3);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dist[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let ls = labels(300, 10);
        let a = dirichlet_partition(&ls, 10, 7, 0.5, &mut TensorRng::seed_from(9));
        let b = dirichlet_partition(&ls, 10, 7, 0.5, &mut TensorRng::seed_from(9));
        assert_eq!(a, b);
    }
}
