//! Synthetic datasets and Non-IID partitioning for the SPATL reproduction.
//!
//! The paper evaluates on CIFAR-10 (split with the Non-IID benchmark's
//! Dirichlet label-skew sampler, β = 0.5) and FEMNIST (split per-writer via
//! LEAF). Neither dataset ships with this repository, so this crate
//! generates **synthetic stand-ins that preserve the properties the
//! algorithms are sensitive to**:
//!
//! * class structure — each class has a smooth random prototype image, and
//!   samples are prototype + Gaussian noise, so convolutional models learn
//!   real spatial features and accuracy curves have the usual shape;
//! * label-skew heterogeneity — [`dirichlet_partition`] implements the
//!   exact Dirichlet allocation of the Non-IID benchmark;
//! * writer-style heterogeneity — [`synth_femnist`] gives every client its
//!   own style transform (contrast/brightness/jitter), reproducing LEAF's
//!   natural per-writer shift.
//!
//! See DESIGN.md §1 for the substitution argument.

mod dataset;
mod partition;
mod synth;

pub use dataset::{Batch, Dataset};
pub use partition::{
    dirichlet_partition, iid_partition, label_distribution, partition_stats, PartitionStats,
};
pub use synth::{synth_cifar10, synth_femnist, SynthConfig, WriterStyle};
