//! In-memory labelled image dataset.

use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, TensorRng};

/// One mini-batch: images `[b, c, h, w]` and integer labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch images.
    pub images: Tensor,
    /// Batch labels.
    pub labels: Vec<usize>,
}

/// An in-memory labelled image dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Images `[n, c, h, w]`.
    pub images: Tensor,
    /// Integer class labels, length `n`.
    pub labels: Vec<usize>,
    /// Number of classes in the task (not necessarily all present here).
    pub num_classes: usize,
}

impl Dataset {
    /// Create a dataset, validating that image count matches label count.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.dims()[0], labels.len(), "image/label count mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image dimensions `[c, h, w]`.
    pub fn image_dims(&self) -> [usize; 3] {
        let d = self.images.dims();
        [d[1], d[2], d[3]]
    }

    /// Dataset restricted to the given sample indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let [c, h, w] = self.image_dims();
        let slab = c * h * w;
        let mut images = Tensor::zeros([indices.len(), c, h, w]);
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            assert!(i < self.len(), "subset index {i} out of range");
            images.data_mut()[row * slab..(row + 1) * slab]
                .copy_from_slice(&self.images.data()[i * slab..(i + 1) * slab]);
            labels.push(self.labels[i]);
        }
        Dataset::new(images, labels, self.num_classes)
    }

    /// Random train/validation split; `train_frac` of samples go to train.
    pub fn split(&self, train_frac: f32, rng: &mut TensorRng) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let n_train = ((self.len() as f32) * train_frac).round() as usize;
        let (tr, va) = idx.split_at(n_train.min(self.len()));
        (self.subset(tr), self.subset(va))
    }

    /// Shuffled mini-batches covering the whole dataset; the final batch may
    /// be smaller.
    pub fn batches(&self, batch_size: usize, rng: &mut TensorRng) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        idx.chunks(batch_size)
            .map(|chunk| {
                let sub = self.subset(chunk);
                Batch {
                    images: sub.images,
                    labels: sub.labels,
                }
            })
            .collect()
    }

    /// The whole dataset as one batch (for evaluation).
    pub fn as_batch(&self) -> Batch {
        Batch {
            images: self.images.clone(),
            labels: self.labels.clone(),
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Concatenate datasets with identical image dims and class count.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "cannot concat zero datasets");
        let [c, h, w] = parts[0].image_dims();
        let num_classes = parts[0].num_classes;
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut images = Tensor::zeros([total, c, h, w]);
        let mut labels = Vec::with_capacity(total);
        let slab = c * h * w;
        let mut row = 0usize;
        for d in parts {
            assert_eq!(d.image_dims(), [c, h, w], "image dims mismatch in concat");
            assert_eq!(d.num_classes, num_classes, "class count mismatch in concat");
            images.data_mut()[row * slab..(row + d.len()) * slab].copy_from_slice(d.images.data());
            labels.extend_from_slice(&d.labels);
            row += d.len();
        }
        Dataset::new(images, labels, num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut images = Tensor::zeros([4, 1, 2, 2]);
        for i in 0..16 {
            images.data_mut()[i] = i as f32;
        }
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn subset_selects_rows_and_labels() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 0]);
        assert_eq!(&s.images.data()[0..4], &[8., 9., 10., 11.]);
        assert_eq!(&s.images.data()[4..8], &[0., 1., 2., 3.]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = tiny();
        let mut rng = TensorRng::seed_from(1);
        let (tr, va) = d.split(0.75, &mut rng);
        assert_eq!(tr.len() + va.len(), d.len());
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = tiny();
        let mut rng = TensorRng::seed_from(2);
        let bs = d.batches(3, &mut rng);
        assert_eq!(bs.len(), 2);
        let total: usize = bs.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn class_counts_tally() {
        let d = tiny();
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn concat_preserves_order() {
        let d = tiny();
        let e = Dataset::concat(&[&d, &d]);
        assert_eq!(e.len(), 8);
        assert_eq!(e.labels[4..], d.labels[..]);
    }

    #[test]
    #[should_panic(expected = "image/label count mismatch")]
    fn mismatched_lengths_rejected() {
        Dataset::new(Tensor::zeros([2, 1, 2, 2]), vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        Dataset::new(Tensor::zeros([1, 1, 2, 2]), vec![5], 2);
    }
}
