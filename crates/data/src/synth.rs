//! Synthetic image generators.
//!
//! Each class has a smooth random *prototype*: a coarse random field
//! bilinearly upsampled to the target resolution, so classes differ in
//! low-frequency spatial structure (the regime convolutions exploit).
//! Samples are `contrast · prototype + brightness + noise`, optionally
//! passed through a per-client [`WriterStyle`] to reproduce LEAF-style
//! feature-distribution shift on top of label skew.

use crate::Dataset;
use serde::{Deserialize, Serialize};
use spatl_tensor::{Tensor, TensorRng};

/// Configuration for synthetic image generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Square image size.
    pub hw: usize,
    /// Per-pixel Gaussian noise standard deviation (task difficulty).
    pub noise_std: f32,
    /// Seed for the class prototypes — generators with equal prototype
    /// seeds produce the *same task*, so separately generated datasets are
    /// drawn from one distribution.
    pub prototype_seed: u64,
}

impl SynthConfig {
    /// CIFAR-10-like defaults: 10 classes, 3×16×16.
    pub fn cifar10_like() -> Self {
        SynthConfig {
            num_classes: 10,
            channels: 3,
            hw: 16,
            noise_std: 0.6,
            prototype_seed: 0xC1FA,
        }
    }

    /// FEMNIST-like defaults: 62 classes, 1×14×14.
    pub fn femnist_like() -> Self {
        SynthConfig {
            num_classes: 62,
            channels: 1,
            hw: 14,
            noise_std: 0.45,
            prototype_seed: 0xFE31,
        }
    }
}

/// Per-client feature-distribution shift (the "writer style" of LEAF).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WriterStyle {
    /// Multiplicative contrast.
    pub contrast: f32,
    /// Additive brightness.
    pub brightness: f32,
    /// Circular pixel shift (x, y) simulating translation.
    pub shift: (i32, i32),
}

impl WriterStyle {
    /// The identity style.
    pub fn identity() -> Self {
        WriterStyle {
            contrast: 1.0,
            brightness: 0.0,
            shift: (0, 0),
        }
    }

    /// Sample a random writer style.
    pub fn sample(rng: &mut TensorRng) -> Self {
        WriterStyle {
            contrast: rng.uniform(0.7, 1.3),
            brightness: rng.uniform(-0.3, 0.3),
            shift: (rng.below(3) as i32 - 1, rng.below(3) as i32 - 1),
        }
    }
}

/// Class prototypes: `num_classes` smooth random fields `[c, hw, hw]`.
fn prototypes(cfg: &SynthConfig) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from(cfg.prototype_seed);
    let coarse = 4usize;
    (0..cfg.num_classes)
        .map(|_| {
            // Coarse grid then bilinear upsample for smooth structure.
            let grid = rng.normal_tensor([cfg.channels, coarse, coarse], 0.0, 1.0);
            let mut proto = Tensor::zeros([cfg.channels, cfg.hw, cfg.hw]);
            let scale = (coarse - 1) as f32 / (cfg.hw - 1) as f32;
            for ch in 0..cfg.channels {
                for y in 0..cfg.hw {
                    for x in 0..cfg.hw {
                        let fy = y as f32 * scale;
                        let fx = x as f32 * scale;
                        let (y0, x0) = (fy as usize, fx as usize);
                        let (y1, x1) = ((y0 + 1).min(coarse - 1), (x0 + 1).min(coarse - 1));
                        let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                        let g = |yy: usize, xx: usize| grid.at(&[ch, yy, xx]);
                        let v = g(y0, x0) * (1.0 - dy) * (1.0 - dx)
                            + g(y0, x1) * (1.0 - dy) * dx
                            + g(y1, x0) * dy * (1.0 - dx)
                            + g(y1, x1) * dy * dx;
                        *proto.at_mut(&[ch, y, x]) = v;
                    }
                }
            }
            proto
        })
        .collect()
}

fn render_sample(
    proto: &Tensor,
    style: &WriterStyle,
    noise_std: f32,
    rng: &mut TensorRng,
) -> Tensor {
    let dims = proto.dims();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let mut img = Tensor::zeros([c, h, w]);
    let (sx, sy) = style.shift;
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let py = (y as i32 - sy).rem_euclid(h as i32) as usize;
                let px = (x as i32 - sx).rem_euclid(w as i32) as usize;
                let v = style.contrast * proto.at(&[ch, py, px])
                    + style.brightness
                    + rng.normal(0.0, noise_std);
                *img.at_mut(&[ch, y, x]) = v;
            }
        }
    }
    img
}

/// Generate `n` CIFAR-10-like samples with balanced labels.
///
/// `sample_seed` controls which samples are drawn; the class prototypes —
/// i.e. the *task* — are fixed by `cfg.prototype_seed`, so two calls with
/// different sample seeds give disjoint draws from the same distribution
/// (used for the FL-set / transfer-set split of Table III).
pub fn synth_cifar10(cfg: &SynthConfig, n: usize, sample_seed: u64) -> Dataset {
    let protos = prototypes(cfg);
    let mut rng = TensorRng::seed_from(sample_seed ^ 0xACE0_FBA5E);
    let style = WriterStyle::identity();
    let mut images = Tensor::zeros([n, cfg.channels, cfg.hw, cfg.hw]);
    let mut labels = Vec::with_capacity(n);
    let slab = cfg.channels * cfg.hw * cfg.hw;
    for i in 0..n {
        let y = i % cfg.num_classes;
        labels.push(y);
        let img = render_sample(&protos[y], &style, cfg.noise_std, &mut rng);
        images.data_mut()[i * slab..(i + 1) * slab].copy_from_slice(img.data());
    }
    Dataset::new(images, labels, cfg.num_classes)
}

/// Generate per-writer FEMNIST-like shards: `writers` clients, each with its
/// own [`WriterStyle`] and a skewed label marginal (writers use a random
/// subset of classes more often), matching LEAF's natural non-IID-ness.
pub fn synth_femnist(
    cfg: &SynthConfig,
    writers: usize,
    samples_per_writer: usize,
    sample_seed: u64,
) -> Vec<Dataset> {
    let protos = prototypes(cfg);
    let mut master = TensorRng::seed_from(sample_seed ^ 0xFEA51);
    let slab = cfg.channels * cfg.hw * cfg.hw;
    (0..writers)
        .map(|wid| {
            let mut rng = master.fork(wid as u64);
            let style = WriterStyle::sample(&mut rng);
            // Writer-favoured classes: a random half of the alphabet.
            let mut favoured: Vec<usize> = (0..cfg.num_classes).collect();
            rng.shuffle(&mut favoured);
            favoured.truncate((cfg.num_classes / 2).max(1));

            let mut images = Tensor::zeros([samples_per_writer, cfg.channels, cfg.hw, cfg.hw]);
            let mut labels = Vec::with_capacity(samples_per_writer);
            for i in 0..samples_per_writer {
                let y = if rng.flip(0.8) {
                    favoured[rng.below(favoured.len())]
                } else {
                    rng.below(cfg.num_classes)
                };
                labels.push(y);
                let img = render_sample(&protos[y], &style, cfg.noise_std, &mut rng);
                images.data_mut()[i * slab..(i + 1) * slab].copy_from_slice(img.data());
            }
            Dataset::new(images, labels, cfg.num_classes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_like_has_balanced_labels() {
        let cfg = SynthConfig::cifar10_like();
        let d = synth_cifar10(&cfg, 100, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.image_dims(), [3, 16, 16]);
        assert!(d.class_counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn same_prototype_seed_same_task() {
        let cfg = SynthConfig::cifar10_like();
        // Enough samples that each class mean averages several draws;
        // with one sample per class the comparison measures noise, not
        // prototypes, and sits right at the threshold.
        let a = synth_cifar10(&cfg, 100, 1);
        let b = synth_cifar10(&cfg, 100, 2);
        // Different samples...
        assert_ne!(a.images.data(), b.images.data());
        // ...but per-class means correlate strongly across draws (same
        // prototypes): compare class-0 means.
        let mean_of = |d: &Dataset| {
            let idx: Vec<usize> = (0..d.len()).filter(|&i| d.labels[i] == 0).collect();
            let s = d.subset(&idx);
            let n = s.len() as f32;
            let slab = 3 * 16 * 16;
            let mut m = vec![0.0f32; slab];
            for i in 0..s.len() {
                let row = &s.images.data()[i * slab..(i + 1) * slab];
                for (mj, &x) in m.iter_mut().zip(row) {
                    *mj += x / n;
                }
            }
            m
        };
        let ma = mean_of(&a);
        let mb = mean_of(&b);
        let dot: f32 = ma.iter().zip(&mb).map(|(x, y)| x * y).sum();
        let na: f32 = ma.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = mb.iter().map(|v| v * v).sum::<f32>().sqrt();
        let cos = dot / (na * nb);
        assert!(cos > 0.5, "class means should correlate, cos={cos}");
    }

    #[test]
    fn different_prototype_seed_different_task() {
        let mut cfg = SynthConfig::cifar10_like();
        let a = synth_cifar10(&cfg, 10, 1);
        cfg.prototype_seed = 999;
        let b = synth_cifar10(&cfg, 10, 1);
        assert_ne!(a.images.data(), b.images.data());
    }

    #[test]
    fn femnist_writers_are_heterogeneous() {
        let cfg = SynthConfig::femnist_like();
        let shards = synth_femnist(&cfg, 5, 40, 3);
        assert_eq!(shards.len(), 5);
        for s in &shards {
            assert_eq!(s.len(), 40);
        }
        // Label marginals differ between writers.
        let c0 = shards[0].class_counts();
        let c1 = shards[1].class_counts();
        assert_ne!(c0, c1);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::cifar10_like();
        let a = synth_cifar10(&cfg, 20, 7);
        let b = synth_cifar10(&cfg, 20, 7);
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn writer_style_shift_wraps() {
        let mut rng = TensorRng::seed_from(5);
        for _ in 0..20 {
            let s = WriterStyle::sample(&mut rng);
            assert!(s.shift.0.abs() <= 1 && s.shift.1.abs() <= 1);
            assert!(s.contrast > 0.0);
        }
    }
}
