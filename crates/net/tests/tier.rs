//! 2-tier loopback integration tests: root coordinator + edge
//! aggregators + client nodes, all over 127.0.0.1, against the
//! in-process simulator (DESIGN.md §11).
//!
//! The headline assertions: a 2-edge tree composing with the default
//! weighted mean finishes **bit-identical** to the flat simulator for all
//! five algorithms; robust aggregators compose bit-identically to the
//! in-process reduction twin and land within the documented per-round ε
//! envelope of the flat fold; and a root killed mid-round resumes from
//! its write-ahead log — clients replaying their cached uploads — to a
//! final global bit-identical to an uninterrupted run.

use std::thread::{self, JoinHandle};
use std::time::Duration;

use spatl::prelude::*;
use spatl::ExperimentBuilder;
use spatl_fl::{
    aggregate_reduced, edge_partition, reduce_cohort, ClientState, GlobalState, LocalOutcome,
    Simulation,
};
use spatl_net::{
    ClientNode, Coordinator, CoordinatorConfig, EdgeAggregator, EdgeConfig, EdgeReport, NetError,
    NodeConfig, NodeReport, Topology,
};

const EDGES: usize = 2;

fn builder(algorithm: Algorithm, rounds: usize) -> ExperimentBuilder {
    ExperimentBuilder::new(algorithm)
        .model(ModelKind::Cnn2)
        .clients(4)
        .samples_per_client(18)
        .rounds(rounds)
        .local_epochs(1)
        .batch_size(8)
        .seed(7)
}

fn root_config() -> CoordinatorConfig {
    CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        join_timeout: Duration::from_secs(20),
        round_timeout: Duration::from_secs(120),
        io_timeout: Duration::from_secs(20),
        topology: Topology::Tiered { edges: EDGES },
        ..CoordinatorConfig::default()
    }
}

#[track_caller]
fn assert_bits_equal(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}[{i}]: {x} != {y} (bitwise)"
        );
    }
}

#[track_caller]
fn assert_global_bit_identical(a: &GlobalState, b: &GlobalState) {
    assert_bits_equal("shared", &a.shared, &b.shared);
    assert_bits_equal("control", &a.control, &b.control);
    assert_bits_equal("momentum", &a.momentum, &b.momentum);
    assert_bits_equal("buffers", &a.buffers, &b.buffers);
}

struct TieredRun {
    coordinator: Coordinator,
    edge_reports: Vec<EdgeReport>,
    node_reports: Vec<(ClientState, NodeReport)>,
}

/// Stand up a full 2-tier tree on loopback — root, `EDGES` edge
/// aggregator threads, one node thread per client shard — run the whole
/// session, and tear it down.
fn run_tiered(build: impl Fn() -> Simulation) -> TieredRun {
    let session = build();
    let cfg = session.driver.cfg;
    let mut coordinator = Coordinator::bind(session.driver, root_config()).expect("bind root");
    let root_addr = coordinator.local_addr().expect("root addr").to_string();

    let mut edge_handles: Vec<JoinHandle<Result<EdgeReport, NetError>>> = Vec::new();
    let mut edge_addrs: Vec<String> = Vec::new();
    for e in 0..EDGES {
        let driver = build().driver;
        let edge = EdgeAggregator::bind(
            driver,
            EdgeConfig::new(e, EDGES, root_addr.clone(), "127.0.0.1:0"),
        )
        .expect("bind edge");
        edge_addrs.push(edge.local_addr().expect("edge addr").to_string());
        edge_handles.push(thread::spawn(move || edge.run()));
    }

    let ranges = edge_partition(cfg.n_clients, EDGES);
    let node_handles: Vec<JoinHandle<Result<(ClientState, NodeReport), NetError>>> = session
        .clients
        .into_iter()
        .map(|c| {
            let e = ranges
                .iter()
                .position(|r| r.contains(&c.id))
                .expect("slice");
            let opts = NodeConfig::new(edge_addrs[e].clone());
            thread::spawn(move || ClientNode::new(cfg, c, opts).run())
        })
        .collect();

    let completed = coordinator.run().expect("tiered run");
    assert!(completed, "no shutdown was requested");
    let edge_reports = edge_handles
        .into_iter()
        .map(|h| h.join().expect("edge thread").expect("edge exits cleanly"))
        .collect();
    let node_reports = node_handles
        .into_iter()
        .map(|h| h.join().expect("node thread").expect("node exits cleanly"))
        .collect();
    TieredRun {
        coordinator,
        edge_reports,
        node_reports,
    }
}

/// Weighted-mean composition is exact: the 2-tier tree must finish bit
/// identical to the flat in-process simulator, round for round.
fn assert_tiered_matches_simulator(algorithm: Algorithm) {
    let rounds = 2;
    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    let run = run_tiered(|| builder(algorithm, rounds).build());

    assert_global_bit_identical(&sim.driver.global, &run.coordinator.driver.global);
    assert_eq!(
        sim.driver.history.len(),
        run.coordinator.driver.history.len()
    );
    for (s, t) in sim
        .driver
        .history
        .iter()
        .zip(&run.coordinator.driver.history)
    {
        assert_eq!(s.round, t.round);
        assert_eq!(
            s.mean_acc.to_bits(),
            t.mean_acc.to_bits(),
            "round {}",
            s.round
        );
        assert_bits_equal("per_client_acc", &s.per_client_acc, &t.per_client_acc);
        // Analytic Eq. 13 accounting is per *client* and travels in the
        // combined upload's entries — identical to the flat run. The
        // measured wire figures are not compared: tiered rounds measure
        // the root link (2 combined frames), flat rounds the client star.
        assert_eq!(s.bytes, t.bytes, "Eq. 13 accounting, round {}", s.round);
        assert_eq!(s.faults.sampled, t.faults.sampled, "round {}", s.round);
        assert_eq!(s.faults.survivors, t.faults.survivors, "round {}", s.round);
        assert_eq!(t.faults.total(), 0, "clean run must ledger nothing");
        assert!(t.wire.upload_framed > 0, "the root link was measured");
    }
    for report in &run.edge_reports {
        assert_eq!(report.rounds_forwarded, rounds);
        assert_eq!(report.rounds_evaluated, rounds);
        assert_eq!(report.reconnects, 0);
    }
    for (_, report) in &run.node_reports {
        assert_eq!(report.rounds_trained, rounds);
        assert_eq!(report.replays, 0);
    }
}

#[test]
fn tiered_matches_simulator_fedavg() {
    assert_tiered_matches_simulator(Algorithm::FedAvg);
}

#[test]
fn tiered_matches_simulator_fedprox() {
    assert_tiered_matches_simulator(Algorithm::FedProx { mu: 0.01 });
}

#[test]
fn tiered_matches_simulator_scaffold() {
    assert_tiered_matches_simulator(Algorithm::Scaffold);
}

#[test]
fn tiered_matches_simulator_fednova() {
    assert_tiered_matches_simulator(Algorithm::FedNova);
}

#[test]
fn tiered_matches_simulator_spatl() {
    assert_tiered_matches_simulator(Algorithm::Spatl(SpatlOptions::default()));
}

/// Drive one session in process, composing per-edge reductions exactly
/// the way the tiered runtime does (sample → local updates → per-edge
/// [`reduce_cohort`] → [`aggregate_reduced`] → evaluate-all), and return
/// the final global plus every surviving delta of the *first* round (the
/// ε-envelope inputs).
fn compose_twin(mut session: Simulation, rounds: usize) -> (GlobalState, Vec<Vec<f32>>) {
    let cfg = session.driver.cfg;
    let ranges = edge_partition(cfg.n_clients, EDGES);
    let mut first_round_deltas: Vec<Vec<f32>> = Vec::new();
    for round in 0..rounds {
        let sampled = session.driver.sample_round();
        let broadcast = session.driver.global.clone();
        let mut outcomes: Vec<LocalOutcome> = Vec::new();
        for &id in &sampled {
            let o = session.clients[id].local_update(&cfg, &broadcast, round);
            if round == 0 && !o.diverged {
                first_round_deltas.push(o.delta.clone());
            }
            outcomes.push(o);
        }
        let reduced: Vec<_> = ranges
            .iter()
            .filter_map(|r| {
                let slice: Vec<LocalOutcome> = outcomes
                    .iter()
                    .filter(|o| r.contains(&o.client_id))
                    .cloned()
                    .collect();
                if slice.is_empty() {
                    None
                } else {
                    reduce_cohort(&cfg, &slice, &broadcast)
                }
            })
            .collect();
        aggregate_reduced(&mut session.driver.global, &cfg, &reduced, cfg.n_clients);
        for c in session.clients.iter_mut() {
            c.sync_and_evaluate(&cfg, &session.driver.global);
        }
    }
    (session.driver.global, first_round_deltas)
}

/// Robust aggregators compose with bounded ε, not exactly. Two promises
/// are checked here: the networked 2-tier run is **bit-identical** to the
/// in-process composition twin (the network adds no drift), and one
/// composed round lands within the documented envelope of the flat fold —
/// both statistics live in `server_lr · [min_i δ_i[j], max_i δ_i[j]]`, so
/// their gap is at most `server_lr · (max − min)` per coordinate.
#[test]
fn tiered_robust_composition_is_bounded() {
    let agg = AggregatorKind::CoordinateTrimmedMean { trim_ratio: 0.25 };

    // Bit-identity to the in-process twin over two full rounds.
    let rounds = 2;
    let make = || builder(Algorithm::FedAvg, rounds).aggregator(agg).build();
    let (twin_global, _) = compose_twin(make(), rounds);
    let run = run_tiered(make);
    assert_global_bit_identical(&twin_global, &run.coordinator.driver.global);

    // ε envelope against the flat robust fold, single composed round.
    let make_one = || builder(Algorithm::FedAvg, 1).aggregator(agg).build();
    let mut flat = make_one();
    let before = flat.driver.global.shared.clone();
    flat.run();
    let (tiered_global, deltas) = compose_twin(make_one(), 1);
    assert!(!deltas.is_empty(), "round 0 must have survivors");
    let server_lr = flat.driver.cfg.server_lr;
    for j in 0..before.len() {
        let contributions: Vec<f32> = deltas.iter().map(|d| d[j]).collect();
        let lo = contributions.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = contributions
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let gap = (tiered_global.shared[j] - flat.driver.global.shared[j]).abs();
        let envelope = server_lr * (hi - lo) + 1e-5 * (1.0 + (hi - lo).abs());
        assert!(
            gap <= envelope,
            "coordinate {j}: |composed - flat| = {gap} exceeds envelope {envelope}"
        );
        assert!(tiered_global.shared[j].is_finite());
    }
}

/// Kill the root mid-round — after the write-ahead `begin`, before the
/// `commit` — and restart it on the same address from the same log. The
/// recovered root replays the interrupted round (same cohort, from the
/// same sampling stream position), the surviving client nodes answer from
/// their reply caches instead of retraining, and the session finishes bit
/// identical to an uninterrupted simulator run. SCAFFOLD makes this the
/// strictest variant: retraining a replayed round would fork the
/// client-side control variates.
#[test]
fn root_killed_mid_round_resumes_from_wal_bit_identically() {
    let algorithm = Algorithm::Scaffold;
    let rounds = 4;
    let wal = std::env::temp_dir().join(format!("spatl_net_wal_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    // Phase A: flat coordinator with a round log; run two rounds, then
    // "crash" — drop without finish(), so no Shutdown reaches the nodes
    // and they enter their reconnect loop with caches intact.
    let session = builder(algorithm, rounds).build();
    let cfg = session.driver.cfg;
    let mut opts = CoordinatorConfig {
        wal: Some(wal.clone()),
        topology: Topology::Flat,
        ..root_config()
    };
    let mut coordinator = Coordinator::bind(session.driver, opts.clone()).expect("bind A");
    let addr = coordinator.local_addr().expect("root addr").to_string();
    let node_handles: Vec<JoinHandle<Result<(ClientState, NodeReport), NetError>>> = session
        .clients
        .into_iter()
        .map(|c| {
            let node_opts = NodeConfig::new(addr.clone());
            thread::spawn(move || ClientNode::new(cfg, c, node_opts).run())
        })
        .collect();
    coordinator.wait_for_clients();
    coordinator.run_round();
    coordinator.run_round();
    assert_eq!(coordinator.driver.round_index(), 2);
    drop(coordinator); // crash: no Shutdown, no checkpoint

    // Simulate dying between round 1's begin and its commit: truncate the
    // trailing commit record, leaving round 1 pending in the log.
    let text = std::fs::read_to_string(&wal).expect("read wal");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.last().expect("wal has records").contains("Commit"),
        "last durable record is round 1's commit"
    );
    let truncated: String = lines[..lines.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&wal, truncated).expect("truncate wal");

    // Phase B: restart on the same address from the truncated log. The
    // recovery restores round 1's pre-round global and replays it.
    opts.addr = addr.clone();
    let session_b = builder(algorithm, rounds).build();
    let mut coordinator = Coordinator::bind(session_b.driver, opts).expect("bind B");
    assert_eq!(
        coordinator.resumed_mid_round(),
        Some(1),
        "round 1's begin was never committed"
    );
    assert_eq!(coordinator.driver.round_index(), 1);
    let completed = coordinator.run().expect("resume run");
    assert!(completed);
    let reports: Vec<(ClientState, NodeReport)> = node_handles
        .into_iter()
        .map(|h| h.join().expect("node thread").expect("node exits cleanly"))
        .collect();

    assert_global_bit_identical(&sim.driver.global, &coordinator.driver.global);
    assert_eq!(
        coordinator.driver.history.len(),
        3,
        "rounds 1 (replayed), 2 and 3 ran after recovery"
    );
    for (s, n) in sim.driver.history[1..]
        .iter()
        .zip(&coordinator.driver.history)
    {
        assert_eq!(s.round, n.round);
        assert_eq!(
            s.mean_acc.to_bits(),
            n.mean_acc.to_bits(),
            "round {}",
            s.round
        );
    }
    for (_, report) in &reports {
        assert_eq!(
            report.replays, 1,
            "round 1 was answered from the reply cache, not retrained"
        );
        assert_eq!(
            report.rounds_trained, rounds,
            "every round trained exactly once"
        );
        assert_eq!(report.reconnects, 1, "one reconnect after the crash");
    }
    let _ = std::fs::remove_file(&wal);
}
