//! Chaos loopback integration tests: the networked runtime under a
//! seeded [`ChaosPlan`] (DESIGN.md §14), on 127.0.0.1.
//!
//! The headline assertions: scheduled transport faults — torn frames and
//! connection resets, duplicated upload replies, replayed uploads after a
//! reconnect — change *nothing* about the aggregate (the global stays
//! bit-identical to the chaos-free fold of the surviving cohort) while
//! every discarded copy lands in the fault ledger; a quorum below 1.0
//! commits the round without its stragglers; and a chaos-killed edge is
//! ledgered as a dead partition at the root while its surviving clients
//! fail over to the root link.

use std::net::TcpStream;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use spatl::prelude::*;
use spatl::ExperimentBuilder;
use spatl_fl::{edge_partition, ClientState, GlobalState};
use spatl_net::{
    ClientNode, Coordinator, CoordinatorConfig, EdgeAggregator, EdgeConfig, EdgeReport, Hello,
    HelloRole, Join, NetError, NodeConfig, NodeReport, RoundAssign, RoundDone, RoundMode, Topology,
};
use spatl_wire::{open, read_frame, seal, write_frame, MsgType, MAX_FRAME_PAYLOAD};

fn builder(algorithm: Algorithm, rounds: usize) -> ExperimentBuilder {
    ExperimentBuilder::new(algorithm)
        .model(ModelKind::Cnn2)
        .clients(3)
        .samples_per_client(18)
        .rounds(rounds)
        .local_epochs(1)
        .batch_size(8)
        .seed(7)
}

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        addr: "127.0.0.1:0".to_string(),
        join_timeout: Duration::from_secs(20),
        round_timeout: Duration::from_secs(120),
        io_timeout: Duration::from_secs(20),
        ..CoordinatorConfig::default()
    }
}

type NodeHandle = JoinHandle<Result<(ClientState, NodeReport), NetError>>;

fn spawn_nodes(cfg: FlConfig, clients: Vec<ClientState>, addr: &str) -> Vec<NodeHandle> {
    clients
        .into_iter()
        .map(|c| {
            let opts = NodeConfig::new(addr);
            thread::spawn(move || ClientNode::new(cfg, c, opts).run())
        })
        .collect()
}

fn join_nodes(handles: Vec<NodeHandle>) -> Vec<(ClientState, NodeReport)> {
    handles
        .into_iter()
        .map(|h| h.join().expect("node thread").expect("node exits cleanly"))
        .collect()
}

#[track_caller]
fn assert_bits_equal(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}[{i}]: {x} != {y} (bitwise)"
        );
    }
}

#[track_caller]
fn assert_global_bit_identical(a: &GlobalState, b: &GlobalState) {
    assert_bits_equal("shared", &a.shared, &b.shared);
    assert_bits_equal("control", &a.control, &b.control);
    assert_bits_equal("momentum", &a.momentum, &b.momentum);
    assert_bits_equal("buffers", &a.buffers, &b.buffers);
}

/// One full networked session under `plan`; returns the coordinator
/// (global + history) and the node reports.
fn run_chaos_session(
    algorithm: Algorithm,
    rounds: usize,
    plan: ChaosPlan,
) -> (Coordinator, Vec<(ClientState, NodeReport)>) {
    let session = builder(algorithm, rounds).chaos(plan).build();
    let cfg = session.driver.cfg;
    let mut coordinator =
        Coordinator::bind(session.driver, coordinator_config()).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, session.clients, &addr);
    let completed = coordinator.run().expect("chaos run");
    assert!(completed, "no shutdown was requested");
    let reports = join_nodes(handles);
    (coordinator, reports)
}

/// Raw control-plane handshake for the hand-rolled misbehaving clients.
fn raw_handshake(addr: &str, cfg: &FlConfig, client_id: u32) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let hello = Hello {
        client_id,
        fingerprint: spatl_net::session_fingerprint(cfg),
        role: HelloRole::Client,
    };
    write_frame(&mut stream, &seal(MsgType::Hello, &hello.encode())).expect("send hello");
    let frame = read_frame(&mut stream, MAX_FRAME_PAYLOAD)
        .expect("read join")
        .expect("join frame");
    let (msg, payload) = open(&frame).expect("open join");
    assert_eq!(msg, MsgType::Join);
    assert!(Join::decode(payload).expect("decode join").accepted);
    stream
}

/// Read one round assignment (and its broadcast frames) off a raw stream.
fn raw_read_assignment(stream: &mut TcpStream) -> RoundAssign {
    let frame = read_frame(stream, MAX_FRAME_PAYLOAD)
        .expect("read assign")
        .expect("assign frame");
    let (msg, payload) = open(&frame).expect("open assign");
    assert_eq!(msg, MsgType::RoundAssign);
    let assign = RoundAssign::decode(payload).expect("decode assign");
    for _ in 0..assign.n_frames {
        read_frame(stream, MAX_FRAME_PAYLOAD)
            .expect("read broadcast frame")
            .expect("broadcast frame");
    }
    assign
}

/// Send one complete train reply — header plus every sealed upload frame
/// — exactly the way [`ClientNode`] does.
fn raw_send_train_reply(stream: &mut TcpStream, round: u32, outcome: &spatl_fl::LocalOutcome) {
    let done = RoundDone {
        round,
        mode: RoundMode::Train,
        client_id: outcome.client_id as u32,
        n_samples: outcome.n_samples as u64,
        tau: outcome.tau as u64,
        diverged: outcome.diverged,
        keep_ratio: outcome.keep_ratio,
        flops_ratio: outcome.flops_ratio,
        accuracy: 0.0,
        bytes_download: outcome.bytes.download,
        bytes_upload: outcome.bytes.upload,
        upload_payload: outcome.wire.upload_payload,
        upload_framed: outcome.wire.upload_framed,
        n_frames: outcome.frames.len() as u32,
    };
    write_frame(stream, &seal(MsgType::RoundDone, &done.encode())).expect("send done");
    for f in &outcome.frames {
        write_frame(stream, f).expect("send upload frame");
    }
}

/// Serve one evaluation assignment on a raw stream (accuracy 0.0 — the
/// dedup tests assert the aggregate, not the reported accuracies).
fn raw_serve_eval(stream: &mut TcpStream, client_id: u32) {
    let assign = raw_read_assignment(stream);
    assert_eq!(assign.mode, RoundMode::Eval);
    let done = RoundDone {
        round: assign.round,
        mode: RoundMode::Eval,
        client_id,
        n_samples: 0,
        tau: 0,
        diverged: false,
        keep_ratio: 0.0,
        flops_ratio: 0.0,
        accuracy: 0.0,
        bytes_download: 0,
        bytes_upload: 0,
        upload_payload: 0,
        upload_framed: 0,
        n_frames: 0,
    };
    write_frame(stream, &seal(MsgType::RoundDone, &done.encode())).expect("send eval done");
}

/// Every client duplicates its complete upload reply every round: the
/// coordinator must fold exactly one copy per (round, client), ledger
/// every extra copy as [`FaultKind::DuplicateUpload`], and finish with
/// the global the chaos-free simulator produces.
#[test]
fn duplicated_uploads_are_deduped_bit_identically() {
    let algorithm = Algorithm::FedAvg;
    let rounds = 2;
    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    let plan = ChaosPlan {
        duplicate: 1.0,
        ..ChaosPlan::default()
    };
    let (coordinator, reports) = run_chaos_session(algorithm, rounds, plan);

    assert_global_bit_identical(&sim.driver.global, &coordinator.driver.global);
    for (s, n) in sim.driver.history.iter().zip(&coordinator.driver.history) {
        assert_eq!(
            s.mean_acc.to_bits(),
            n.mean_acc.to_bits(),
            "round {}",
            s.round
        );
        assert_eq!(n.faults.survivors, 3, "every client still folds once");
        assert_eq!(n.faults.duplicates, 3, "every extra copy is ledgered");
        assert_eq!(n.faults.dropouts, 0);
        assert!(n
            .faults
            .events
            .iter()
            .all(|e| matches!(e.kind, FaultKind::DuplicateUpload)));
    }
    for (_, report) in &reports {
        assert_eq!(report.reconnects, 0, "duplication never drops the link");
    }
}

/// Every client's first transmission of every round is torn mid-frame and
/// the connection reset: the coordinator holds the slot open, the node
/// reconnects mid-round and replays its cached reply, and the session
/// still finishes bit-identical to the chaos-free simulator with a clean
/// ledger — a torn upload is a delay, not a loss.
#[test]
fn torn_frames_and_resets_recover_bit_identically() {
    let algorithm = Algorithm::FedAvg;
    let rounds = 2;
    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    let plan = ChaosPlan {
        reset: 1.0,
        ..ChaosPlan::default()
    };
    let (coordinator, reports) = run_chaos_session(algorithm, rounds, plan);

    assert_global_bit_identical(&sim.driver.global, &coordinator.driver.global);
    for (s, n) in sim.driver.history.iter().zip(&coordinator.driver.history) {
        assert_eq!(
            s.mean_acc.to_bits(),
            n.mean_acc.to_bits(),
            "round {}",
            s.round
        );
        assert_eq!(n.faults.survivors, 3, "every torn upload was retried");
        assert_eq!(n.faults.total(), 0, "a recovered reset ledgers nothing");
    }
    for (_, report) in &reports {
        assert_eq!(report.reconnects, rounds, "one scheduled reset per round");
        assert_eq!(
            report.replays, rounds,
            "every retry was answered from the reply cache, not retrained"
        );
    }
}

/// A mixed chaos schedule — resets, duplicates and stalls — is seeded:
/// the same plan seed reproduces the fault ledger event-for-event and the
/// global bit-for-bit, and (at quorum 1.0, where every client's retry
/// still folds) both runs match the chaos-free simulator.
#[test]
fn mixed_chaos_is_seed_deterministic() {
    let algorithm = Algorithm::FedAvg;
    let rounds = 2;
    let mut sim = builder(algorithm, rounds).build();
    sim.run();

    let plan = ChaosPlan {
        reset: 0.4,
        duplicate: 0.4,
        stall: 0.3,
        stall_ms: 20,
        seed: 0xD1CE,
        ..ChaosPlan::default()
    };
    let (run_a, _) = run_chaos_session(algorithm, rounds, plan);
    let (run_b, _) = run_chaos_session(algorithm, rounds, plan);

    assert_global_bit_identical(&run_a.driver.global, &run_b.driver.global);
    for (a, b) in run_a.driver.history.iter().zip(&run_b.driver.history) {
        assert_eq!(a.faults, b.faults, "round {}: ledgers must replay", a.round);
        assert_eq!(a.mean_acc.to_bits(), b.mean_acc.to_bits());
    }
    // Quorum 1.0: every scheduled fault recovers in-round, so the chaos
    // run aggregates the full cohort — bit-identical to no chaos at all.
    assert_global_bit_identical(&sim.driver.global, &run_a.driver.global);
    for record in &run_a.driver.history {
        assert_eq!(record.faults.survivors, 3);
        assert_eq!(record.faults.dropouts, 0);
    }
}

/// The per-(round, client) idempotence guard, exercised raw: a client
/// uploads cleanly, reconnects, and replays the *same* reply — as a real
/// node would after losing the connection right after its send. The
/// coordinator must ledger the replay as [`FaultKind::DuplicateUpload`]
/// and fold the client exactly once.
#[test]
fn replayed_upload_after_reconnect_is_discarded() {
    let algorithm = Algorithm::FedAvg;
    let mut sim = builder(algorithm, 1).build();
    sim.run();

    let session = builder(algorithm, 1).build();
    let cfg = session.driver.cfg;
    let global = session.driver.global.clone();
    let mut clients = session.clients;
    let mut coordinator =
        Coordinator::bind(session.driver, coordinator_config()).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();

    let raw_addr = addr.clone();
    let driver = thread::spawn(move || {
        // All three clients are raw and driven in a strict order, so the
        // replay deterministically lands while the round is still open.
        let mut streams: Vec<TcpStream> = (0..3)
            .map(|id| raw_handshake(&raw_addr, &cfg, id))
            .collect();
        let outcomes: Vec<spatl_fl::LocalOutcome> = clients
            .iter_mut()
            .map(|c| c.local_update(&cfg, &global, 0))
            .collect();
        for stream in streams.iter_mut() {
            let assign = raw_read_assignment(stream);
            assert_eq!(assign.mode, RoundMode::Train);
        }
        // Client 0: clean upload, drop the link, reconnect, replay. The
        // pause lets the coordinator finish assembling and folding the
        // first copy — reconnecting while it is still mid-assembly would
        // (correctly) restart the slot instead of exercising the
        // idempotence guard. The round cannot end underneath the wait:
        // clients 1 and 2 have not uploaded yet.
        raw_send_train_reply(&mut streams[0], 0, &outcomes[0]);
        thread::sleep(Duration::from_millis(500));
        drop(std::mem::replace(
            &mut streams[0],
            raw_handshake(&raw_addr, &cfg, 0),
        ));
        let assign = raw_read_assignment(&mut streams[0]);
        assert_eq!(assign.round, 0, "the round assignment is resent in-round");
        raw_send_train_reply(&mut streams[0], 0, &outcomes[0]);
        // Only now do the other two finish the round.
        raw_send_train_reply(&mut streams[1], 0, &outcomes[1]);
        raw_send_train_reply(&mut streams[2], 0, &outcomes[2]);
        for (id, stream) in streams.iter_mut().enumerate() {
            raw_serve_eval(stream, id as u32);
        }
        // Wait for the coordinator's goodbye so no write races a drop.
        for stream in streams.iter_mut() {
            let _ = read_frame(stream, MAX_FRAME_PAYLOAD);
        }
    });

    coordinator.wait_for_clients();
    let record = coordinator.run_round();
    coordinator.finish().expect("finish");
    driver.join().expect("raw driver thread");

    assert_eq!(record.faults.sampled, 3);
    assert_eq!(record.faults.survivors, 3, "client 0 folded exactly once");
    assert_eq!(record.faults.duplicates, 1, "the replayed copy is ledgered");
    assert!(record
        .faults
        .events
        .iter()
        .any(|e| e.client_id == 0 && matches!(e.kind, FaultKind::DuplicateUpload)));
    assert_global_bit_identical(&sim.driver.global, &coordinator.driver.global);
}

/// With `quorum: 0.6` over three clients, two folded uploads commit the
/// round: a client that registered but never uploads is cut and ledgered
/// as a dropout instead of stalling the round until `round_timeout`.
#[test]
fn quorum_commits_round_without_straggler() {
    let algorithm = Algorithm::FedAvg;
    let session = builder(algorithm, 1).build();
    let cfg = session.driver.cfg;
    let mut clients = session.clients;
    let silent = clients.remove(0);
    assert_eq!(silent.id, 0);

    let before = session.driver.global.shared.clone();
    let mut opts = coordinator_config();
    opts.quorum = 0.6;
    let mut coordinator = Coordinator::bind(session.driver, opts).expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let handles = spawn_nodes(cfg, clients, &addr);

    let silent_addr = addr.clone();
    let straggler = thread::spawn(move || {
        let mut stream = raw_handshake(&silent_addr, &cfg, 0);
        let assign = raw_read_assignment(&mut stream);
        assert_eq!(assign.mode, RoundMode::Train);
        // Never upload: hold the stream open until the quorum cut closes
        // it server-side (a blocking read observes the close).
        let _ = read_frame(&mut stream, MAX_FRAME_PAYLOAD);
    });

    coordinator.wait_for_clients();
    let record = coordinator.run_round();
    coordinator.finish().expect("finish");
    straggler.join().expect("straggler thread");
    join_nodes(handles);

    assert_eq!(record.faults.sampled, 3);
    assert_eq!(record.faults.survivors, 2, "the quorum committed the round");
    assert_eq!(record.faults.dropouts, 1, "the shortfall is ledgered");
    assert!(record
        .faults
        .events
        .iter()
        .any(|e| e.client_id == 0 && matches!(e.kind, FaultKind::Dropout)));
    assert!(
        coordinator
            .driver
            .global
            .shared
            .iter()
            .zip(&before)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "aggregation over the quorum moved the global model"
    );
}

/// A chaos-killed edge mid-session: the root ledgers the dead partition
/// the round the edge vanishes (degrading to the surviving edge instead
/// of stalling), and the killed edge's clients re-register directly at
/// the root over their `--fallback-addr` and train on the root link for
/// the remaining rounds.
#[test]
fn killed_edge_is_ledgered_and_clients_fail_over() {
    const EDGES: usize = 2;
    let algorithm = Algorithm::FedAvg;
    let rounds = 5;
    let kill_round = 1u32;
    let plan = ChaosPlan {
        kill_edge: Some((kill_round, 0)),
        ..ChaosPlan::default()
    };
    let make = || {
        ExperimentBuilder::new(algorithm)
            .model(ModelKind::Cnn2)
            .clients(4)
            .samples_per_client(18)
            .rounds(rounds)
            .local_epochs(1)
            .batch_size(8)
            .seed(7)
            .chaos(plan)
            .build()
    };

    let session = make();
    let cfg = session.driver.cfg;
    let root_opts = CoordinatorConfig {
        topology: Topology::Tiered { edges: EDGES },
        ..coordinator_config()
    };
    let mut coordinator = Coordinator::bind(session.driver, root_opts).expect("bind root");
    let root_addr = coordinator.local_addr().expect("root addr").to_string();

    let mut edge_handles: Vec<JoinHandle<Result<EdgeReport, NetError>>> = Vec::new();
    let mut edge_addrs: Vec<String> = Vec::new();
    for e in 0..EDGES {
        let driver = make().driver;
        let edge = EdgeAggregator::bind(
            driver,
            EdgeConfig::new(e, EDGES, root_addr.clone(), "127.0.0.1:0"),
        )
        .expect("bind edge");
        edge_addrs.push(edge.local_addr().expect("edge addr").to_string());
        edge_handles.push(thread::spawn(move || edge.run()));
    }

    let ranges = edge_partition(cfg.n_clients, EDGES);
    let node_handles: Vec<NodeHandle> = session
        .clients
        .into_iter()
        .map(|c| {
            let e = ranges
                .iter()
                .position(|r| r.contains(&c.id))
                .expect("slice");
            let mut opts = NodeConfig::new(edge_addrs[e].clone());
            opts.fallback_addr = Some(root_addr.clone());
            opts.fallback_after = 1;
            // Fail over well inside the surviving edge's round so the
            // orphaned clients are registered by the next accept sweep.
            opts.backoff_base = Duration::from_millis(2);
            thread::spawn(move || ClientNode::new(cfg, c, opts).run())
        })
        .collect();

    let completed = coordinator.run().expect("tiered chaos run");
    assert!(completed, "no shutdown was requested");
    let edge_reports: Vec<EdgeReport> = edge_handles
        .into_iter()
        .map(|h| h.join().expect("edge thread").expect("edge exits"))
        .collect();
    let node_reports = join_nodes(node_handles);

    let history = &coordinator.driver.history;
    assert_eq!(history.len(), rounds);
    assert_eq!(history[0].faults.total(), 0, "round 0 ran chaos-free");
    assert_eq!(history[0].faults.survivors, 4);
    // The kill round: edge 0's whole slice is a ledgered dead partition,
    // and the round still commits over the surviving edge.
    let killed = &history[kill_round as usize];
    assert_eq!(killed.faults.sampled, 4);
    assert_eq!(killed.faults.dropouts, 2, "the dead partition is ledgered");
    assert_eq!(killed.faults.survivors, 2, "the surviving edge still folds");
    assert!(!killed.faults.no_op);
    // By the last round the orphaned clients train over the root link.
    let last = history.last().expect("ran rounds");
    assert_eq!(last.faults.survivors, 4, "failover restored the cohort");
    assert_eq!(last.faults.dropouts, 0);

    assert_eq!(
        edge_reports[0].rounds_forwarded, 1,
        "edge 0 died on round 1's assignment"
    );
    assert_eq!(edge_reports[1].rounds_forwarded, rounds);
    for (state, report) in &node_reports {
        if ranges[0].contains(&state.id) {
            assert!(
                report.reconnects >= 1,
                "client {} re-registered after its edge died",
                state.id
            );
        }
        assert_eq!(report.replays, 0);
    }
}
